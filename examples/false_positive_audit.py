#!/usr/bin/env python
"""False-positive audit: the thirty benign applications of §V-F.

Runs every benign workload simulator under CryptoDrop and prints each
final reputation score, which indicators (if any) contributed, and the
threshold sweep of Fig. 6.  At the paper's threshold of 200, the only
flag should be 7-zip archiving the documents tree — the detection the
authors call "normal, expected, desirable".

Run:  python examples/false_positive_audit.py
"""

from repro.experiments import SMALL, run_fig6
from repro.experiments.reporting import ascii_table, header
from repro.telemetry.timeline import (indicator_totals,
                                      merge_indicator_totals)


def main() -> None:
    print(header("Benign application audit (30 apps, §V-F)"))
    result = run_fig6(SMALL, suite="all")

    rows = []
    for r in sorted(result.results, key=lambda r: -r.final_score):
        points = indicator_totals(r.trajectory)
        attribution = ", ".join(
            f"{ind}={pts:g}" for ind, pts in
            sorted(points.items(), key=lambda kv: -kv[1])) or "-"
        rows.append((r.app_name, f"{r.final_score:g}", attribution,
                     "FLAGGED" if r.detected else ""))
    print(ascii_table(("application", "final score", "points by indicator",
                       "at 200"), rows))

    combined = merge_indicator_totals(
        indicator_totals(r.trajectory) for r in result.results)
    if combined:
        ranked = sorted(combined.items(), key=lambda kv: -kv[1])
        print()
        print("benign score mass by indicator (all 30 apps): "
              + ", ".join(f"{ind}={pts:g}" for ind, pts in ranked))

    print()
    print("threshold sweep (apps that would cross):")
    print(ascii_table(("threshold", "apps"),
                      list(result.sweep().items())))

    detected = result.detected_apps()
    print()
    print(f"detections at 200: {', '.join(detected) or 'none'}")
    union = [r.app_name for r in result.results if r.union_fired]
    print(f"benign apps reaching union indication: "
          f"{', '.join(union) or 'none (as the paper found)'}")


if __name__ == "__main__":
    main()
