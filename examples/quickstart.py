#!/usr/bin/env python
"""Quickstart: watch CryptoDrop stop one ransomware sample.

Builds a small synthetic document corpus inside a virtual Windows
filesystem, attaches the CryptoDrop monitor, releases a live TeslaCrypt
simulator against it, and reports what happened — the same revert-run-
assess cycle the paper's evaluation used, in one page of code.

Run:  python examples/quickstart.py
"""

from repro.corpus import generate
from repro.experiments.reporting import header
from repro.ransomware import working_cohort
from repro.sandbox import VirtualMachine, run_sample


def main() -> None:
    print(header("CryptoDrop quickstart"))

    # 1. a machine with a 600-file user documents tree
    corpus = generate(seed=7, n_files=600, n_dirs=60)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    print(f"corpus: {len(corpus.files)} files / {len(corpus.dirs)} "
          f"directories, {corpus.total_bytes / 1e6:.1f} MB")

    # 2. pick a sample (TeslaCrypt: Class A, deepest-directory-first)
    sample = next(s for s in working_cohort()
                  if s.profile.family == "teslacrypt")
    print(f"sample: {sample.name} (Class "
          f"{sample.profile.behavior_class}, "
          f"{sample.profile.traversal}, cipher "
          f"{sample.profile.cipher_kind})")

    # 3. run it under CryptoDrop
    result = run_sample(machine, sample)

    # 4. the verdict
    print()
    if result.detected:
        print(f"DETECTED and suspended: score {result.score:.0f} >= "
              f"threshold {result.threshold:.0f}"
              f"{' via union indication' if result.union_fired else ''}")
        print(f"indicators tripped: {', '.join(sorted(result.flags))}")
    print(f"files lost before detection: {result.files_lost} of "
          f"{len(corpus.files)} "
          f"({result.files_lost / len(corpus.files):.1%})")
    print(f"ransom notes dropped: {result.notes_written}")
    print(f"simulated attack time: {result.sim_seconds:.2f}s")
    print()
    print("(paper headline: median 10 of 5,099 files lost, 100% of 492 "
          "samples detected)")


if __name__ == "__main__":
    main()
