#!/usr/bin/env python
"""Baseline-store tooling: build, inspect, and verify ``.cdbs`` files.

The persistent baseline store (``repro.store``, docs/performance.md)
digests a corpus once into a single file that campaigns reopen in
milliseconds.  This tool is the operator's handle on those files:

    python examples/store_tool.py build  store.cdbs [--seed N] [--files N]
                                         [--workers N] [--backend B]
    python examples/store_tool.py info   store.cdbs
    python examples/store_tool.py verify store.cdbs [--fast]

``build`` generates the synthetic corpus for ``--seed`` and writes its
store via the sharded parallel builder (shard logs merged into one
sorted index).  ``info`` prints the header — O(1), nothing else is
read.  ``verify`` is an fsck-style pass: header magic/version/CRC,
index sortedness, every record's checksum, and fingerprint
recomputation from the indexed keys (``--fast`` skips the per-record
walk).  Exit status is 0 only for a clean store.

Run ``make store-demo`` for a round trip over a small corpus.
"""

import argparse
import os
import sys
import time


def cmd_build(args) -> int:
    from repro.corpus.builder import PAPER_FILES, generate
    from repro.sandbox.parallel import build_store_parallel

    n_files = args.files or PAPER_FILES
    print(f"generating corpus (seed {args.seed}, {n_files} files)")
    corpus = generate(seed=args.seed, n_files=n_files)
    print(f"building {args.backend} store via {args.workers} worker(s)")
    started = time.perf_counter()
    store = build_store_parallel(corpus, backend=args.backend,
                                 workers=args.workers, path=args.path)
    elapsed = time.perf_counter() - started
    print(f"wrote {args.path}: {len(store)} entries, "
          f"{os.path.getsize(args.path):,} bytes, "
          f"fingerprint {store.fingerprint}, {elapsed:.2f}s")
    store.close()
    return 0


def cmd_info(args) -> int:
    from repro.corpus.baselines import BaselineStore

    started = time.perf_counter()
    store = BaselineStore.open(args.path)
    open_ms = (time.perf_counter() - started) * 1e3
    print(f"{args.path}")
    print(f"  opened in            {open_ms:.2f} ms (lazy — header + mmap)")
    print(f"  entries              {len(store)}")
    print(f"  corpus seed          {store.seed}")
    print(f"  similarity backend   {store.backend}")
    print(f"  max_inspect_bytes    {store.max_inspect_bytes}")
    print(f"  digests enabled      {store.digests_enabled}")
    print(f"  digested bytes       {store.total_bytes:,}")
    print(f"  build seconds        {store.build_seconds:.2f}")
    print(f"  fingerprint          {store.fingerprint}")
    print(f"  file bytes           {os.path.getsize(args.path):,}")
    store.close()
    return 0


def cmd_verify(args) -> int:
    from repro.store.fsck import fsck_store

    started = time.perf_counter()
    report = fsck_store(args.path, check_records=not args.fast)
    elapsed = time.perf_counter() - started
    scope = "structural pass" if args.fast else \
        f"{report['records_checked']} record checksums"
    if report["ok"]:
        print(f"{args.path}: OK — {report['entries']} entries, {scope}, "
              f"fingerprint verified ({elapsed:.2f}s)")
        return 0
    print(f"{args.path}: CORRUPT — {len(report['problems'])} problem(s):")
    for problem in report["problems"][:20]:
        print(f"  - {problem}")
    if len(report["problems"]) > 20:
        print(f"  … and {len(report['problems']) - 20} more")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="digest a synthetic corpus into "
                           "a store file (sharded parallel build)")
    build.add_argument("path")
    build.add_argument("--seed", type=int, default=1337)
    build.add_argument("--files", type=int, default=0,
                       help="approximate corpus size (0 = the paper's "
                       "~5,100-file default)")
    build.add_argument("--workers", type=int, default=2)
    build.add_argument("--backend", choices=("sdhash", "ctph"),
                       default="sdhash")
    build.set_defaults(func=cmd_build)

    info = sub.add_parser("info", help="print the store header (O(1))")
    info.add_argument("path")
    info.set_defaults(func=cmd_info)

    verify = sub.add_parser("verify", help="fsck-style integrity pass")
    verify.add_argument("path")
    verify.add_argument("--fast", action="store_true",
                        help="skip per-record checksums (structural only)")
    verify.set_defaults(func=cmd_verify)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
