#!/usr/bin/env python
"""Detection timeline: how one ransomware sample got caught.

Runs a single Class-A sample (TeslaCrypt — all three primary indicators
plus union, the paper's archetype) under a telemetry-enabled monitor and
prints the full detection narrative: every indicator hit with its score
contribution, the union transition, the suspension verdict, and the
files lost before the detector pulled the trigger.

Optionally streams the raw event log to JSONL (``--jsonl events.jsonl``)
and dumps the Prometheus exposition of the run's metrics
(``--prometheus``) — the two exporter formats of docs/observability.md.

Run:  python examples/detection_timeline.py [--family NAME]
                                            [--jsonl PATH] [--prometheus]
"""

import argparse

from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.corpus import generate
from repro.experiments.reporting import header
from repro.ransomware import working_cohort
from repro.telemetry import JsonlWriter

DEFAULT_FAMILY = "teslacrypt"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default=DEFAULT_FAMILY,
                        help="ransomware family to run (default: "
                             f"{DEFAULT_FAMILY}, a Class-A archetype)")
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="stream the raw event log to this JSONL file")
    parser.add_argument("--prometheus", action="store_true",
                        help="also print the Prometheus text exposition")
    parser.add_argument("--max-rows", type=int, default=30,
                        help="timeline rows to print (0 = all)")
    args = parser.parse_args()

    sample = next((s for s in working_cohort()
                   if s.profile.family == args.family
                   and s.profile.behavior_class == "A"), None)
    if sample is None:
        sample = next(s for s in working_cohort()
                      if s.profile.family == args.family)

    print(header(f"Detection timeline — {sample.profile.sample_name} "
                 f"(class {sample.profile.behavior_class})"))
    corpus = generate(seed=23, n_files=600, n_dirs=50)

    from repro.sandbox import VirtualMachine
    machine = VirtualMachine(corpus)
    machine.snapshot()
    config = CryptoDropConfig(telemetry_enabled=True)
    monitor = CryptoDropMonitor(machine.vfs, config).attach()
    sink = None
    if args.jsonl:
        sink = JsonlWriter(args.jsonl)
        monitor.telemetry.bus.subscribe(sink)

    outcome = machine.run_program(sample)
    damage = machine.assess()
    monitor.detach()
    if sink is not None:
        sink.close()

    timeline = monitor.timeline()
    timeline.files_lost = damage.files_lost
    print()
    print(timeline.render(max_rows=args.max_rows))

    detection = monitor.detections[0] if monitor.detections else None
    if detection is not None:
        agree = (timeline.detected
                 and timeline.suspension.score == detection.score
                 and timeline.union_fired == detection.union_fired)
        print()
        print(f"cross-check vs DetectionResult: score {detection.score:g}, "
              f"union={'yes' if detection.union_fired else 'no'}, "
              f"files lost {damage.files_lost} — "
              f"{'timeline agrees' if agree else 'MISMATCH'}")
    print(f"run outcome: "
          f"{'suspended' if outcome.suspended else 'ran to completion'}, "
          f"{len(timeline.files_touched())} distinct files scored")

    stats = monitor.telemetry.bus.stats()
    print(f"event bus: {stats['emitted']} emitted, "
          f"{stats['buffered']} buffered, {stats['dropped']} dropped "
          f"(ring capacity {stats['capacity']})")
    if args.jsonl:
        print(f"event log written to {args.jsonl}")

    if args.prometheus:
        print()
        print(header("Prometheus exposition"))
        print(monitor.telemetry.render_prometheus())


if __name__ == "__main__":
    main()
