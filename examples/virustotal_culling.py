#!/usr/bin/env python
"""Sample culling: reproducing the paper's §V-A methodology.

The authors pulled 2,663 VirusTotal downloads labelled as ransomware;
after running each in a reverted sandbox and verifying document hashes,
2,171 proved inert (screen lockers, dead C2, VM-aware, corrupt) and 492
working encryptors remained.  This example replays that triage on a
scaled random slice of the haul and reports the same split.

Run:  python examples/virustotal_culling.py [--samples N]
"""

import argparse
import collections

from repro.corpus import generate
from repro.experiments.reporting import ascii_table, header
from repro.ransomware import TOTAL_HAUL, TOTAL_WORKING, virustotal_haul
from repro.sandbox import cull_haul


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=120,
                        help="how many of the 2,663 downloads to triage")
    args = parser.parse_args()

    print(header("VirusTotal haul triage (§V-A)"))
    haul = virustotal_haul()[:args.samples]
    print(f"triaging {len(haul)} of {TOTAL_HAUL} downloads "
          f"(paper kept {TOTAL_WORKING})...")

    corpus = generate(seed=3, n_files=400, n_dirs=40)
    working, inert, campaign = cull_haul(haul, corpus)

    reasons = collections.Counter(
        sample.profile.inert_reason or "working" for sample, _ in inert)
    print()
    print(ascii_table(("bucket", "count"), [
        ("working encryptors kept", len(working)),
        ("inert, culled", len(inert)),
    ]))
    print()
    print("inert breakdown:")
    print(ascii_table(("reason", "count"), sorted(reasons.items())))

    families = collections.Counter(
        sample.profile.family for sample, _ in working)
    print()
    print("families among the kept samples:")
    print(ascii_table(("family", "count"),
                      sorted(families.items(), key=lambda kv: -kv[1])))
    print()
    ratio = len(inert) / len(haul)
    print(f"inert fraction: {ratio:.0%} (paper: "
          f"{(TOTAL_HAUL - TOTAL_WORKING) / TOTAL_HAUL:.0%})")


if __name__ == "__main__":
    main()
