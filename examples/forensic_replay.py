#!/usr/bin/env python
"""Forensic replay: inside one detection, event by event.

Runs a single CTB-Locker sample (the paper's hardest case, §V-C) with an
operation recorder attached, then walks the reputation-score trajectory:
which file tripped which indicator, when the similarity indicator first
became available (CTB's smallest victims are under sdhash's 512-byte
floor), and the exact event where union indication fired.

Run:  python examples/forensic_replay.py
"""

from repro.core import CryptoDropMonitor
from repro.corpus import generate
from repro.experiments.reporting import ascii_table, header
from repro.ransomware import working_cohort
from repro.sandbox import VirtualMachine


def main() -> None:
    print(header("Forensic replay: CTB-Locker vs CryptoDrop"))
    corpus = generate()    # the full 5,099-file corpus (paper scale)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    monitor = CryptoDropMonitor(machine.vfs).attach()

    sample = next(s for s in working_cohort()
                  if s.profile.family == "ctb-locker")
    print(f"sample: {sample.name} — targets "
          f"{', '.join(sample.profile.extensions)} in ascending size\n")
    outcome = machine.run_program(sample)
    damage = machine.assess()
    row = monitor.engine.row_of(outcome.pid)

    rows = []
    first_similarity = None
    union_at = None
    for index, event in enumerate(row.history):
        if event.indicator == "similarity" and first_similarity is None:
            first_similarity = index
        if event.indicator == "union":
            union_at = index
        if index < 12 or event.indicator in ("union", "similarity") \
                and index < (union_at or 10 ** 9) + 3:
            name = event.path.rsplit("\\", 1)[-1][:34]
            rows.append((index, event.indicator, f"+{event.points:g}",
                         f"{event.score_after:g}", name, event.detail[:22]))
    print(ascii_table(("#", "indicator", "pts", "score", "file", "detail"),
                      rows))
    print("  ...")
    print(f"\nevents total: {len(row.history)}")
    if first_similarity is not None:
        print(f"first similarity measurement at event #{first_similarity} "
              f"— everything before was too small for sdhash (§V-C)")
    if union_at is not None:
        print(f"union indication at event #{union_at}: threshold dropped "
              f"to {row.threshold:g}")
    print(f"\nverdict: suspended={outcome.suspended}, files lost = "
          f"{damage.files_lost} (paper median for this family: 29)")
    tiny = sum(1 for p in damage.modified + damage.missing
               if corpus.contents.get(
                   "\\".join(p.relative_parts(machine.docs_root)), b"")
               and len(corpus.contents[
                   "\\".join(p.relative_parts(machine.docs_root))]) < 512)
    print(f"of which sub-512-byte files: {tiny} "
          f"(paper: 26 of 29)")


if __name__ == "__main__":
    main()
