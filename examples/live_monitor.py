#!/usr/bin/env python
"""Live-monitor walkthrough: the user-prompt flow of §IV-A.

CryptoDrop never decides intent — "it cannot distinguish whether the
user or ransomware is encrypting a set of documents" (§V-G) — so every
detection pauses the process and asks.  This example wires a
CallbackPolicy that plays the user:

* 7-zip compressing the documents tree -> the user clicks ALLOW
  (it's their own backup), and the archive completes;
* a CryptoWall sample doing the same *kind* of bulk transformation ->
  the user clicks DROP IT, and the process family is frozen with the
  damage contained.

Run:  python examples/live_monitor.py
"""

from repro.benign import SevenZip
from repro.core import CallbackPolicy, CryptoDropMonitor, Detection
from repro.corpus import generate
from repro.experiments.reporting import header
from repro.ransomware import working_cohort
from repro.sandbox import VirtualMachine


def user_at_the_keyboard(detection: Detection) -> bool:
    """Return True to suspend ('drop it'), False to allow."""
    print()
    print("  +" + "-" * 62 + "+")
    print(f"  | CryptoDrop ALERT: {detection.process_name:<43} |")
    print(f"  | score {detection.score:>4.0f} / threshold "
          f"{detection.threshold:<4.0f} "
          f"union={'yes' if detection.union_fired else 'no ':<3}"
          f"{'':24} |")
    print(f"  | indicators: {', '.join(sorted(detection.flags)):<48} |")
    print("  +" + "-" * 62 + "+")
    is_archiver = detection.process_name.startswith("7z")
    answer = "ALLOW (my own backup)" if is_archiver else "DROP IT"
    print(f"  user answers: {answer}")
    return not is_archiver


def main() -> None:
    print(header("CryptoDrop live-monitor walkthrough"))
    corpus = generate(seed=11, n_files=700, n_dirs=60)
    machine = VirtualMachine(corpus)
    machine.snapshot()

    policy = CallbackPolicy(user_at_the_keyboard)
    monitor = CryptoDropMonitor(machine.vfs, policy=policy).attach()

    print("\n[1] the user archives their documents with 7-zip...")
    outcome = machine.run_program(SevenZip(seed=1))
    print(f"    outcome: {'completed' if outcome.completed else 'stopped'}"
          f" (archive finished: {outcome.ran_to_completion})")
    machine.revert()

    print("\n[2] a CryptoWall sample starts encrypting the same tree...")
    sample = next(s for s in working_cohort()
                  if s.profile.family == "cryptowall")
    outcome = machine.run_program(sample)
    damage = machine.assess()
    print(f"    outcome: {'SUSPENDED' if outcome.suspended else 'ran'}")
    print(f"    damage contained to {damage.files_lost} of "
          f"{len(corpus.files)} files")
    machine.revert()
    monitor.detach()

    print(f"\nalerts raised this session: {len(policy.consulted)}")
    print("same detector, same bulk-transformation signal — the human "
          "supplies the intent.")


if __name__ == "__main__":
    main()
