#!/usr/bin/env python
"""Recovery drill: what happens *after* CryptoDrop drops the process.

Plays the full defensive loop twice, against two families that differ in
exactly one habit:

* **CryptoLocker** leaves the volume shadow copies alone — every file it
  managed to encrypt before suspension is restored;
* **TeslaCrypt** runs ``vssadmin delete shadows /all`` first (§III) —
  the same handful of files stays lost, which is the economic argument
  of the paper: with a median of ~10 files lost, the attacker's leverage
  collapses even when recovery fails.

Run:  python examples/recovery_drill.py
"""

from repro.core import CryptoDropMonitor
from repro.corpus import generate
from repro.experiments.reporting import header
from repro.fs import BaselineIndex, DOCUMENTS, ProcessSuspended
from repro.ransomware import instantiate, working_cohort
from repro.recovery import recover_from_shadow
from repro.sandbox import VirtualMachine


def drill(family: str) -> None:
    corpus = generate(seed=21, n_files=700, n_dirs=70)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    # nightly shadow copy, as a reasonably configured Windows box has
    machine.shadow.create(4, DOCUMENTS)
    baseline = BaselineIndex(machine.vfs, DOCUMENTS)
    monitor = CryptoDropMonitor(machine.vfs).attach()

    sample = instantiate(next(s for s in working_cohort()
                              if s.profile.family == family).profile)
    print(f"\n--- {family}: releasing {sample.name} ---")
    outcome = machine.run_program(sample)
    damage = machine.assess()
    print(f"CryptoDrop: {'suspended' if outcome.suspended else 'missed!'} "
          f"after {damage.files_lost} files lost")
    copies = len(machine.shadow.list_copies())
    print(f"shadow copies remaining: {copies}")

    report = recover_from_shadow(machine.vfs, baseline, machine.shadow)
    print(f"recovery: {report.summary()}")
    final = machine.assess()
    print(f"final state: {final.files_lost} files still lost "
          f"of {len(corpus.files)}")
    monitor.detach()


def main() -> None:
    print(header("Post-detection recovery drill"))
    drill("cryptolocker")   # keeps shadow copies -> full recovery
    drill("teslacrypt")     # wipes them first    -> losses stand


if __name__ == "__main__":
    main()
