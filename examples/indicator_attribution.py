#!/usr/bin/env python
"""Indicator attribution: which indicator actually does the convicting?

§V-B2 reports that "all three primary indicators proved valuable in the
majority of samples".  This example quantifies that claim over a scaled
campaign: total reputation points earned per indicator, overall and for
the families whose anatomies differ most —

* TeslaCrypt (Class A): all three primaries plus union,
* CTB-Locker (Class B, tiny files): type change does the early work
  because sdhash cannot score sub-512-byte files,
* CryptoDefense (Class C, delete-disposal): no baselines to compare, so
  entropy and deletion carry the whole conviction.

Run:  python examples/indicator_attribution.py
"""

from repro.analysis import (attribute_indicators, class_statistics,
                            detection_latency_summary)
from repro.experiments import SMALL, campaign_at_scale
from repro.experiments.reporting import ascii_table, header


def main() -> None:
    print(header("Indicator attribution (§V-B2, quantified)"))
    campaign = campaign_at_scale(SMALL)

    print()
    print(attribute_indicators(campaign.working).render(
        "all families combined"))

    for family in ("teslacrypt", "ctb-locker", "cryptodefense"):
        rows = campaign.by_family().get(family, [])
        if rows:
            print()
            print(attribute_indicators(rows).render(f"family: {family}"))

    print()
    print(header("Outcomes by behaviour class (§III taxonomy)"))
    print(ascii_table(
        ("class", "samples", "median FL", "mean FL", "union rate",
         "detected"),
        [(s.behavior_class, s.samples, f"{s.median_files_lost:g}",
          f"{s.mean_files_lost:.1f}", f"{s.union_rate:.0%}",
          f"{s.detection_rate:.0%}")
         for s in class_statistics(campaign)]))

    latency = detection_latency_summary(campaign)
    print()
    print(f"simulated time to suspension: median "
          f"{latency['median_s']:.2f}s, p90 {latency['p90_s']:.2f}s, "
          f"max {latency['max_s']:.2f}s")
    print("(the paper observed detections 'seconds after they began "
          "accessing user data')")


if __name__ == "__main__":
    main()
