#!/usr/bin/env python
"""Campaign survey: a scaled-down version of the paper's evaluation.

Runs a few samples from every one of the fourteen families against a
shared corpus with per-sample VM revert, then prints the Table-I-style
family breakdown, the Fig.-3 files-lost distribution, the Fig.-5
extension frequencies, and the §V-B2 union accounting.

Run:  python examples/campaign_survey.py [--full] [--perf] [--telemetry]

``--full`` runs the complete 492-sample cohort on the 5,099-file corpus
(a few minutes of CPU); the default is a faithful small-scale pass.
``--perf`` appends the campaign's aggregated engine counters (digest
cache and BaselineStore traffic, bytes digested, throughput — see
docs/performance.md).
``--telemetry`` runs the sweep with per-sample telemetry enabled and
appends the campaign-wide aggregate (event counts by kind, merged
metric totals — see docs/observability.md).
"""

import argparse

from repro.core import CryptoDropConfig
from repro.experiments import (FULL, SMALL, campaign_at_scale, run_fig3,
                               run_fig5, run_table1, run_union_effect)


def print_perf(campaign) -> None:
    """The campaign's merged per-sample engine counters, human-readable."""
    perf = campaign.perf_stats()
    cache = perf.get("digest_cache", {})
    print("campaign performance")
    print(f"  samples              {perf.get('samples', 0)}")
    if perf.get("wall_seconds"):
        print(f"  wall seconds         {perf['wall_seconds']:.2f}")
        print(f"  samples/second       {perf['samples_per_second']:.2f}")
        print(f"  workers              {perf.get('workers', 1)}")
    store = perf.get("baseline_store")
    if store:
        print(f"  baseline store       {store['entries']} entries "
              f"({store['backend']}, fingerprint {store['fingerprint']})")
    print(f"  digest cache         {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses "
          f"({cache.get('hit_rate', 0.0):.0%})")
    print(f"  store hits/misses    {cache.get('store_hits', 0)} / "
          f"{cache.get('store_misses', 0)}")
    print(f"  deferred digests     {perf.get('deferred_digests', 0)}")
    print(f"  bytes digested       {perf.get('bytes_digested', 0):,}")
    print(f"  bytes inspected      {perf.get('bytes_inspected', 0):,}")


def print_telemetry(campaign) -> None:
    """The campaign-wide telemetry aggregate, human-readable."""
    agg = campaign.telemetry_stats()
    print("campaign telemetry")
    print(f"  snapshots merged     {agg['samples']}")
    print(f"  events emitted       {agg['bus']['emitted']} "
          f"({agg['bus']['dropped']} dropped)")
    for kind in sorted(agg["counts_by_kind"]):
        print(f"    {kind:<20} {agg['counts_by_kind'][kind]}")
    metrics = agg["metrics"]
    for name in ("cryptodrop_indicator_hits_total",
                 "cryptodrop_union_boosts_total",
                 "cryptodrop_suspensions_total"):
        metric = metrics.get(name)
        if not metric:
            continue
        total = sum(value for _labels, value in metric["state"])
        print(f"  {name:<38} {total:g}")
    lost = metrics.get("cryptodrop_detection_files_lost")
    if lost:
        for _labels, series in lost["state"]:
            if series["count"]:
                print(f"  files lost at suspension: {series['count']:g} "
                      f"detections, mean "
                      f"{series['sum'] / series['count']:.1f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the complete 492-sample cohort")
    parser.add_argument("--perf", action="store_true",
                        help="also print aggregated engine perf counters")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable per-sample telemetry and print the "
                             "campaign-wide aggregate")
    args = parser.parse_args()
    scale = FULL if args.full else SMALL

    config = CryptoDropConfig(telemetry_enabled=True) \
        if args.telemetry else None
    print(f"running campaign at scale: {scale.describe()}")
    campaign = campaign_at_scale(scale, config=config)

    print()
    print(run_table1(scale, campaign=campaign).render())
    print()
    print(run_fig3(scale, campaign=campaign).render())
    print()
    print(run_fig5(scale, campaign=campaign).render())
    print()
    print(run_union_effect(scale, campaign=campaign).render())
    if args.perf:
        print()
        print_perf(campaign)
    if args.telemetry:
        print()
        print_telemetry(campaign)


if __name__ == "__main__":
    main()
