#!/usr/bin/env python
"""Campaign survey: a scaled-down version of the paper's evaluation.

Runs a few samples from every one of the fourteen families against a
shared corpus with per-sample VM revert, then prints the Table-I-style
family breakdown, the Fig.-3 files-lost distribution, the Fig.-5
extension frequencies, and the §V-B2 union accounting.

Run:  python examples/campaign_survey.py [--full]

``--full`` runs the complete 492-sample cohort on the 5,099-file corpus
(a few minutes of CPU); the default is a faithful small-scale pass.
"""

import argparse

from repro.experiments import (FULL, SMALL, campaign_at_scale, run_fig3,
                               run_fig5, run_table1, run_union_effect)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the complete 492-sample cohort")
    args = parser.parse_args()
    scale = FULL if args.full else SMALL

    print(f"running campaign at scale: {scale.describe()}")
    campaign = campaign_at_scale(scale)

    print()
    print(run_table1(scale, campaign=campaign).render())
    print()
    print(run_fig3(scale, campaign=campaign).render())
    print()
    print(run_fig5(scale, campaign=campaign).render())
    print()
    print(run_union_effect(scale, campaign=campaign).render())


if __name__ == "__main__":
    main()
