#!/usr/bin/env python
"""Campaign survey: a scaled-down version of the paper's evaluation.

Runs a few samples from every one of the fourteen families against a
shared corpus with per-sample VM revert, then prints the Table-I-style
family breakdown, the Fig.-3 files-lost distribution, the Fig.-5
extension frequencies, and the §V-B2 union accounting.

Run:  python examples/campaign_survey.py [--full] [--perf]

``--full`` runs the complete 492-sample cohort on the 5,099-file corpus
(a few minutes of CPU); the default is a faithful small-scale pass.
``--perf`` appends the campaign's aggregated engine counters (digest
cache and BaselineStore traffic, bytes digested, throughput — see
docs/performance.md).
"""

import argparse

from repro.experiments import (FULL, SMALL, campaign_at_scale, run_fig3,
                               run_fig5, run_table1, run_union_effect)


def print_perf(campaign) -> None:
    """The campaign's merged per-sample engine counters, human-readable."""
    perf = campaign.perf_stats()
    cache = perf.get("digest_cache", {})
    print("campaign performance")
    print(f"  samples              {perf.get('samples', 0)}")
    if perf.get("wall_seconds"):
        print(f"  wall seconds         {perf['wall_seconds']:.2f}")
        print(f"  samples/second       {perf['samples_per_second']:.2f}")
        print(f"  workers              {perf.get('workers', 1)}")
    store = perf.get("baseline_store")
    if store:
        print(f"  baseline store       {store['entries']} entries "
              f"({store['backend']}, fingerprint {store['fingerprint']})")
    print(f"  digest cache         {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses "
          f"({cache.get('hit_rate', 0.0):.0%})")
    print(f"  store hits/misses    {cache.get('store_hits', 0)} / "
          f"{cache.get('store_misses', 0)}")
    print(f"  deferred digests     {perf.get('deferred_digests', 0)}")
    print(f"  bytes digested       {perf.get('bytes_digested', 0):,}")
    print(f"  bytes inspected      {perf.get('bytes_inspected', 0):,}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the complete 492-sample cohort")
    parser.add_argument("--perf", action="store_true",
                        help="also print aggregated engine perf counters")
    args = parser.parse_args()
    scale = FULL if args.full else SMALL

    print(f"running campaign at scale: {scale.describe()}")
    campaign = campaign_at_scale(scale)

    print()
    print(run_table1(scale, campaign=campaign).render())
    print()
    print(run_fig3(scale, campaign=campaign).render())
    print()
    print(run_fig5(scale, campaign=campaign).render())
    print()
    print(run_union_effect(scale, campaign=campaign).render())
    if args.perf:
        print()
        print_perf(campaign)


if __name__ == "__main__":
    main()
