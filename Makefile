# Convenience entry points.  Tier-1 is plain `make test`; `make verify`
# is the full pre-merge gate (tests + bench regression check); the chaos
# suite (fault injection, worker kills, crash/resume) can be run on its
# own while iterating on robustness work.

PYTEST = PYTHONPATH=src python -m pytest -x -q

.PHONY: verify test unit chaos bench bench-smoke bench-check telemetry-demo \
	store-demo

# the default pre-merge gate: tier-1 tests, then the hot-path regression
# check against the newest committed BENCH_<N>.json
verify: test bench-check

test:
	$(PYTEST)

# tier-1 minus the chaos suite — the fast inner loop
unit:
	$(PYTEST) -m "not chaos"

# fault-injection + crash-resilience suite only
chaos:
	$(PYTEST) -m chaos tests/test_chaos.py tests/test_faults.py \
		tests/test_ingest.py

# full hot-path benchmark harness → BENCH_8.json (see docs/performance.md)
bench:
	PYTHONPATH=src python benchmarks/run_bench.py
	PYTHONPATH=src:benchmarks python -m pytest -q \
		benchmarks/bench_performance.py benchmarks/bench_close_path.py \
		benchmarks/bench_compare_batch.py

# seconds-scale harness pass: validates every bench section end-to-end
# without the full-scale timings (CI runs this on every push)
bench-smoke:
	PYTHONPATH=src python benchmarks/run_bench.py --smoke \
		--output /tmp/BENCH.smoke.json

# regression gate: rerun the harness and fail on >25% hot-path slowdown
# against the newest committed BENCH_<N>.json baseline
bench-check:
	PYTHONPATH=src python benchmarks/run_bench.py --output /tmp/BENCH.current.json
	python benchmarks/check_regression.py --current /tmp/BENCH.current.json

# telemetry walkthrough: one Class-A sample under a telemetry-enabled
# monitor, full detection narrative printed (docs/observability.md)
telemetry-demo:
	PYTHONPATH=src python examples/detection_timeline.py --prometheus

# persistent-store round trip: sharded build of a small corpus into a
# .cdbs file, header dump, then the full fsck pass (docs/performance.md)
store-demo:
	PYTHONPATH=src python examples/store_tool.py build /tmp/cryptodrop-demo.cdbs \
		--files 800 --workers 2
	PYTHONPATH=src python examples/store_tool.py info /tmp/cryptodrop-demo.cdbs
	PYTHONPATH=src python examples/store_tool.py verify /tmp/cryptodrop-demo.cdbs
