# Convenience entry points.  Tier-1 is plain `make test`; the chaos
# suite (fault injection, worker kills, crash/resume) can be run on its
# own while iterating on robustness work.

PYTEST = PYTHONPATH=src python -m pytest -x -q

.PHONY: test unit chaos

test:
	$(PYTEST)

# tier-1 minus the chaos suite — the fast inner loop
unit:
	$(PYTEST) -m "not chaos"

# fault-injection + crash-resilience suite only
chaos:
	$(PYTEST) -m chaos tests/test_chaos.py tests/test_faults.py
