"""Plain-text rendering for experiment output.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a
terminal (no plotting dependencies).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["ascii_table", "ascii_bars", "ascii_cdf", "header"]


def header(title: str, width: int = 72) -> str:
    """A boxed section title."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def ascii_table(columns: Sequence[str], rows: Iterable[Sequence],
                align_right: bool = True) -> str:
    """Render rows as a fixed-width table."""
    rendered: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        pieces = []
        for i, cell in enumerate(cells):
            pieces.append(cell.rjust(widths[i]) if align_right and i > 0
                          else cell.ljust(widths[i]))
        return "  ".join(pieces)
    lines = [fmt(list(columns)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


def ascii_bars(items: Sequence[Tuple[str, float]], width: int = 46,
               unit: str = "") -> str:
    """Horizontal bar chart (Fig. 5-style frequency plots)."""
    if not items:
        return "(no data)"
    peak = max(value for _label, value in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_w)} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def ascii_cdf(points: Sequence[Tuple[float, float]], width: int = 56,
              height: int = 14, x_label: str = "x",
              y_label: str = "cumulative fraction") -> str:
    """Step-function CDF plot (Fig. 3-style)."""
    if not points:
        return "(no data)"
    max_x = max(x for x, _ in points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    prev_col = 0
    prev_row = height - 1
    for x, frac in points:
        col = min(width - 1, int(round((width - 1) * x / max_x)))
        row = min(height - 1, int(round((height - 1) * (1.0 - frac))))
        for c in range(prev_col, col + 1):
            grid[prev_row][c] = "_" if c != col else "|"
        for r in range(min(prev_row, row), max(prev_row, row) + 1):
            grid[r][col] = "|"
        grid[row][col] = "*"
        prev_col, prev_row = col, row
    for c in range(prev_col, width):
        grid[prev_row][c] = "_"
    lines = ["1.0 +" + "".join(grid[0])]
    for r in range(1, height):
        prefix = "0.5 +" if r == height // 2 else "    |"
        lines.append(prefix + "".join(grid[r]))
    lines.append("0.0 +" + "-" * width)
    lines.append(f"     0{x_label.rjust(width - 8)}{max_x:>7.0f}")
    lines.append(f"     ({y_label} vs {x_label})")
    return "\n".join(lines)
