"""§V-E — ransomware scripts vs signature AV vs CryptoDrop.

PoshCoder is PowerShell: trivially morphed, never needing to exist on
disk.  The paper submitted it to VirusTotal (8/57 detections), added a
single character (two of those engines went blind), and showed CryptoDrop
— which never looks at the program — still stopped it after 11 files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.signature_av import MultiEngineAV, ScanReport, mutate_one_byte
from ..core.config import CryptoDropConfig
from ..ransomware import working_cohort
from ..sandbox import VirtualMachine, run_sample
from .common import FULL, ExperimentScale, corpus_at_scale
from .paper_constants import PAPER_POSHCODER
from .reporting import ascii_table, header

__all__ = ["ScriptsResult", "run_scripts_experiment"]


@dataclass
class ScriptsResult:
    original_scan: ScanReport
    mutated_scan: ScanReport
    #: detections on a *held-out* polymorphic Virlock variant (trained on
    #: the rest of the family): polymorphism defeats byte signatures
    unseen_virlock_detections: int
    #: detections on a held-out TeslaCrypt variant (shared family marker):
    #: conventional families stay signature-matchable
    unseen_teslacrypt_detections: int
    cryptodrop_files_lost: int
    cryptodrop_detected: bool

    @property
    def engines_lost(self) -> int:
        return self.original_scan.count - self.mutated_scan.count

    def render(self) -> str:
        paper = PAPER_POSHCODER
        rows = [
            ("AV engines", self.original_scan.total_engines,
             paper["engines"]),
            ("detections, original script", self.original_scan.count,
             paper["detections_original"]),
            ("detections lost after 1-char change", self.engines_lost,
             paper["detections_lost_after_mutation"]),
            ("CryptoDrop files lost", self.cryptodrop_files_lost,
             paper["cryptodrop_files_lost"]),
            ("CryptoDrop detected",
             "yes" if self.cryptodrop_detected else "NO", "yes"),
            ("detections on unseen Virlock variant (polymorphic)",
             self.unseen_virlock_detections, "(near 0)"),
            ("detections on unseen TeslaCrypt variant (marker)",
             self.unseen_teslacrypt_detections, "(high)"),
        ]
        return (header("§V-E: PoshCoder — scripts vs signatures")
                + "\n" + ascii_table(("metric", "measured", "paper"), rows))


def run_scripts_experiment(scale: ExperimentScale = FULL,
                           config: Optional[CryptoDropConfig] = None
                           ) -> ScriptsResult:
    """Run the §V-E PoshCoder comparison: AV panel vs CryptoDrop."""
    cohort = working_cohort()
    poshcoder = next(s for s in cohort
                     if s.profile.family == "poshcoder")
    holdout_virlock = next(s for s in cohort
                           if s.profile.family == "virlock")
    holdout_tesla = next(s for s in cohort
                         if s.profile.family == "teslacrypt")

    # train the AV panel on everything it could plausibly have seen —
    # including PoshCoder itself (the paper's 8/57 knew the exact sample)
    # but *excluding* the two held-out variants
    av = MultiEngineAV()
    av.train(s for s in cohort
             if s not in (holdout_virlock, holdout_tesla))

    original = av.scan_sample(poshcoder)
    mutated = av.scan(mutate_one_byte(poshcoder.image_bytes),
                      is_script=True)
    unseen_virlock = av.scan_sample(holdout_virlock).count
    unseen_tesla = av.scan_sample(holdout_tesla).count

    corpus = corpus_at_scale(scale)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    result = run_sample(machine, poshcoder, config)
    return ScriptsResult(
        original_scan=original,
        mutated_scan=mutated,
        unseen_virlock_detections=unseen_virlock,
        unseen_teslacrypt_detections=unseen_tesla,
        cryptodrop_files_lost=result.files_lost,
        cryptodrop_detected=result.detected)
