"""Ground-truth numbers from the paper, for side-by-side reporting.

Every experiment prints its measured value next to the corresponding
value below; EXPERIMENTS.md records both.  Sources: Table I, Fig. 3,
Fig. 5, Fig. 6 / §V-F prose, §V-B2, §V-C, §V-E, §V-H.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE1", "PAPER_OVERALL", "PAPER_UNION", "PAPER_FIG5_TOP",
    "PAPER_FP_SCORES", "PAPER_PERF_MS", "PAPER_CTB_RERUN",
    "PAPER_POSHCODER",
]

#: Table I: family -> (class A, class B, class C, total, median files lost)
PAPER_TABLE1 = {
    "cryptodefense":        (0, 0, 18, 18, 6.5),
    "cryptofortress":       (2, 0, 0, 2, 14),
    "cryptolocker":         (13, 16, 2, 31, 10),
    "cryptolocker-copycat": (0, 1, 1, 2, 20),
    "cryptotorlocker2015":  (1, 0, 0, 1, 3),
    "cryptowall":           (2, 0, 6, 8, 10),
    "ctb-locker":           (1, 120, 1, 122, 29),
    "filecoder":            (51, 9, 12, 72, 10),
    "gpcode":               (12, 0, 1, 13, 22),
    "mbladvisory":          (0, 0, 1, 1, 9),
    "poshcoder":            (1, 0, 0, 1, 10),
    "ransom-fue":           (0, 1, 0, 1, 19),
    "teslacrypt":           (148, 0, 1, 149, 10),
    "virlock":              (0, 0, 20, 20, 8),
    "xorist":               (51, 0, 0, 51, 3),
}

#: headline results (abstract, §V-B)
PAPER_OVERALL = {
    "samples": 492,
    "families": 14,           # +1 for the unattributed Ransom-FUE
    "detection_rate": 1.0,
    "median_files_lost": 10,
    "min_files_lost": 0,
    "max_files_lost": 33,
    "corpus_files": 5099,
    "corpus_dirs": 511,
}

#: §V-B2 union-indication accounting
PAPER_UNION = {
    "samples_with_union": 457,
    "union_rate": 457 / 492,
    "class_c_total": 63,
    "class_c_linkable": 41,     # move-over: linking restores union
    "class_c_evaders": 22,      # delete-disposal: union evaded
    "evader_median_files_lost": 6,
    "non_union_class_a": 13,    # detected before similarity triggered
}

#: Fig. 5: top formats attacked first, in order
PAPER_FIG5_TOP = (".pdf", ".odt", ".docx", ".pptx")

#: §V-F / Fig. 6 final scores of the analysed five, + the one detection
PAPER_FP_SCORES = {
    "lightroom.exe": 107.0,
    "mogrify.exe": 0.0,
    "iTunes.exe": 16.0,
    "WINWORD.EXE": 0.0,
    "EXCEL.EXE": 150.0,
}
PAPER_BENIGN_DETECTIONS = {"7z.exe"}

#: §V-H added latency (milliseconds) per operation class
PAPER_PERF_MS = {
    "open": 1.0,       # "less than 1ms" (upper bound)
    "read": 1.0,       # "less than 1ms" (upper bound)
    "close": 1.58,
    "write": 9.0,
    "rename": 16.0,
}

#: §V-C CTB-Locker rerun without sub-512-byte files: 29 -> 7 files lost
PAPER_CTB_RERUN = {"with_small": 29, "without_small": 7}

#: §V-E PoshCoder vs VirusTotal
PAPER_POSHCODER = {
    "engines": 57,
    "detections_original": 8,
    "detections_lost_after_mutation": 2,
    "cryptodrop_files_lost": 11,
}
