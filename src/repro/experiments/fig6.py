"""Figure 6 / §V-F — false positives vs non-union detection threshold.

The paper ran thirty benign applications; Fig. 6 sweeps the non-union
threshold for the five analysed in depth and reports each one's final
reputation score (Lightroom 107, ImageMagick 0, iTunes 16, Word 0,
Excel 150).  At the experiment threshold of 200, the only benign
detection in the whole suite was 7-zip archiving the documents tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..benign import all_apps, analysed_five
from ..core.config import CryptoDropConfig
from ..sandbox import BenignResult, VirtualMachine, run_benign
from .common import FULL, ExperimentScale, corpus_at_scale
from .paper_constants import PAPER_FP_SCORES
from .reporting import ascii_table, header

__all__ = ["Fig6Result", "run_fig6", "DEFAULT_THRESHOLDS"]

DEFAULT_THRESHOLDS: Tuple[int, ...] = tuple(range(0, 301, 25))


@dataclass
class Fig6Result:
    results: List[BenignResult]
    thresholds: Sequence[int]
    suite: str                         # "five" | "all"

    def result_for(self, app_name: str) -> BenignResult:
        for result in self.results:
            if result.app_name == app_name:
                return result
        raise KeyError(app_name)

    def false_positives_at(self, threshold: float) -> int:
        """FP count at a hypothetical non-union threshold.

        7-zip's flag is excluded only when counting *false* positives is
        meaningless for it — the paper counts it as an expected true
        positive; we report it separately in render()."""
        return sum(1 for r in self.results
                   if r.score_at_threshold(threshold))

    def sweep(self) -> Dict[int, int]:
        return {t: self.false_positives_at(t) for t in self.thresholds}

    def final_scores(self) -> Dict[str, float]:
        return {r.app_name: r.final_score for r in self.results}

    def detected_apps(self) -> List[str]:
        return sorted(r.app_name for r in self.results if r.detected)

    def render(self) -> str:
        score_rows = []
        for result in sorted(self.results, key=lambda r: -r.final_score):
            paper = PAPER_FP_SCORES.get(result.app_name)
            score_rows.append((result.app_name,
                               f"{result.final_score:g}",
                               "" if paper is None else f"{paper:g}",
                               "yes" if result.detected else ""))
        sweep_rows = [(t, n) for t, n in self.sweep().items()]
        return (header(f"Figure 6: benign applications ({self.suite} suite) "
                       "vs non-union threshold")
                + "\n" + ascii_table(
                    ("application", "final score", "paper score",
                     "flagged@200"), score_rows)
                + "\n\nfalse positives at each threshold:\n"
                + ascii_table(("threshold", "apps over it"), sweep_rows)
                + f"\n\ndetections at threshold 200: "
                  f"{', '.join(self.detected_apps()) or 'none'}"
                + "\n(paper: one — 7-zip, called 'normal, expected, "
                  "desirable')")


def run_fig6(scale: ExperimentScale = FULL, suite: str = "five",
             config: Optional[CryptoDropConfig] = None,
             thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
             seed: int = 42) -> Fig6Result:
    """Run the benign suite ("five" or "all" thirty) and sweep thresholds."""
    if suite not in ("five", "all"):
        raise ValueError(f"unknown suite {suite!r}")
    apps = analysed_five(seed) if suite == "five" else all_apps(seed)
    corpus = corpus_at_scale(scale)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    results = [run_benign(machine, app, config) for app in apps]
    return Fig6Result(results=results, thresholds=tuple(thresholds),
                      suite=suite)
