"""Experiment harness — one module per paper table/figure/section.

| Paper artifact | Module | Entry point |
|---|---|---|
| Table I | table1 | run_table1 |
| Figure 3 | fig3 | run_fig3 |
| Figure 4 | fig4 | run_fig4 |
| Figure 5 | fig5 | run_fig5 |
| Figure 6 / §V-F | fig6 | run_fig6 |
| §V-B2 union accounting | union_effect | run_union_effect |
| §V-C CTB small-file rerun | ablations | run_ctb_small_file_rerun |
| §V-E scripts vs AV | scripts_experiment | run_scripts_experiment |
| §V-H performance | performance | run_performance |
| design ablations | ablations | run_indicator_ablation |
"""

from .ablations import (AblationResult, AblationRow, CtbRerunResult,
                        DynamicScoringResult, run_ctb_small_file_rerun,
                        run_dynamic_scoring, run_indicator_ablation)
from .common import (FULL, SMALL, TINY, ExperimentScale, campaign_at_scale,
                     corpus_at_scale, samples_at_scale)
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, Fig4Sample, run_fig4
from .fig5 import Fig5Result, run_fig5
from .fig6 import DEFAULT_THRESHOLDS, Fig6Result, run_fig6
from .paper_constants import (PAPER_CTB_RERUN, PAPER_FIG5_TOP,
                              PAPER_FP_SCORES, PAPER_OVERALL,
                              PAPER_PERF_MS, PAPER_POSHCODER, PAPER_TABLE1,
                              PAPER_UNION)
from .performance import (PerformanceResult, run_performance,
                          standard_io_workload)
from .reporting import ascii_bars, ascii_cdf, ascii_table, header
from .scripts_experiment import ScriptsResult, run_scripts_experiment
from .sensitivity import (SensitivityResult, SensitivityRow,
                          run_sensitivity)
from .table1 import Table1Result, Table1Row, run_table1
from .union_effect import UnionEffectResult, run_union_effect

__all__ = [
    "AblationResult", "AblationRow", "CtbRerunResult", "DynamicScoringResult",
    "DEFAULT_THRESHOLDS", "ExperimentScale", "FULL", "Fig3Result",
    "Fig4Result", "Fig4Sample", "Fig5Result", "Fig6Result",
    "PAPER_CTB_RERUN", "PAPER_FIG5_TOP", "PAPER_FP_SCORES",
    "PAPER_OVERALL", "PAPER_PERF_MS", "PAPER_POSHCODER", "PAPER_TABLE1",
    "PAPER_UNION", "PerformanceResult", "SMALL", "ScriptsResult",
    "TINY", "Table1Result", "Table1Row", "UnionEffectResult",
    "ascii_bars", "ascii_cdf", "ascii_table", "campaign_at_scale",
    "corpus_at_scale", "header", "run_ctb_small_file_rerun", "run_fig3",
    "run_fig4", "run_fig5", "run_fig6", "run_indicator_ablation",
    "run_dynamic_scoring", "run_performance", "run_scripts_experiment", "run_table1",
    "run_sensitivity", "run_union_effect", "samples_at_scale",
    "SensitivityResult", "SensitivityRow", "standard_io_workload",
]
