"""Corpus-composition sensitivity (beyond the paper).

§V-B1 explains that detection speed depends on *what the victim stores*:
"samples which attack high entropy files first experience a delay before
being assigned points for increasing file entropy."  This experiment
makes that systematic: the same family subset runs against corpora
modelling different users (generic / writer / photographer / accountant)
and the files-lost medians are compared.

Expected shape: the photographer's compressed-everything corpus starves
the entropy delta and detection leans on type change + similarity
(slower); the writer's text-heavy corpus trips the delta instantly
(faster, except where tiny notes stall sdhash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import CryptoDropConfig
from ..corpus.builder import generate
from ..corpus.profiles import PROFILE_NAMES, profile_spec
from ..ransomware import instantiate, working_cohort
from ..sandbox import run_campaign
from .common import SMALL, ExperimentScale
from .reporting import ascii_table, header

__all__ = ["SensitivityRow", "SensitivityResult", "run_sensitivity"]


@dataclass
class SensitivityRow:
    profile: str
    median_files_lost: float
    max_files_lost: int
    union_rate: float
    detection_rate: float


@dataclass
class SensitivityResult:
    rows: List[SensitivityRow] = field(default_factory=list)
    per_profile_medians: Dict[str, float] = field(default_factory=dict)

    def row(self, profile: str) -> SensitivityRow:
        for row in self.rows:
            if row.profile == profile:
                return row
        raise KeyError(profile)

    def render(self) -> str:
        body = [(r.profile, f"{r.median_files_lost:g}", r.max_files_lost,
                 f"{r.union_rate:.0%}", f"{r.detection_rate:.0%}")
                for r in self.rows]
        return (header("Corpus-composition sensitivity "
                       "(same samples, different victims)")
                + "\n" + ascii_table(
                    ("user profile", "median FL", "max FL", "union rate",
                     "detected"), body)
                + "\n\n(§V-B1's mechanism, systematised: what the victim "
                  "stores sets how fast\n each indicator can speak)")


def run_sensitivity(scale: ExperimentScale = SMALL,
                    samples_per_family: int = 2,
                    config: Optional[CryptoDropConfig] = None
                    ) -> SensitivityResult:
    """Run a family-spread subset against each user-profile corpus."""
    cohort = working_cohort()
    by_family: Dict[str, List] = {}
    for sample in cohort:
        by_family.setdefault(sample.profile.family, []).append(sample)
    subset = []
    for family in sorted(by_family):
        subset.extend(by_family[family][:samples_per_family])

    result = SensitivityResult()
    for profile in PROFILE_NAMES:
        corpus = generate(scale.corpus_seed + hash(profile) % 1000,
                          scale.n_files, scale.n_dirs,
                          spec=profile_spec(profile), use_cache=False)
        fresh = [instantiate(s.profile) for s in subset]
        campaign = run_campaign(fresh, corpus, config)
        values = campaign.files_lost_values()
        result.rows.append(SensitivityRow(
            profile=profile,
            median_files_lost=campaign.median_files_lost,
            max_files_lost=max(values) if values else 0,
            union_rate=campaign.union_rate,
            detection_rate=campaign.detection_rate))
        result.per_profile_medians[profile] = campaign.median_files_lost
    return result
