"""Figure 4 — directory-access patterns of three contrasting samples.

The paper visualises which directories TeslaCrypt (depth-first from the
deepest directory), CTB-Locker (size-ascending, directory-oblivious), and
GPcode (top-down from the root) touched before detection.  We reproduce
the underlying measurements: the set of directories where each sample
read or wrote a file, summarised per tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..corpus.builder import GeneratedCorpus
from ..ransomware import working_cohort
from ..sandbox import SampleResult, VirtualMachine, run_sample
from .common import FULL, ExperimentScale, corpus_at_scale
from .reporting import ascii_bars, ascii_table, header

__all__ = ["Fig4Sample", "Fig4Result", "run_fig4"]

#: (family, pick) — pick="first" uses the primary-class build,
#: pick="straggler" the off-class one (GPcode's 2008 Class C)
FIG4_SAMPLES = (("teslacrypt", "first"), ("ctb-locker", "first"),
                ("gpcode", "straggler"))


@dataclass
class Fig4Sample:
    family: str
    sample_name: str
    behavior_class: str
    traversal: str
    files_lost: int
    touched_dirs: int
    total_dirs: int
    depth_histogram: Dict[int, int]
    mean_touched_depth: float
    result: SampleResult

    def render(self) -> str:
        bars = ascii_bars(sorted(
            (f"depth {d}", count)
            for d, count in self.depth_histogram.items()))
        return (f"{self.family} ({self.sample_name}, Class "
                f"{self.behavior_class}, {self.traversal}):\n"
                f"  touched {self.touched_dirs}/{self.total_dirs} "
                f"directories before detection, {self.files_lost} files "
                f"lost, mean touched depth {self.mean_touched_depth:.2f}\n"
                + bars)


@dataclass
class Fig4Result:
    samples: List[Fig4Sample]
    corpus_mean_depth: float

    def by_family(self, family: str) -> Fig4Sample:
        for sample in self.samples:
            if sample.family == family:
                return sample
        raise KeyError(family)

    def render(self) -> str:
        summary = ascii_table(
            ("family", "class", "traversal", "dirs touched", "files lost",
             "mean depth"),
            [(s.family, s.behavior_class, s.traversal,
              f"{s.touched_dirs}/{s.total_dirs}", s.files_lost,
              f"{s.mean_touched_depth:.2f}") for s in self.samples])
        return (header("Figure 4: directory-access trees before detection")
                + f"\ncorpus mean directory depth: "
                  f"{self.corpus_mean_depth:.2f}\n\n" + summary + "\n\n"
                + "\n\n".join(s.render() for s in self.samples))


def _pick_sample(family: str, pick: str):
    rows = [s for s in working_cohort() if s.profile.family == family]
    return rows[-1] if pick == "straggler" else rows[0]


def run_fig4(scale: ExperimentScale = FULL,
             corpus: Optional[GeneratedCorpus] = None) -> Fig4Result:
    """Run the three Fig. 4 samples and collect their access trees."""
    corpus = corpus or corpus_at_scale(scale)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    docs = machine.docs_root
    all_dirs = {docs.joinpath(*d) for d in corpus.dirs}
    corpus_mean_depth = (sum(len(d) for d in corpus.dirs) / len(corpus.dirs))
    out: List[Fig4Sample] = []
    for family, pick in FIG4_SAMPLES:
        sample = _pick_sample(family, pick)
        result = run_sample(machine, sample, record_ops=True)
        touched = {d for d in result.touched_dirs if d in all_dirs}
        histogram: Dict[int, int] = {}
        for directory in touched:
            rel_depth = directory.depth - docs.depth
            histogram[rel_depth] = histogram.get(rel_depth, 0) + 1
        depths = [d.depth - docs.depth for d in touched]
        out.append(Fig4Sample(
            family=family,
            sample_name=result.sample_name,
            behavior_class=result.behavior_class,
            traversal=result.traversal,
            files_lost=result.files_lost,
            touched_dirs=len(touched),
            total_dirs=len(all_dirs),
            depth_histogram=histogram,
            mean_touched_depth=(sum(depths) / len(depths)) if depths else 0.0,
            result=result))
    return Fig4Result(samples=out, corpus_mean_depth=corpus_mean_depth)
