"""§V-H — per-operation overhead of the analysis engine.

Two complementary measurements:

* **modelled latency** — what the engine charges the simulated clock per
  operation class (the LatencyModel is calibrated to the paper's driver:
  open/read < 1 ms, close ≈ 1.58 ms, write ≈ 9 ms, rename ≈ 16 ms);
* **measured host cost** — real wall-clock microseconds of engine
  processing per operation on this machine, from a standard workload run
  with and without the monitor attached.  Absolute values are Python's,
  not a kernel driver's; the *ordering* (open/read cheapest → close →
  write → rename most expensive) is the reproduction target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import CryptoDropConfig
from ..core.monitor import CryptoDropMonitor
from ..corpus.builder import generate
from ..sandbox import VirtualMachine
from .paper_constants import PAPER_PERF_MS
from .reporting import ascii_table, header

__all__ = ["PerformanceResult", "run_performance", "standard_io_workload"]

_OP_ORDER = ("open", "read", "close", "write", "rename", "delete")


def standard_io_workload(machine: VirtualMachine, pid: int,
                         n_files: int = 40) -> Dict[str, int]:
    """A fixed mix of operations over corpus files; returns op counts."""
    vfs = machine.vfs
    docs = machine.docs_root
    counts = {op: 0 for op in _OP_ORDER}
    files = [path for path, _node in vfs.peek_walk_files(docs)][:n_files]
    for index, path in enumerate(files):
        handle = vfs.open(pid, path, "rw")
        counts["open"] += 1
        data = vfs.read(pid, handle)
        counts["read"] += 1
        vfs.seek(pid, handle, 0)
        vfs.write(pid, handle, data[:4096] or b"x")
        counts["write"] += 1
        vfs.close(pid, handle)
        counts["close"] += 1
        if index % 4 == 0:
            renamed = path.with_name(path.name + ".bak")
            vfs.rename(pid, path, renamed)
            counts["rename"] += 1
            vfs.rename(pid, renamed, path)
            counts["rename"] += 1
        if index % 7 == 3:
            vfs.delete(pid, path)
            counts["delete"] += 1
    return counts


@dataclass
class PerformanceResult:
    #: engine-charged simulated latency per op class (ms/op)
    modelled_ms: Dict[str, float]
    #: real host time per op with monitor minus without (µs/op)
    measured_overhead_us: Dict[str, float]

    def ordering(self) -> list:
        return sorted(self.modelled_ms,
                      key=lambda k: self.modelled_ms[k])

    def render(self) -> str:
        rows = []
        for op in _OP_ORDER:
            paper = PAPER_PERF_MS.get(op)
            rows.append((op,
                         f"{self.modelled_ms.get(op, 0.0):.2f}",
                         "" if paper is None else f"{paper:g}",
                         f"{self.measured_overhead_us.get(op, 0.0):.0f}"))
        return (header("§V-H: added latency per filesystem operation")
                + "\n" + ascii_table(
                    ("operation", "modelled ms/op", "paper ms/op",
                     "host overhead µs/op"), rows)
                + "\n\n(ordering is the reproduction target: "
                  "open/read < close < write < rename)")


def run_performance(n_files: int = 60, corpus_files: int = 400,
                    config: Optional[CryptoDropConfig] = None,
                    repeats: int = 3) -> PerformanceResult:
    """Measure modelled and host-side per-operation engine overhead (§V-H)."""
    corpus = generate(seed=99, n_files=corpus_files, n_dirs=40)

    def one_run(with_monitor: bool) -> Dict[str, float]:
        machine = VirtualMachine(corpus)
        machine.snapshot()
        monitor = CryptoDropMonitor(machine.vfs, config) if with_monitor \
            else None
        if monitor is not None:
            monitor.attach()
        proc = machine.vfs.processes.spawn("perf.exe")
        # isolate per-op timings by running each op kind's share and
        # measuring around the workload, attributing by op counts
        start = time.perf_counter()
        counts = standard_io_workload(machine, proc.pid, n_files)
        elapsed = time.perf_counter() - start
        ledger: Dict[str, float] = {}
        if monitor is not None:
            for (fname, op_kind), (n, total_us) in \
                    machine.vfs.filters.latency_ledger.items():
                if fname == "cryptodrop" and n:
                    ledger[op_kind] = ledger.get(op_kind, 0.0) + total_us
        machine.revert()
        return {"elapsed": elapsed, "counts": counts, "ledger": ledger}

    # modelled latency: read straight off the engine's charged ledger
    sample = one_run(with_monitor=True)
    modelled_ms = {}
    for op, total_us in sample["ledger"].items():
        n_ops = sample["counts"].get(op, 0)
        if n_ops:
            modelled_ms[op] = total_us / n_ops / 1000.0

    # measured host overhead: per-op wall time with minus without monitor
    def timed(with_monitor: bool) -> Dict[str, float]:
        per_op: Dict[str, list] = {op: [] for op in _OP_ORDER}
        for _ in range(repeats):
            machine = VirtualMachine(corpus)
            machine.snapshot()
            monitor = (CryptoDropMonitor(machine.vfs, config).attach()
                       if with_monitor else None)
            pid = machine.vfs.processes.spawn("perf.exe").pid
            vfs = machine.vfs
            files = [p for p, _ in vfs.peek_walk_files(machine.docs_root)]
            files = files[:n_files]
            for path in files:
                t0 = time.perf_counter()
                handle = vfs.open(pid, path, "rw")
                per_op["open"].append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                data = vfs.read(pid, handle)
                per_op["read"].append(time.perf_counter() - t0)
                vfs.seek(pid, handle, 0)
                t0 = time.perf_counter()
                vfs.write(pid, handle, data[:4096] or b"x")
                per_op["write"].append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                vfs.close(pid, handle)
                per_op["close"].append(time.perf_counter() - t0)
                renamed = path.with_name(path.name + ".bak")
                t0 = time.perf_counter()
                vfs.rename(pid, path, renamed)
                per_op["rename"].append(time.perf_counter() - t0)
                vfs.rename(pid, renamed, path)
                t0 = time.perf_counter()
                vfs.delete(pid, path)
                per_op["delete"].append(time.perf_counter() - t0)
            if monitor is not None:
                monitor.detach()
            machine.revert()
        return {op: (sum(vals) / len(vals) * 1e6 if vals else 0.0)
                for op, vals in per_op.items()}

    with_mon = timed(True)
    without = timed(False)
    measured = {op: max(0.0, with_mon[op] - without[op])
                for op in _OP_ORDER}
    return PerformanceResult(modelled_ms=modelled_ms,
                             measured_overhead_us=measured)
