"""Ablation experiments.

Covers the paper's explicit rerun (§V-C: CTB-Locker on a corpus without
sub-512-byte files: 29 → 7 files lost) plus the design-choice ablations
DESIGN.md calls out: each indicator in isolation, union disabled, and the
CTPH similarity backend.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.single_indicator import ablation_suite
from ..benign import analysed_five
from ..core.config import CryptoDropConfig
from ..ransomware import working_cohort
from ..sandbox import VirtualMachine, run_benign, run_campaign, run_sample
from .common import FULL, TINY, ExperimentScale, corpus_at_scale, \
    samples_at_scale
from .paper_constants import PAPER_CTB_RERUN
from .reporting import ascii_table, header

__all__ = ["CtbRerunResult", "run_ctb_small_file_rerun",
           "AblationRow", "AblationResult", "run_indicator_ablation",
           "DynamicScoringResult", "run_dynamic_scoring"]


# ---------------------------------------------------------------------------
# §V-C: CTB-Locker without the small files
# ---------------------------------------------------------------------------

@dataclass
class CtbRerunResult:
    lost_with_small: int
    lost_without_small: int
    small_files_removed: int

    def render(self) -> str:
        paper = PAPER_CTB_RERUN
        rows = [
            ("files lost, full corpus", self.lost_with_small,
             paper["with_small"]),
            ("files lost, corpus without <512B files",
             self.lost_without_small, paper["without_small"]),
            ("small files removed", self.small_files_removed, "~26"),
        ]
        return (header("§V-C: CTB-Locker rerun without sub-512B files")
                + "\n" + ascii_table(("metric", "measured", "paper"), rows))


def run_ctb_small_file_rerun(scale: ExperimentScale = FULL,
                             config: Optional[CryptoDropConfig] = None
                             ) -> CtbRerunResult:
    """The §V-C rerun: one CTB-Locker sample with and without <512B files."""
    sample = next(s for s in working_cohort()
                  if s.profile.family == "ctb-locker")
    corpus = corpus_at_scale(scale)
    machine = VirtualMachine(corpus)
    machine.snapshot()
    with_small = run_sample(machine, sample, config)

    filtered = corpus.without_small_files(512)
    machine2 = VirtualMachine(filtered)
    machine2.snapshot()
    # fresh sample object (they accumulate per-run state)
    sample2 = next(s for s in working_cohort()
                   if s.profile.family == "ctb-locker")
    without_small = run_sample(machine2, sample2, config)
    return CtbRerunResult(
        lost_with_small=with_small.files_lost,
        lost_without_small=without_small.files_lost,
        small_files_removed=len(corpus.files) - len(filtered.files))


# ---------------------------------------------------------------------------
# indicators in isolation / union off / CTPH backend
# ---------------------------------------------------------------------------

@dataclass
class AblationRow:
    config_name: str
    detection_rate: float
    median_files_lost: float
    max_files_lost: int
    union_rate: float
    benign_flagged: int               # of the analysed five, at 200


@dataclass
class AblationResult:
    rows: List[AblationRow] = field(default_factory=list)

    def row(self, name: str) -> AblationRow:
        for row in self.rows:
            if row.config_name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        body = [(r.config_name, f"{r.detection_rate:.0%}",
                 f"{r.median_files_lost:g}", r.max_files_lost,
                 f"{r.union_rate:.0%}", r.benign_flagged)
                for r in self.rows]
        return (header("Ablation: indicators in isolation and variants")
                + "\n" + ascii_table(
                    ("configuration", "detect rate", "median FL", "max FL",
                     "union rate", "benign FPs (of 5)"), body)
                + "\n\n(the paper's claim: each indicator has value alone, "
                  "but only the union\n combination is both fast and "
                  "quiet — §III-E)")


def run_indicator_ablation(scale: ExperimentScale = TINY,
                           max_samples: int = 12,
                           benign_seed: int = 42) -> AblationResult:
    """Sweep the ablation suite over a sample subset + the benign five.

    Detection for ablated configs is judged at the same thresholds; a
    weaker indicator set means later or missed detections and/or more
    benign flags.
    """
    corpus = corpus_at_scale(scale)
    samples = samples_at_scale(scale)[:max_samples]
    result = AblationResult()
    for name, config in ablation_suite().items():
        campaign = run_campaign([type(s)(s.profile) for s in samples],
                                corpus, config)
        machine = VirtualMachine(corpus)
        machine.snapshot()
        flagged = 0
        for app in analysed_five(benign_seed):
            benign = run_benign(machine, app, config)
            if benign.detected:
                flagged += 1
        values = campaign.files_lost_values()
        result.rows.append(AblationRow(
            config_name=name,
            detection_rate=campaign.detection_rate,
            median_files_lost=statistics.median(values) if values else 0.0,
            max_files_lost=max(values) if values else 0,
            union_rate=campaign.union_rate,
            benign_flagged=flagged))
    return result


# ---------------------------------------------------------------------------
# §V-C future work: dynamic scoring
# ---------------------------------------------------------------------------

@dataclass
class DynamicScoringResult:
    """The paper's proposed optimisation, measured.

    "Once identified, CryptoDrop could adjust the number of reputation
    points assessed ... leading to faster detection even when union
    indication is not possible.  We leave dynamic scoring to future work
    but note that this may have an adverse effect on false positives."
    Both halves of that sentence are checked: CTB-Locker's small-file
    sweep should convict sooner, and the benign five should show whether
    the false-positive margin shrinks.
    """

    ctb_lost_static: int
    ctb_lost_dynamic: int
    benign_scores_static: Dict[str, float]
    benign_scores_dynamic: Dict[str, float]

    @property
    def speedup(self) -> float:
        if self.ctb_lost_dynamic == 0:
            return float(self.ctb_lost_static or 1)
        return self.ctb_lost_static / self.ctb_lost_dynamic

    def render(self) -> str:
        rows = [("CTB-Locker files lost (static)", self.ctb_lost_static,
                 "~29"),
                ("CTB-Locker files lost (dynamic)", self.ctb_lost_dynamic,
                 "(lower)"),
                ("speedup", f"{self.speedup:.1f}x", ">1x")]
        for app, static_score in sorted(self.benign_scores_static.items()):
            rows.append((f"benign {app} score static->dynamic",
                         f"{static_score:g} -> "
                         f"{self.benign_scores_dynamic[app]:g}", ""))
        return (header("§V-C future work: dynamic scoring")
                + "\n" + ascii_table(("metric", "measured", "expected"),
                                     rows))


def run_dynamic_scoring(scale: ExperimentScale = FULL) -> DynamicScoringResult:
    """Measure the §V-C dynamic-scoring proposal on CTB-Locker and the benign five."""
    from ..core.config import default_config
    corpus = corpus_at_scale(scale)
    static_cfg = default_config()
    dynamic_cfg = default_config(dynamic_scoring=True)

    def ctb_lost(config):
        sample = next(s for s in working_cohort()
                      if s.profile.family == "ctb-locker")
        machine = VirtualMachine(corpus)
        machine.snapshot()
        return run_sample(machine, sample, config).files_lost

    def benign_scores(config):
        machine = VirtualMachine(corpus)
        machine.snapshot()
        scores = {}
        for app in analysed_five(42):
            result = run_benign(machine, app, config)
            scores[result.app_name] = result.final_score
        return scores

    return DynamicScoringResult(
        ctb_lost_static=ctb_lost(static_cfg),
        ctb_lost_dynamic=ctb_lost(dynamic_cfg),
        benign_scores_static=benign_scores(static_cfg),
        benign_scores_dynamic=benign_scores(dynamic_cfg))
