"""Figure 3 — cumulative fraction of samples detected vs files lost."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.config import CryptoDropConfig
from ..sandbox import CampaignResult
from .common import FULL, ExperimentScale, campaign_at_scale
from .reporting import ascii_cdf, ascii_table, header

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    campaign: CampaignResult
    points: List[Tuple[int, float]]          # (files lost, cum. fraction)

    @property
    def median(self) -> float:
        return self.campaign.median_files_lost

    @property
    def maximum(self) -> int:
        return self.campaign.max_files_lost

    def percentile(self, q: float) -> float:
        values = sorted(self.campaign.files_lost_values())
        if not values:
            return 0.0
        return float(statistics.quantiles(values, n=100)[int(q) - 1]) \
            if len(values) > 1 else float(values[0])

    def fraction_detected_within(self, files_lost: int) -> float:
        best = 0.0
        for lost, frac in self.points:
            if lost <= files_lost:
                best = frac
        return best

    def render(self) -> str:
        stats_rows = [
            ("median files lost", f"{self.median:g}", "10"),
            ("minimum", self.campaign.min_files_lost, "0"),
            ("maximum", self.maximum, "33"),
            ("detected within 10 files",
             f"{self.fraction_detected_within(10):.1%}", "~50%"),
            ("detected within 33 files",
             f"{self.fraction_detected_within(self.maximum):.1%}", "100%"),
        ]
        return (header("Figure 3: cumulative % of samples detected at each "
                       "files-lost count")
                + "\n" + ascii_cdf(self.points, x_label="files lost")
                + "\n\n" + ascii_table(("statistic", "measured", "paper"),
                                       stats_rows))


def run_fig3(scale: ExperimentScale = FULL,
             config: Optional[CryptoDropConfig] = None,
             campaign: Optional[CampaignResult] = None) -> Fig3Result:
    """Regenerate Fig. 3's files-lost CDF at the given scale."""
    if campaign is None:
        campaign = campaign_at_scale(scale, config)
    return Fig3Result(campaign=campaign,
                      points=campaign.cumulative_distribution())
