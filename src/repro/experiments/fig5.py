"""Figure 5 — file-extension attack frequency across the cohort.

For each sample the paper recorded the set of distinct extensions it
accessed before detection (one count per sample per extension), then
aggregated.  "Overall, the samples attacked common productivity formats
first" — .pdf, .odt, .docx, .pptx lead the plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import CryptoDropConfig
from ..ransomware.notes import NOTE_FILENAMES
from ..sandbox import CampaignResult
from .common import FULL, ExperimentScale, campaign_at_scale
from .paper_constants import PAPER_FIG5_TOP
from .reporting import ascii_bars, header

__all__ = ["Fig5Result", "run_fig5"]

#: extensions introduced by the attacks themselves (ransom notes, marker
#: suffixes); excluded so the plot shows *victim* formats, as the paper's
#: "first files attacked" data does
_ATTACK_ARTIFACTS = {".locked", ".encrypted", ".crypt", ".crypted", ".enc",
                     ".ecc", ".ezz", ".exx", ".vvv", ".ccc", ".ctbl",
                     ".frtrss", ".fue", ".poshcoder", "._crypt",
                     ".encіphered", ".enciphered", ".tmp", ".key",
                     ".cryptotorlocker2015!", ".exe", ".7z"}
_NOTE_EXTS = {name[name.rfind("."):].lower()
              for name in NOTE_FILENAMES.values()}


@dataclass
class Fig5Result:
    campaign: CampaignResult
    frequencies: Dict[str, int]        # extension -> #samples accessing it

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        return sorted(self.frequencies.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def render(self) -> str:
        items = [(ext, float(count)) for ext, count in self.top(18)]
        top4 = tuple(ext for ext, _ in self.top(4))
        return (header("Figure 5: aggregate file extensions accessed by "
                       "the cohort before detection")
                + "\n" + ascii_bars(items, unit=" samples")
                + f"\n\ntop formats: {', '.join(top4)}"
                + f"\npaper's top formats: {', '.join(PAPER_FIG5_TOP)}")


def run_fig5(scale: ExperimentScale = FULL,
             config: Optional[CryptoDropConfig] = None,
             campaign: Optional[CampaignResult] = None) -> Fig5Result:
    """Aggregate per-sample extension accesses (Fig. 5) from a campaign."""
    if campaign is None:
        campaign = campaign_at_scale(scale, config, record_ops=True)
    frequencies: Dict[str, int] = {}
    for result in campaign.working:
        for ext in result.extensions_accessed:
            ext = ext.lower()
            if ext in _ATTACK_ARTIFACTS:
                continue
            frequencies[ext] = frequencies.get(ext, 0) + 1
    return Fig5Result(campaign=campaign, frequencies=frequencies)
