"""Table I — sample breakdown by family/class and median files lost."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional

from ..core.config import CryptoDropConfig
from ..sandbox import CampaignResult
from .common import FULL, ExperimentScale, campaign_at_scale
from .paper_constants import PAPER_TABLE1
from .reporting import ascii_table, header

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    family: str
    class_a: int
    class_b: int
    class_c: int
    total: int
    median_files_lost: float
    paper_median: Optional[float]


@dataclass
class Table1Result:
    campaign: CampaignResult
    rows: List[Table1Row]

    @property
    def total_samples(self) -> int:
        return sum(row.total for row in self.rows)

    def row(self, family: str) -> Table1Row:
        for row in self.rows:
            if row.family == family:
                return row
        raise KeyError(family)

    def render(self) -> str:
        body = [(r.family, r.class_a or "", r.class_b or "", r.class_c or "",
                 r.total, f"{r.median_files_lost:g}",
                 "" if r.paper_median is None else f"{r.paper_median:g}")
                for r in self.rows]
        overall = self.campaign
        footer = ("#", sum(r.class_a for r in self.rows),
                  sum(r.class_b for r in self.rows),
                  sum(r.class_c for r in self.rows), self.total_samples,
                  f"{overall.median_files_lost:g}", "10")
        table = ascii_table(
            ("Family", "# Class A", "# Class B", "# Class C", "Total",
             "Median FL", "Paper FL"),
            body + [footer])
        return (header("Table I: detected samples by family/class, "
                       "median files lost")
                + "\n" + table
                + f"\n\nDetection rate: {overall.detection_rate:.1%}"
                  f"  (paper: 100%)"
                + f"\nOverall median files lost: "
                  f"{overall.median_files_lost:g} (paper: 10)"
                + f"\nRange: {overall.min_files_lost}-"
                  f"{overall.max_files_lost} (paper: 0-33)")


def run_table1(scale: ExperimentScale = FULL,
               config: Optional[CryptoDropConfig] = None,
               campaign: Optional[CampaignResult] = None) -> Table1Result:
    """Regenerate Table I at the given scale."""
    if campaign is None:
        campaign = campaign_at_scale(scale, config)
    rows: List[Table1Row] = []
    for family, results in sorted(campaign.by_family().items()):
        classes = {"A": 0, "B": 0, "C": 0}
        for result in results:
            classes[result.behavior_class] += 1
        paper = PAPER_TABLE1.get(family)
        rows.append(Table1Row(
            family=family,
            class_a=classes["A"], class_b=classes["B"],
            class_c=classes["C"], total=len(results),
            median_files_lost=statistics.median(
                r.files_lost for r in results),
            paper_median=paper[4] if paper else None))
    return Table1Result(campaign=campaign, rows=rows)
