"""Shared experiment scaffolding: scales, cached campaigns.

The paper's full experiment (492 samples × 5,099-file corpus) takes a few
minutes of CPU; unit tests and quick looks use a scaled-down
configuration with identical structure.  A completed campaign is cached
per (scale, config-fingerprint) so Table I, Fig. 3, Fig. 5, and the union
analysis all read from one sweep, exactly as they did in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import CryptoDropConfig
from ..corpus.builder import PAPER_DIRS, PAPER_FILES, GeneratedCorpus, generate
from ..ransomware import working_cohort
from ..sandbox import CampaignResult, run_campaign

__all__ = ["ExperimentScale", "FULL", "SMALL", "TINY", "campaign_at_scale",
           "corpus_at_scale", "samples_at_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run: corpus dimensions + per-family sample cap."""

    name: str
    n_files: int
    n_dirs: int
    per_family: Optional[int]   # None = every sample
    corpus_seed: int = 2016
    cohort_seed: int = 0

    def describe(self) -> str:
        cap = "all" if self.per_family is None else f"<= {self.per_family}"
        return (f"{self.name}: corpus {self.n_files} files / "
                f"{self.n_dirs} dirs, {cap} samples per family")


#: the paper's full configuration (§V-A)
FULL = ExperimentScale("full", PAPER_FILES, PAPER_DIRS, None)
#: a faithful scaled-down run for quick iteration
SMALL = ExperimentScale("small", 800, 80, 4)
#: the minimum that still exercises every family (unit tests)
TINY = ExperimentScale("tiny", 300, 30, 1)


def corpus_at_scale(scale: ExperimentScale) -> GeneratedCorpus:
    """Generate (cached) the corpus for an experiment scale."""
    return generate(scale.corpus_seed, scale.n_files, scale.n_dirs)


def samples_at_scale(scale: ExperimentScale) -> List:
    """The cohort (or a class-balanced per-family subset) for a scale."""
    cohort = working_cohort(scale.cohort_seed)
    if scale.per_family is None:
        return cohort
    grouped: Dict[str, List] = {}
    for sample in cohort:
        grouped.setdefault(sample.profile.family, []).append(sample)
    subset: List = []
    for family in sorted(grouped):
        rows = grouped[family]
        # interleave behaviour classes so scaled runs keep each family's
        # full class mix rather than only its first (usually A) samples
        by_class: Dict[str, List] = {}
        for sample in rows:
            by_class.setdefault(sample.profile.behavior_class,
                                []).append(sample)
        interleaved: List = []
        index = 0
        while len(interleaved) < len(rows):
            added = False
            for cls in sorted(by_class):
                bucket = by_class[cls]
                if index < len(bucket):
                    interleaved.append(bucket[index])
                    added = True
            if not added:
                break
            index += 1
        take = interleaved[:scale.per_family]
        # always include each family's off-class stragglers (they carry
        # the paper's corner cases: GPcode-C read-only, TeslaCrypt-C link)
        for straggler in rows[-2:]:
            if straggler not in take:
                take.append(straggler)
        subset.extend(take)
    return subset


_CAMPAIGNS: Dict[Tuple, CampaignResult] = {}


def campaign_at_scale(scale: ExperimentScale,
                      config: Optional[CryptoDropConfig] = None,
                      record_ops: bool = True,
                      use_cache: bool = True) -> CampaignResult:
    """Run (or fetch) the cohort sweep for a scale + configuration."""
    key = (scale, config, record_ops)
    if use_cache and key in _CAMPAIGNS:
        return _CAMPAIGNS[key]
    corpus = corpus_at_scale(scale)
    samples = samples_at_scale(scale)
    campaign = run_campaign(samples, corpus, config, record_ops=record_ops)
    if use_cache:
        _CAMPAIGNS[key] = campaign
    return campaign
