"""§V-B2 — union-indicator effectiveness accounting.

The paper's numbers: 457/492 (93%) of samples had at least one union
indication; of the 63 Class C samples, 41 moved ciphertext over the
original (restoring linkage and union) while 22 evaded union via
delete-disposal but were still caught by entropy + deletion with a
median loss of 6 files; 13 Class A samples were detected before their
similarity indicator ever fired.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional

from ..core.config import CryptoDropConfig
from ..sandbox import CampaignResult, SampleResult
from .common import FULL, ExperimentScale, campaign_at_scale
from .paper_constants import PAPER_UNION
from .reporting import ascii_table, header

__all__ = ["UnionEffectResult", "run_union_effect"]


@dataclass
class UnionEffectResult:
    campaign: CampaignResult

    @property
    def working(self) -> List[SampleResult]:
        return self.campaign.working

    @property
    def union_count(self) -> int:
        return sum(1 for r in self.working if r.union_fired)

    @property
    def union_rate(self) -> float:
        return self.union_count / len(self.working) if self.working else 0.0

    def class_c(self) -> List[SampleResult]:
        return [r for r in self.working if r.behavior_class == "C"]

    def class_c_linkable(self) -> List[SampleResult]:
        return [r for r in self.class_c() if r.disposal == "move_over"]

    def class_c_evaders(self) -> List[SampleResult]:
        return [r for r in self.class_c() if r.disposal == "delete"]

    def evader_median_files_lost(self) -> float:
        evaders = self.class_c_evaders()
        if not evaders:
            return 0.0
        return statistics.median(r.files_lost for r in evaders)

    def non_union_class_a(self) -> int:
        return sum(1 for r in self.working
                   if r.behavior_class == "A" and not r.union_fired)

    def render(self) -> str:
        paper = PAPER_UNION
        rows = [
            ("samples with >=1 union indication",
             f"{self.union_count}/{len(self.working)} "
             f"({self.union_rate:.0%})",
             f"{paper['samples_with_union']}/492 "
             f"({paper['union_rate']:.0%})"),
            ("Class C samples", len(self.class_c()),
             paper["class_c_total"]),
            ("Class C linkable (move-over)",
             len(self.class_c_linkable()), paper["class_c_linkable"]),
            ("Class C union-evaders (delete)",
             len(self.class_c_evaders()), paper["class_c_evaders"]),
            ("evader median files lost",
             f"{self.evader_median_files_lost():g}",
             paper["evader_median_files_lost"]),
            ("Class A detected without union", self.non_union_class_a(),
             paper["non_union_class_a"]),
        ]
        return (header("§V-B2: union indicator effectiveness")
                + "\n" + ascii_table(("metric", "measured", "paper"), rows))


def run_union_effect(scale: ExperimentScale = FULL,
                     config: Optional[CryptoDropConfig] = None,
                     campaign: Optional[CampaignResult] = None
                     ) -> UnionEffectResult:
    """Compute the §V-B2 union-indication accounting from a campaign."""
    if campaign is None:
        campaign = campaign_at_scale(scale, config)
    return UnionEffectResult(campaign=campaign)
