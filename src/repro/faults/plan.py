"""Deterministic fault schedules.

A :class:`FaultPlan` declares *what* can go wrong around the detector and
*how often*, keyed by a seed so that the same plan against the same
operation stream misbehaves at exactly the same operations every run.
This reproduces the environment the paper's filter driver lives in
(§IV–V): locked files that refuse opens (sharing violations), reads that
come back short, I/O that stalls, and ransomware that kills the watchdog
process outright.

Plans are immutable and carry no runtime state; the
:class:`~repro.faults.injector.FaultInjector` owns the RNG and counters.
An all-zero plan (:meth:`FaultPlan.armed` is False) injects nothing, and
an unarmed injector is a strict no-op filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..fs.events import OpKind

__all__ = ["FaultPlan", "transient_faults", "monitor_crash",
           "ingest_chaos"]

#: operation kinds a transient denial may target by default — the ones a
#: locked/oplocked file refuses on a real NTFS volume.
DEFAULT_DENY_KINDS: Tuple[OpKind, ...] = (
    OpKind.OPEN, OpKind.WRITE, OpKind.RENAME, OpKind.DELETE)


@dataclass(frozen=True)
class FaultPlan:
    """One immutable schedule of environmental misbehaviour.

    Rates are per *eligible* operation probabilities in ``[0, 1]``; the
    injector draws from a ``random.Random(seed)`` in a fixed order, so a
    given (plan, operation stream) pair always faults identically.
    """

    seed: int = 0

    # -- transient denials (sharing violations / locked files) -----------
    #: probability that an eligible op fails with ``OperationDenied``
    deny_rate: float = 0.0
    deny_kinds: Tuple[OpKind, ...] = DEFAULT_DENY_KINDS
    #: cap on total denials (None = unlimited)
    max_denials: Optional[int] = None

    # -- short reads ------------------------------------------------------
    #: probability that a READ returns only a prefix of the payload
    short_read_rate: float = 0.0
    #: fraction of the payload that survives a short read (0, 1]
    short_read_factor: float = 0.5

    # -- latency spikes ---------------------------------------------------
    #: probability that an op is charged ``latency_spike_us`` extra
    latency_spike_rate: float = 0.0
    latency_spike_us: float = 250_000.0

    # -- monitor kills ----------------------------------------------------
    #: op indices (1-based, counted over non-system ops) at which the
    #: watchdog is killed; the injector fires its kill callback there
    kill_monitor_at_ops: Tuple[int, ...] = field(default_factory=tuple)

    # -- ingest faults (repro.ingest event streams) -----------------------
    #: probability that a poison event (permanently unprocessable) is
    #: *inserted* before an endpoint event — the real event is untouched,
    #: so a shard that discards the poison converges to the unfaulted run
    poison_event_rate: float = 0.0
    #: probability that the shard wedges (stops draining its queue)
    #: before an endpoint event; backpressure holds the stream, so no
    #: events are lost — only delayed
    queue_stall_rate: float = 0.0
    #: how many scheduler ticks a queue stall wedges the shard for
    queue_stall_ticks: int = 8
    #: applied-event indices (1-based, per tenant) at which the shard's
    #: monitor is hard-killed (no final checkpoint) — the watchdog must
    #: restart it from the last periodic checkpoint and replay the tail
    kill_shard_at_events: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("deny_rate", "short_read_rate", "latency_spike_rate",
                     "poison_event_rate", "queue_stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if not 0.0 < self.short_read_factor <= 1.0:
            raise ValueError("short_read_factor must be in (0, 1]")
        if self.queue_stall_ticks <= 0:
            raise ValueError("queue_stall_ticks must be positive")
        if any(n <= 0 for n in self.kill_monitor_at_ops):
            raise ValueError("kill_monitor_at_ops indices are 1-based")
        if any(n <= 0 for n in self.kill_shard_at_events):
            raise ValueError("kill_shard_at_events indices are 1-based")

    @property
    def armed(self) -> bool:
        """True when the plan can inject at the *operation* level.

        Ingest-level faults deliberately do not arm the
        :class:`~repro.faults.injector.FaultInjector` — they are executed
        by the :class:`~repro.faults.injector.IngestFaultSource` and the
        shard, not by the filter stack.
        """
        return bool(self.deny_rate or self.short_read_rate
                    or self.latency_spike_rate or self.kill_monitor_at_ops)

    @property
    def armed_ingest(self) -> bool:
        """True when the plan carries event-stream (ingest) faults."""
        return bool(self.poison_event_rate or self.queue_stall_rate
                    or self.kill_shard_at_events)

    def with_overrides(self, **kwargs) -> "FaultPlan":
        return replace(self, **kwargs)


def transient_faults(seed: int = 0, deny_rate: float = 0.02,
                     short_read_rate: float = 0.02,
                     latency_spike_rate: float = 0.01,
                     **overrides) -> FaultPlan:
    """A ready-made 'flaky disk' plan: denials, short reads, stalls."""
    return FaultPlan(seed=seed, deny_rate=deny_rate,
                     short_read_rate=short_read_rate,
                     latency_spike_rate=latency_spike_rate,
                     **overrides)


def monitor_crash(*at_ops: int, seed: int = 0, **overrides) -> FaultPlan:
    """A plan that only kills the monitor at the given operation indices."""
    return FaultPlan(seed=seed,
                     kill_monitor_at_ops=tuple(sorted(at_ops)),
                     **overrides)


def ingest_chaos(seed: int = 0, poison_event_rate: float = 0.0,
                 queue_stall_rate: float = 0.0,
                 kill_shard_at_events: Tuple[int, ...] = (),
                 **overrides) -> FaultPlan:
    """A ready-made endpoint-stream plan: poisons, stalls, shard kills."""
    return FaultPlan(seed=seed, poison_event_rate=poison_event_rate,
                     queue_stall_rate=queue_stall_rate,
                     kill_shard_at_events=tuple(sorted(kill_shard_at_events)),
                     **overrides)
