"""Fault injection and crash resilience.

Deterministic environmental misbehaviour (transient denials, short reads,
latency spikes, watchdog kills) plus the supervisor that restarts a
killed monitor from checkpointed state, and the event-stream fault
schedule (poison events, queue stalls, shard kills) consumed by the
``repro.ingest`` layer.  See ``docs/robustness.md``.
"""

from .injector import FaultInjector, IngestFaultSource, PoisonedEvent
from .plan import FaultPlan, ingest_chaos, monitor_crash, transient_faults
from .supervisor import MonitorSupervisor

__all__ = ["FaultInjector", "FaultPlan", "IngestFaultSource",
           "MonitorSupervisor", "PoisonedEvent", "ingest_chaos",
           "monitor_crash", "transient_faults"]
