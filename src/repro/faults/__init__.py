"""Fault injection and crash resilience.

Deterministic environmental misbehaviour (transient denials, short reads,
latency spikes, watchdog kills) plus the supervisor that restarts a
killed monitor from checkpointed state.  See ``docs/robustness.md``.
"""

from .injector import FaultInjector
from .plan import FaultPlan, monitor_crash, transient_faults
from .supervisor import MonitorSupervisor

__all__ = ["FaultInjector", "FaultPlan", "MonitorSupervisor",
           "monitor_crash", "transient_faults"]
