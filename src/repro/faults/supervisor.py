"""Crash-resilient monitor service.

Ransomware that kills the watchdog is the paper's nastiest adversary
(§IV): a real deployment answers it by running CryptoDrop as an
auto-restarting service whose scoring state is journalled continuously,
so a fresh incarnation resumes with the dead one's reputation rather than
zeroed counters.  :class:`MonitorSupervisor` models exactly that:

* it owns the :class:`~repro.core.monitor.CryptoDropMonitor` lifecycle,
* every completed operation's effect on the engine is considered durable
  (write-ahead model), so :meth:`crash` captures the state the service
  would have persisted up to the kill,
* :meth:`restart` attaches a brand-new monitor restored from that state.

Wire :meth:`crash_and_restart` to a
:class:`~repro.faults.injector.FaultInjector`'s ``on_monitor_kill`` to
chaos-test the kill-the-watchdog scenario end to end.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..core.config import CryptoDropConfig
from ..core.detection import AlertPolicy, Detection
from ..core.monitor import CryptoDropMonitor
from ..fs.vfs import VirtualFileSystem

__all__ = ["MonitorSupervisor"]


class MonitorSupervisor:
    """Owns a monitor's kill/restart lifecycle with state carry-over."""

    def __init__(self, vfs: VirtualFileSystem,
                 config: Optional[CryptoDropConfig] = None,
                 policy: Optional[AlertPolicy] = None,
                 baseline_store=None, telemetry=None) -> None:
        self.vfs = vfs
        self.config = config or CryptoDropConfig()
        self.policy = policy
        #: shared corpus BaselineStore / TelemetrySession handed to every
        #: incarnation, so restarts keep the same store identity (restore
        #: rejects a mismatched store) and stream into the same bus
        self.baseline_store = baseline_store
        self.telemetry = telemetry
        self.monitor: Optional[CryptoDropMonitor] = None
        self.last_checkpoint: Optional[dict] = None
        self.crashes = 0
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> CryptoDropMonitor:
        """Attach the first monitor incarnation (fresh state)."""
        if self.monitor is not None:
            raise RuntimeError("supervisor already running")
        self.monitor = CryptoDropMonitor(
            self.vfs, self.config, self.policy,
            baseline_store=self.baseline_store,
            telemetry=self.telemetry).attach()
        return self.monitor

    def checkpoint(self) -> dict:
        """Persist the current engine state (and return it)."""
        if self.monitor is None:
            raise RuntimeError("no monitor running")
        self.last_checkpoint = self.monitor.checkpoint()
        # Round-trip through JSON: what a real service writes to disk is
        # bytes, and restore must work from exactly those bytes.
        self.last_checkpoint = json.loads(json.dumps(self.last_checkpoint))
        return self.last_checkpoint

    def crash(self, op_index: Optional[int] = None) -> None:
        """The watchdog dies.  Scoring stops; journalled state survives."""
        if self.monitor is None:
            return
        self.checkpoint()
        self.monitor.detach()
        self.monitor = None
        self.crashes += 1

    def hard_crash(self, op_index: Optional[int] = None) -> None:
        """The watchdog dies *without* a parting checkpoint.

        Models a SIGKILL mid-write: only the journalled state from the
        last explicit :meth:`checkpoint` survives, so a later
        :meth:`restart` resumes from that point and the caller must
        replay whatever happened since (the ingest shard's journal-tail
        replay).  Contrast :meth:`crash`, whose write-ahead model
        considers every completed operation durable.
        """
        if self.monitor is None:
            return
        self.monitor.detach()
        self.monitor = None
        self.crashes += 1

    def restart(self) -> CryptoDropMonitor:
        """Attach a new incarnation resumed from the last checkpoint."""
        if self.monitor is not None:
            raise RuntimeError("monitor still running; crash() first")
        if self.last_checkpoint is None:
            return self.start()
        self.monitor = CryptoDropMonitor.from_checkpoint(
            self.vfs, self.last_checkpoint, self.config, self.policy,
            baseline_store=self.baseline_store,
            telemetry=self.telemetry).attach()
        self.restarts += 1
        return self.monitor

    def crash_and_restart(self, op_index: Optional[int] = None) -> None:
        """Kill + immediate service restart (FaultInjector callback)."""
        self.crash(op_index)
        self.restart()

    def stop(self) -> None:
        """Graceful shutdown: flush pending inspections, then detach."""
        if self.monitor is not None:
            self.monitor.close()
            self.monitor = None

    # -- reporting ---------------------------------------------------------

    @property
    def detections(self) -> List[Detection]:
        """Detections across every incarnation (restored ones included)."""
        if self.monitor is not None:
            return self.monitor.detections
        return []

    def stats(self) -> dict:
        return {"crashes": self.crashes, "restarts": self.restarts,
                "running": self.monitor is not None}
