"""The fault-injecting filter driver.

:class:`FaultInjector` sits in the same minifilter stack as the analysis
engine and plays the *environment*: it denies operations the way a locked
file would (``OperationDenied``, modelling ``ERROR_SHARING_VIOLATION`` /
``ERROR_ACCESS_DENIED``), truncates read payloads, charges latency spikes
to the simulated clock, and fires scheduled "the watchdog just died"
events for a supervisor to handle.

Determinism contract: all fault decisions come from one
``random.Random(plan.seed)`` consumed in a fixed per-operation order, so
the same plan over the same operation stream injects the same faults —
which is what lets the chaos suite assert verdict stability across runs.

With no plan armed the injector returns ALLOW immediately and charges
nothing: attaching it is behaviourally invisible.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, Optional, Tuple

from ..fs.events import Decision, FsOperation, OpKind
from ..fs.filters import FilterDriver, PostVerdict
from ..fs.vfs import SYSTEM_PID
from ..telemetry.events import FaultInjected
from .plan import FaultPlan

__all__ = ["FaultInjector", "IngestFaultSource", "PoisonedEvent"]


class PoisonedEvent(Exception):
    """An injected endpoint event that can never be processed.

    Deliberately *permanent* (``transient`` False): the breaker/retry
    machinery must discard it immediately rather than retry it forever.
    Raised by a :class:`~repro.ingest.MonitorShard` when it dequeues an
    event the :class:`IngestFaultSource` inserted as poison.
    """

    transient = False

    def __init__(self, tenant: str, seq: int) -> None:
        super().__init__(f"poison event {seq} on stream {tenant!r}")
        self.tenant = tenant
        self.seq = seq


class FaultInjector(FilterDriver):
    """Seeded environmental-misbehaviour filter driver."""

    name = "fault-injector"

    def __init__(self, plan: Optional[FaultPlan] = None,
                 on_monitor_kill: Optional[Callable[[int], None]] = None,
                 telemetry=None) -> None:
        #: called with the 1-based op index whenever a scheduled monitor
        #: kill fires (typically MonitorSupervisor.crash_and_restart)
        self.on_monitor_kill = on_monitor_kill
        #: TelemetrySession (or anything with a ``bus``) to stream
        #: FaultInjected events into; None keeps injection silent
        self.telemetry = telemetry
        self.arm(plan)

    def _emit(self, fault: str, op: FsOperation) -> None:
        # only called with telemetry attached and a plan armed
        self.telemetry.faults.inc(fault=fault)
        self.telemetry.bus.emit(FaultInjected(
            op.timestamp_us, fault=fault, op_index=self.op_index,
            op_kind=op.kind.value, path=str(op.path)))

    def arm(self, plan: Optional[FaultPlan]) -> None:
        """Install ``plan`` (or disarm with None) and reset all state."""
        self.plan = plan if plan is not None and plan.armed else None
        self._rng = random.Random(plan.seed) if self.plan else None
        self._kills = deque(sorted(self.plan.kill_monitor_at_ops)) \
            if self.plan else deque()
        self._pending_latency_us = 0.0
        self._suspended = False
        self.op_index = 0
        self.denials = 0
        self.short_reads = 0
        self.latency_spikes = 0
        self.kills_fired = 0

    def suspend(self) -> None:
        """Pause injection without resetting RNG or counters.

        Used by shard restarts while the journal tail is replayed: the
        replayed operations already ran once against the live fault
        stream, so re-faulting them would double-inject.  Unlike
        :meth:`arm`, the RNG position and all counters are preserved, so
        :meth:`resume` continues the original fault schedule exactly.
        """
        self._suspended = True

    def resume(self) -> None:
        self._suspended = False

    @property
    def armed(self) -> bool:
        return self.plan is not None and not self._suspended

    def stats(self) -> dict:
        return {"ops_seen": self.op_index, "denials": self.denials,
                "short_reads": self.short_reads,
                "latency_spikes": self.latency_spikes,
                "monitor_kills": self.kills_fired}

    # ------------------------------------------------------------------
    # filter driver interface
    # ------------------------------------------------------------------

    def pre_operation(self, op: FsOperation) -> Decision:
        plan = self.plan
        if plan is None or self._suspended or op.pid == SYSTEM_PID:
            return Decision.ALLOW
        self.op_index += 1
        rng = self._rng
        # Draw order is fixed (latency, short read, denial) so the fault
        # stream is a pure function of (seed, operation stream).
        if plan.latency_spike_rate and rng.random() < plan.latency_spike_rate:
            self._pending_latency_us += plan.latency_spike_us
            self.latency_spikes += 1
            if self.telemetry is not None:
                self._emit("latency_spike", op)
        if (plan.short_read_rate and op.kind is OpKind.READ
                and rng.random() < plan.short_read_rate):
            op.context["fault_read_factor"] = plan.short_read_factor
            self.short_reads += 1
            if self.telemetry is not None:
                self._emit("short_read", op)
        if (plan.deny_rate and op.kind in plan.deny_kinds
                and (plan.max_denials is None
                     or self.denials < plan.max_denials)
                and rng.random() < plan.deny_rate):
            self.denials += 1
            if self.telemetry is not None:
                self._emit("deny", op)
            return Decision.DENY
        return Decision.ALLOW

    def post_operation(self, op: FsOperation) -> PostVerdict:
        if self.plan is None or self._suspended or op.pid == SYSTEM_PID:
            return PostVerdict.ALLOW
        while self._kills and self.op_index >= self._kills[0]:
            self._kills.popleft()
            self.kills_fired += 1
            if self.telemetry is not None:
                self._emit("monitor_kill", op)
            if self.on_monitor_kill is not None:
                self.on_monitor_kill(self.op_index)
        return PostVerdict.ALLOW

    def added_latency_us(self, op: FsOperation) -> float:
        cost, self._pending_latency_us = self._pending_latency_us, 0.0
        return cost


class IngestFaultSource:
    """Deterministic event-stream fault schedule for one tenant.

    Where :class:`FaultInjector` misbehaves at the *operation* level
    (inside the filter stack), this precomputes misbehaviour at the
    *event* level for an endpoint stream of ``n_events`` events:

    * ``poison_before[i]`` — how many poison events to insert before
      original event ``i`` (each raises :class:`PoisonedEvent` on apply;
      the real events are untouched, so discarding poisons converges to
      the unfaulted run);
    * ``stall_before[i]`` — scheduler ticks the shard wedges for before
      applying original event ``i`` (queue-stall: backpressure holds the
      stream, nothing is lost);
    * ``kills`` — 1-based applied-event indices at which the shard's
      monitor is hard-killed.

    Determinism contract mirrors the injector's: one
    ``random.Random(f"{plan.seed}:{tenant}")`` consumed in a fixed
    per-event draw order (poison, then stall), so a given
    (plan, tenant, stream length) triple faults identically every run,
    and distinct tenants under the same plan get independent —
    but individually reproducible — schedules.
    """

    def __init__(self, plan: FaultPlan, tenant: str, n_events: int) -> None:
        self.plan = plan
        self.tenant = tenant
        self.poison_before: Dict[int, int] = {}
        self.stall_before: Dict[int, int] = {}
        self.kills: Tuple[int, ...] = tuple(sorted(plan.kill_shard_at_events))
        if not (plan.poison_event_rate or plan.queue_stall_rate):
            return
        rng = random.Random(f"{plan.seed}:{tenant}")
        for index in range(n_events):
            if (plan.poison_event_rate
                    and rng.random() < plan.poison_event_rate):
                self.poison_before[index] = \
                    self.poison_before.get(index, 0) + 1
            if (plan.queue_stall_rate
                    and rng.random() < plan.queue_stall_rate):
                self.stall_before[index] = plan.queue_stall_ticks

    @property
    def armed(self) -> bool:
        return bool(self.poison_before or self.stall_before or self.kills)

    def stats(self) -> dict:
        return {"poisons": sum(self.poison_before.values()),
                "stalls": len(self.stall_before),
                "kills_scheduled": len(self.kills)}
