"""The fault-injecting filter driver.

:class:`FaultInjector` sits in the same minifilter stack as the analysis
engine and plays the *environment*: it denies operations the way a locked
file would (``OperationDenied``, modelling ``ERROR_SHARING_VIOLATION`` /
``ERROR_ACCESS_DENIED``), truncates read payloads, charges latency spikes
to the simulated clock, and fires scheduled "the watchdog just died"
events for a supervisor to handle.

Determinism contract: all fault decisions come from one
``random.Random(plan.seed)`` consumed in a fixed per-operation order, so
the same plan over the same operation stream injects the same faults —
which is what lets the chaos suite assert verdict stability across runs.

With no plan armed the injector returns ALLOW immediately and charges
nothing: attaching it is behaviourally invisible.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Optional

from ..fs.events import Decision, FsOperation, OpKind
from ..fs.filters import FilterDriver, PostVerdict
from ..fs.vfs import SYSTEM_PID
from ..telemetry.events import FaultInjected
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector(FilterDriver):
    """Seeded environmental-misbehaviour filter driver."""

    name = "fault-injector"

    def __init__(self, plan: Optional[FaultPlan] = None,
                 on_monitor_kill: Optional[Callable[[int], None]] = None,
                 telemetry=None) -> None:
        #: called with the 1-based op index whenever a scheduled monitor
        #: kill fires (typically MonitorSupervisor.crash_and_restart)
        self.on_monitor_kill = on_monitor_kill
        #: TelemetrySession (or anything with a ``bus``) to stream
        #: FaultInjected events into; None keeps injection silent
        self.telemetry = telemetry
        self.arm(plan)

    def _emit(self, fault: str, op: FsOperation) -> None:
        # only called with telemetry attached and a plan armed
        self.telemetry.faults.inc(fault=fault)
        self.telemetry.bus.emit(FaultInjected(
            op.timestamp_us, fault=fault, op_index=self.op_index,
            op_kind=op.kind.value, path=str(op.path)))

    def arm(self, plan: Optional[FaultPlan]) -> None:
        """Install ``plan`` (or disarm with None) and reset all state."""
        self.plan = plan if plan is not None and plan.armed else None
        self._rng = random.Random(plan.seed) if self.plan else None
        self._kills = deque(sorted(self.plan.kill_monitor_at_ops)) \
            if self.plan else deque()
        self._pending_latency_us = 0.0
        self.op_index = 0
        self.denials = 0
        self.short_reads = 0
        self.latency_spikes = 0
        self.kills_fired = 0

    @property
    def armed(self) -> bool:
        return self.plan is not None

    def stats(self) -> dict:
        return {"ops_seen": self.op_index, "denials": self.denials,
                "short_reads": self.short_reads,
                "latency_spikes": self.latency_spikes,
                "monitor_kills": self.kills_fired}

    # ------------------------------------------------------------------
    # filter driver interface
    # ------------------------------------------------------------------

    def pre_operation(self, op: FsOperation) -> Decision:
        plan = self.plan
        if plan is None or op.pid == SYSTEM_PID:
            return Decision.ALLOW
        self.op_index += 1
        rng = self._rng
        # Draw order is fixed (latency, short read, denial) so the fault
        # stream is a pure function of (seed, operation stream).
        if plan.latency_spike_rate and rng.random() < plan.latency_spike_rate:
            self._pending_latency_us += plan.latency_spike_us
            self.latency_spikes += 1
            if self.telemetry is not None:
                self._emit("latency_spike", op)
        if (plan.short_read_rate and op.kind is OpKind.READ
                and rng.random() < plan.short_read_rate):
            op.context["fault_read_factor"] = plan.short_read_factor
            self.short_reads += 1
            if self.telemetry is not None:
                self._emit("short_read", op)
        if (plan.deny_rate and op.kind in plan.deny_kinds
                and (plan.max_denials is None
                     or self.denials < plan.max_denials)
                and rng.random() < plan.deny_rate):
            self.denials += 1
            if self.telemetry is not None:
                self._emit("deny", op)
            return Decision.DENY
        return Decision.ALLOW

    def post_operation(self, op: FsOperation) -> PostVerdict:
        if self.plan is None or op.pid == SYSTEM_PID:
            return PostVerdict.ALLOW
        while self._kills and self.op_index >= self._kills[0]:
            self._kills.popleft()
            self.kills_fired += 1
            if self.telemetry is not None:
                self._emit("monitor_kill", op)
            if self.on_monitor_kill is not None:
                self.on_monitor_kill(self.op_index)
        return PostVerdict.ALLOW

    def added_latency_us(self, op: FsOperation) -> float:
        cost, self._pending_latency_us = self._pending_latency_us, 0.0
        return cost
