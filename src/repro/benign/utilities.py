"""Utility application simulators.

7-zip is the paper's one true positive among benign software (§V-F):
archiving the documents directory reads every file type and emits one
giant high-entropy stream — "bulk transformation", exactly what
CryptoDrop exists to flag.  The paper calls that detection "normal,
expected, desirable".
"""

from __future__ import annotations

import random

from ..fs.errors import FsError
from ..fs.paths import APPDATA, TEMP
from .base import BenignApplication

__all__ = ["SevenZip", "AvastAntiVirus", "PiriformCCleaner", "Launchy",
           "Flux", "PhraseExpress", "ResophNotes", "StickyNotes",
           "SumatraPdf"]


class SevenZip(BenignApplication):
    """``7z a Documents.7z <documents>``: the expected benign detection.

    Reads every file (funneling), writes one solid high-entropy archive
    stream beside the tree (entropy delta) — CryptoDrop suspends it
    mid-archive and asks the user."""

    name = "7z.exe"
    paper_detected = True

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        archive = ctx.docs_root / "Documents.7z"
        handle = ctx.open(archive, "w", create=True)
        try:
            ctx.write(handle, b"7z\xbc\xaf\x27\x1c\x00\x04"
                              + rng.randbytes(24))
            pending = 0
            for dirpath, _dirs, files in ctx.walk(ctx.docs_root):
                for name in files:
                    if name == archive.name:
                        continue
                    try:
                        data = ctx.read_file(dirpath / name, 65536)
                    except FsError:
                        continue
                    pending += len(data)
                    # solid compression: emit in 64 KiB blocks
                    while pending >= 65536:
                        ctx.write(handle, rng.randbytes(65536))
                        pending -= 65536 + 24576  # modelled ratio ~0.73
            if pending > 0:
                ctx.write(handle, rng.randbytes(max(1024, pending)))
        finally:
            if not handle.closed:
                ctx.close(handle)


class AvastAntiVirus(BenignApplication):
    """On-demand scan: reads a slice of every file, writes nothing."""

    name = "AvastSvc.exe"

    def run(self, ctx) -> None:
        scanned = 0
        for dirpath, _dirs, files in ctx.walk(ctx.docs_root):
            for name in files:
                try:
                    ctx.read_file(dirpath / name, 32768)
                except FsError:
                    continue
                scanned += 1
                if scanned >= 400:
                    return


class PiriformCCleaner(BenignApplication):
    """Cleans temp locations; touches a couple of stray .tmp files."""

    name = "CCleaner64.exe"

    def prepare(self, machine) -> None:
        rng = random.Random(self.seed ^ 0xCC)
        for i in range(6):
            machine.vfs.peek_write(TEMP / f"junk{i}.tmp",
                                   rng.randbytes(2000), parents=True)
        for i in range(2):
            machine.vfs.peek_write(
                machine.docs_root / f"~temp{i}.tmp", rng.randbytes(800),
                parents=True)

    def run(self, ctx) -> None:
        for name in list(ctx.listdir(ctx.temp_root)):
            if name.endswith(".tmp"):
                try:
                    ctx.delete(ctx.temp_root / name)
                except FsError:
                    pass
        for name in list(ctx.listdir(ctx.docs_root)):
            if name.endswith(".tmp"):
                try:
                    ctx.delete(ctx.docs_root / name)
                except FsError:
                    pass


class Launchy(BenignApplication):
    """Keystroke launcher: indexes names only (directory listings)."""

    name = "Launchy.exe"

    def run(self, ctx) -> None:
        count = 0
        for _dirpath, _dirs, files in ctx.walk(ctx.docs_root):
            count += len(files)
        ctx.write_file(APPDATA / "Launchy" / "index.dat",
                       f"indexed={count}\n".encode() * 20)

    def prepare(self, machine) -> None:
        machine.vfs._ensure_dirs(APPDATA / "Launchy")


class Flux(BenignApplication):
    """Changes screen temperature; its disk footprint is one config."""

    name = "flux.exe"

    def run(self, ctx) -> None:
        ctx.mkdir(APPDATA / "flux", parents=True)
        ctx.write_file(APPDATA / "flux" / "settings.ini",
                       b"[prefs]\nlat=29.6\nlon=-82.3\ntemp=3400\n")


class PhraseExpress(BenignApplication):
    """Text expander: appends snippets to its phrase file."""

    name = "phraseexpress.exe"

    def prepare(self, machine) -> None:
        machine.vfs.peek_write(
            machine.docs_root / "PhraseExpress" / "phrases.pxp",
            b"<phrases>\n" + b"<p>sig1</p>\n" * 40, parents=True)

    def run(self, ctx) -> None:
        path = ctx.docs_root / "PhraseExpress" / "phrases.pxp"
        handle = ctx.open(path, "rw")
        try:
            existing = ctx.read(handle)
            ctx.seek(handle, len(existing))
            ctx.write(handle, b"<p>new snippet text</p>\n" * 3)
        finally:
            ctx.close(handle)


class ResophNotes(BenignApplication):
    """Plain-text note taking inside the documents tree."""

    name = "ResophNotes.exe"

    def prepare(self, machine) -> None:
        for i in range(5):
            machine.vfs.peek_write(
                machine.docs_root / "Notes" / f"note{i}.txt",
                f"note {i}\nremember the milk\n".encode() * 10,
                parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        notes = ctx.docs_root / "Notes"
        for name in list(ctx.listdir(notes))[:3]:
            path = notes / name
            text = ctx.read_file(path)
            ctx.write_file(path, text + b"\nedited: follow up tomorrow\n")
        ctx.write_file(notes / f"note{rng.randint(10, 99)}.txt",
                       b"quick capture: call the office\n" * 4)


class StickyNotes(BenignApplication):
    """Windows Sticky Notes: one OLE2-ish store in AppData."""

    name = "StikyNot.exe"

    def run(self, ctx) -> None:
        ctx.mkdir(APPDATA / "Microsoft" / "Sticky Notes", parents=True)
        store = (b"\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1" + bytes(504)
                 + "buy stamps\x00".encode("utf-16-le") * 30)
        ctx.write_file(APPDATA / "Microsoft" / "Sticky Notes"
                       / "StickyNotes.snt", store)


class SumatraPdf(BenignApplication):
    """Lightweight PDF reading: pure consumption."""

    name = "SumatraPDF.exe"

    def run(self, ctx) -> None:
        opened = 0
        for dirpath, _dirs, files in ctx.walk(ctx.docs_root):
            for name in files:
                if name.lower().endswith(".pdf"):
                    ctx.read_file(dirpath / name, 16384)
                    opened += 1
                    if opened >= 10:
                        return
