"""The thirty benign Windows applications of §V-F.

One simulator per application the paper evaluated; :data:`ALL_APPS`
builds the complete suite and :data:`ANALYSED_FIVE` the five the paper
discusses in depth (Fig. 6).
"""

from typing import List

from .base import BenignApplication, temp_save_dance
from .media import (ChocolateDoom, ITunes, MusicBee, Spotify,
                    VlcMediaPlayer)
from .network import (Chrome, Dropbox, Pidgin, PrivateInternetAccess,
                      Skype, UTorrent)
from .office import (LibreOfficeCalc, LibreOfficeWriter, MicrosoftExcel,
                     MicrosoftWord, OfficeViewers)
from .photos import (AdobeLightroom, Gimp, ImageMagickMogrify, PaintDotNet,
                     Picasa)
from .utilities import (AvastAntiVirus, Flux, Launchy, PhraseExpress,
                        PiriformCCleaner, ResophNotes, SevenZip,
                        StickyNotes, SumatraPdf)

__all__ = [
    "ALL_APP_CLASSES", "ANALYSED_FIVE", "AdobeLightroom",
    "AvastAntiVirus", "BenignApplication", "ChocolateDoom", "Chrome",
    "Dropbox", "Flux", "Gimp", "ITunes", "ImageMagickMogrify", "Launchy",
    "LibreOfficeCalc", "LibreOfficeWriter", "MicrosoftExcel",
    "MicrosoftWord", "MusicBee", "OfficeViewers", "PaintDotNet",
    "PhraseExpress", "Picasa", "Pidgin", "PiriformCCleaner",
    "PrivateInternetAccess", "ResophNotes", "SevenZip", "Skype",
    "Spotify", "StickyNotes", "SumatraPdf", "UTorrent",
    "VlcMediaPlayer", "all_apps", "analysed_five", "temp_save_dance",
]

#: every application from the paper's thirty-app list
ALL_APP_CLASSES: List[type] = [
    SevenZip, AdobeLightroom, AvastAntiVirus, ChocolateDoom, Chrome,
    Dropbox, Flux, Gimp, ImageMagickMogrify, ITunes, Launchy,
    LibreOfficeCalc, LibreOfficeWriter, MicrosoftExcel, OfficeViewers,
    MicrosoftWord, MusicBee, PaintDotNet, PhraseExpress, Picasa, Pidgin,
    PiriformCCleaner, PrivateInternetAccess, ResophNotes, Skype, Spotify,
    StickyNotes, SumatraPdf, UTorrent, VlcMediaPlayer,
]

#: the five applications §V-F analyses in depth (Fig. 6)
ANALYSED_FIVE: List[type] = [
    AdobeLightroom, ImageMagickMogrify, ITunes, MicrosoftWord,
    MicrosoftExcel,
]


def all_apps(seed: int = 0) -> List[BenignApplication]:
    """Instantiate the full thirty-application suite."""
    return [cls(seed) for cls in ALL_APP_CLASSES]


def analysed_five(seed: int = 0) -> List[BenignApplication]:
    """Instantiate the five applications Fig. 6 analyses in depth."""
    return [cls(seed) for cls in ANALYSED_FIVE]
