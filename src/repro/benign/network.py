"""Network-facing application simulators.

These applications move data in and out of the machine; the detector's
view of them is dominated by born-new files (no baseline, so no type or
similarity measurements) and by sync rewrites that preserve most content.
"""

from __future__ import annotations

import random

from ..corpus.content import make_docx, make_pdf
from ..fs.errors import FsError
from ..fs.paths import APPDATA, WinPath
from .base import BenignApplication, temp_save_dance

__all__ = ["Chrome", "Dropbox", "Skype", "Pidgin", "PrivateInternetAccess",
           "UTorrent"]

#: the Windows per-user download folder is *outside* My Documents
DOWNLOADS = WinPath(r"C:\Users\victim\Downloads")


class Chrome(BenignApplication):
    """Browsing session: cache churn in AppData, two downloads into the
    documents tree (brand-new files: nothing for the indicators)."""

    name = "chrome.exe"

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        cache = APPDATA / "Google" / "Chrome" / "Cache"
        ctx.mkdir(cache, parents=True)
        for i in range(20):
            ctx.write_file(cache / f"f_{i:06x}", rng.randbytes(18000), 8192)
        downloads = ctx.docs_root / "Downloads"
        ctx.mkdir(downloads)
        for stem, maker in (("statement", make_pdf), ("itinerary", make_pdf)):
            partial = downloads / f"{stem}.pdf.crdownload"
            ctx.write_file(partial, maker(rng, 60000), 16384)
            ctx.rename(partial, downloads / f"{stem}.pdf")


class Dropbox(BenignApplication):
    """Two-way sync of a folder inside Documents: reads everything for
    hashing, rewrites a few remotely-changed files (mostly-same bytes),
    downloads a couple of new ones."""

    name = "Dropbox.exe"

    def prepare(self, machine) -> None:
        rng = random.Random(self.seed ^ 0xD50)
        for i in range(14):
            machine.vfs.peek_write(
                machine.docs_root / "Dropbox" / f"shared{i:02d}.docx",
                make_docx(rng, 9000), parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        sync_dir = ctx.docs_root / "Dropbox"
        names = sorted(ctx.listdir(sync_dir))
        # index pass: hash every file
        contents = {}
        for name in names:
            contents[name] = ctx.read_file(sync_dir / name, 32768)
        # three files changed remotely: same container, extended body
        for name in names[:3]:
            updated = contents[name] + b"PK_sync_delta" + rng.randbytes(64)
            temp_save_dance(ctx, sync_dir / name, updated, rng, chunk=16384)
        # two brand-new files arrive
        for i in range(2):
            ctx.write_file(sync_dir / f"from_team_{i}.docx",
                           make_docx(rng, 8000), 16384)


class Skype(BenignApplication):
    """Chat: message database lives in AppData."""

    name = "Skype.exe"

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        profile = APPDATA / "Skype" / "victim"
        ctx.mkdir(profile, parents=True)
        for _ in range(5):
            ctx.write_file(profile / "main.db",
                           b"SQLite format 3\x00" + rng.randbytes(40000),
                           16384)


class Pidgin(BenignApplication):
    """IM logs: small text appends under AppData."""

    name = "pidgin.exe"

    def run(self, ctx) -> None:
        logs = APPDATA / ".purple" / "logs"
        ctx.mkdir(logs, parents=True)
        path = logs / "2015-06-01.txt"
        ctx.write_file(path, b"(09:01) alice: morning\n")
        handle = ctx.open(path, "a")
        try:
            for minute in range(2, 30):
                ctx.write(handle,
                          f"(09:{minute:02d}) bob: status update\n".encode())
        finally:
            ctx.close(handle)


class PrivateInternetAccess(BenignApplication):
    """VPN client: a config write and nothing else on disk."""

    name = "pia_manager.exe"

    def run(self, ctx) -> None:
        ctx.mkdir(APPDATA / "PIA", parents=True)
        ctx.write_file(APPDATA / "PIA" / "settings.json",
                       b'{"region": "us-east", "killswitch": true}\n')


class UTorrent(BenignApplication):
    """Downloads land in the Downloads folder (outside My Documents);
    only the .torrent file itself is read from the documents tree."""

    name = "uTorrent.exe"

    def prepare(self, machine) -> None:
        machine.vfs.peek_write(
            machine.docs_root / "linux-distro.torrent",
            b"d8:announce35:udp://tracker.example.invalid:696913:piece"
            b" lengthi262144e4:infod4:name11:distro.iso6:lengthi700e" * 8,
            parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        ctx.read_file(ctx.docs_root / "linux-distro.torrent")
        ctx.mkdir(DOWNLOADS, parents=True)
        partial = DOWNLOADS / "distro.iso.!ut"
        handle = ctx.open(partial, "w", create=True)
        try:
            for _ in range(24):
                ctx.write(handle, rng.randbytes(65536))
        finally:
            ctx.close(handle)
        try:
            ctx.rename(partial, DOWNLOADS / "distro.iso")
        except FsError:
            pass
