"""Office application simulators (paper §V-F workloads).

The Word and Excel workloads follow the paper's test scripts verbatim;
the LibreOffice pair and the Office Viewers get equivalent lighter
treatments.  All editors use the temp-file save dance
(:func:`~repro.benign.base.temp_save_dance`), which is what real Office
does and what exposes each save to CryptoDrop's move-over inspection.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..corpus.content import (make_csv, make_docx, make_jpeg, make_odt,
                              make_xlsx, ooxml_members, rebuild_ooxml)
from ..corpus.wordlists import paragraph
from ..fs.paths import DOCUMENTS
from .base import BenignApplication, temp_save_dance

__all__ = ["MicrosoftWord", "MicrosoftExcel", "LibreOfficeWriter",
           "LibreOfficeCalc", "OfficeViewers"]


def _replace_member(data: bytes, member_suffix: str,
                    transform) -> bytes:
    """Rebuild an OOXML container with one member transformed."""
    members = ooxml_members(data)
    out: List[Tuple[str, bytes, bool]] = []
    for name, payload, stored in members:
        if name.endswith(member_suffix):
            payload = transform(payload)
        out.append((name, payload, stored))
    return rebuild_ooxml(out)


def _append_member(data: bytes, name: str, payload: bytes,
                   stored: bool = True) -> bytes:
    members = ooxml_members(data)
    members.append((name, payload, stored))
    return rebuild_ooxml(members)


class MicrosoftWord(BenignApplication):
    """§V-F script: blank doc → 5 paragraphs → save → table → save →
    photo import → save → SmartArt → save.  Paper score: 0."""

    name = "WINWORD.EXE"
    paper_score = 0.0

    def prepare(self, machine) -> None:
        rng = random.Random(self.seed ^ 0x0FF1CE)
        photo = make_jpeg(rng, 24000)
        machine.vfs.peek_write(DOCUMENTS / "Photos" / "party.jpg", photo,
                               parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        path = ctx.docs_root / "New Document.docx"
        # lock file appears while the document is open
        lock = ctx.docs_root / "~$New Document.docx"
        ctx.write_file(lock, b"\x00victim\x00" * 8)
        doc = make_docx(random.Random(self.seed ^ 1), 6000)
        body = "".join(f"<w:p><w:r><w:t>{paragraph(rng)}</w:t></w:r></w:p>"
                       for _ in range(5)).encode()
        doc = _replace_member(doc, "document.xml", lambda d: d + body)
        temp_save_dance(ctx, path, doc, rng)

        table = ("<w:tbl>" + "".join(
            f"<w:tr><w:tc><w:p>{paragraph(rng)}</w:p></w:tc></w:tr>"
            for _ in range(4)) + "</w:tbl>").encode()
        doc = _replace_member(doc, "document.xml", lambda d: d + table)
        temp_save_dance(ctx, path, doc, rng)

        photo = ctx.read_file(ctx.docs_root / "Photos" / "party.jpg")
        doc = _append_member(doc, "word/media/image1.jpg", photo)
        temp_save_dance(ctx, path, doc, rng)

        smartart = (b"<w:drawing><dgm:relIds/><dgm:pts>"
                    + paragraph(rng).encode() + b"</dgm:pts></w:drawing>")
        doc = _replace_member(doc, "document.xml", lambda d: d + smartart)
        temp_save_dance(ctx, path, doc, rng)
        ctx.delete(lock)


class MicrosoftExcel(BenignApplication):
    """§V-F script plus the ambient machinery real Excel brings: a CSV
    data import (low-entropy reads), autosave snapshots, lock files, and
    chart cache temp files.  Paper score: 150 — the highest benign
    scorer, driven by entropy hits (high-entropy .xlsx writes against
    low-entropy CSV/lock-file reads)."""

    name = "EXCEL.EXE"
    paper_score = 150.0

    def prepare(self, machine) -> None:
        rng = random.Random(self.seed ^ 0xCA1C)
        machine.vfs.peek_write(DOCUMENTS / "Budget" / "raw_data.csv",
                               make_csv(rng, 24000), parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        path = ctx.docs_root / "Budget" / "analysis.xlsx"
        lock = ctx.docs_root / "Budget" / "~$analysis.xlsx"
        ctx.write_file(lock, b"\x00victim\x00" * 8)
        # import the raw data (big low-entropy read)
        ctx.read_file(ctx.docs_root / "Budget" / "raw_data.csv", 4096)
        book = make_xlsx(random.Random(self.seed ^ 2), 9000)
        temp_save_dance(ctx, path, book, rng, chunk=4096)
        # work session: edits, autosaves, a chart, a second session
        for session in range(2):
            for autosave in range(5):
                extra = "".join(
                    f'<row r="{600 + autosave * 10 + i}"><c><v>'
                    f"{rng.random() * 1e4:.2f}</v></c></row>"
                    for i in range(10)).encode()
                book = _replace_member(book, "worksheet1.xml",
                                       lambda d, e=extra: d + e)
                autopath = (ctx.docs_root / "Budget"
                            / f"analysis((Autosaved-{session}{autosave})).xlsx")
                ctx.write_file(autopath, book, 4096)
                ctx.delete(autopath)
            chart = b'<c:chart><c:plotArea>' + rng.randbytes(2048) + b"</c:plotArea></c:chart>"
            book = _append_member(book, f"xl/charts/chart{session + 1}.xml",
                                  chart, stored=True)
            temp_save_dance(ctx, path, book, rng, chunk=4096)
            if session == 0:
                # close and re-open: Excel re-reads the whole workbook
                ctx.read_file(path, 4096)
        ctx.delete(lock)


class LibreOfficeWriter(BenignApplication):
    """Edit and save an .odt a few times; saves rewrite content.xml only."""

    name = "soffice.bin"

    def prepare(self, machine) -> None:
        machine.vfs.peek_write(
            DOCUMENTS / "Letters" / "draft.odt",
            make_odt(random.Random(self.seed ^ 3), 9000), parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        path = ctx.docs_root / "Letters" / "draft.odt"
        doc = ctx.read_file(path)
        for _ in range(3):
            addition = f"<text:p>{paragraph(rng)}</text:p>".encode()
            doc = _replace_member(doc, "content.xml",
                                  lambda d, a=addition: d + a)
            temp_save_dance(ctx, path, doc, rng)


class LibreOfficeCalc(BenignApplication):
    """Spreadsheet editing on .ods, mirroring the Writer workload."""

    name = "soffice.bin"

    def prepare(self, machine) -> None:
        from ..corpus.content import make_odt
        base = make_odt(random.Random(self.seed ^ 4), 7000)
        machine.vfs.peek_write(DOCUMENTS / "Budget" / "sheet.ods",
                               base, parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        path = ctx.docs_root / "Budget" / "sheet.ods"
        doc = ctx.read_file(path)
        for _ in range(4):
            rows = "".join(
                f"<table:row><table:cell>{rng.randint(0, 9999)}"
                "</table:cell></table:row>" for _ in range(40)).encode()
            doc = _replace_member(doc, "content.xml",
                                  lambda d, r=rows: d + r)
            temp_save_dance(ctx, path, doc, rng)


class OfficeViewers(BenignApplication):
    """Microsoft Office Viewers: read-only consumption of documents."""

    name = "DOCVIEW.EXE"

    def run(self, ctx) -> None:
        opened = 0
        for dirpath, _dirs, files in ctx.walk(ctx.docs_root):
            for name in files:
                if name.lower().endswith((".doc", ".docx", ".xls", ".ppt")):
                    ctx.read_file(dirpath / name, 8192)
                    opened += 1
                    if opened >= 25:
                        return
