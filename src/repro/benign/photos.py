"""Photo application simulators.

ImageMagick and Adobe Lightroom are two of the paper's five analysed
applications (§V-F): mogrify batch-rotated 1,073 JPEGs in place and
scored **0** (type preserved, EXIF keeps similarity alive, read and write
entropy identical); Lightroom imported the same photo set, toned every
picture, and exported five — ending near the paper's **107**, mostly
similarity collapses on its constantly-rewritten catalog journal plus a
sprinkle of entropy hits from preview writes.
"""

from __future__ import annotations

import random

from ..corpus.content import (jpeg_reencode, make_jpeg, make_png,
                              make_sqlite)
from ..fs.paths import DOCUMENTS
from .base import BenignApplication, temp_save_dance

__all__ = ["ImageMagickMogrify", "AdobeLightroom", "Picasa", "Gimp",
           "PaintDotNet", "PHOTO_SET_SIZE"]

#: scaled stand-in for the paper's 1,073-photo import set
PHOTO_SET_SIZE = 220


def _plant_photo_set(machine, seed: int, count: int = PHOTO_SET_SIZE) -> None:
    rng = random.Random(seed ^ 0x9407)
    for i in range(count):
        photo = make_jpeg(rng, 14000 + (i % 7) * 3000)
        machine.vfs.peek_write(
            DOCUMENTS / "Photos" / "Camera" / f"IMG_{1000 + i}.jpg",
            photo, parents=True)


class ImageMagickMogrify(BenignApplication):
    """``mogrify -rotate 90 *.jpg``: in-place batch re-encode.

    Every write rides the same handle choreography as Class A ransomware
    — open, read, overwrite, close — yet scores nothing: type unchanged,
    EXIF-anchored similarity stays positive, and read/write entropy match.
    Paper score: 0."""

    name = "mogrify.exe"
    paper_score = 0.0

    def prepare(self, machine) -> None:
        _plant_photo_set(machine, self.seed)

    def run(self, ctx) -> None:
        photos_dir = ctx.docs_root / "Photos" / "Camera"
        for name in ctx.listdir(photos_dir):
            if not name.lower().endswith(".jpg"):
                continue
            path = photos_dir / name
            handle = ctx.open(path, "rw")
            try:
                data = ctx.read(handle)
                rotated = jpeg_reencode(data, variant=90)
                ctx.seek(handle, 0)
                ctx.write(handle, rotated)
                if len(rotated) < len(data):
                    ctx.vfs.truncate_handle(ctx.pid, handle, len(rotated))
            finally:
                ctx.close(handle)


class AdobeLightroom(BenignApplication):
    """§V-F script: import the photo set, auto-tone every picture,
    convert five to black-and-white and export them.  Catalog and
    previews live in Documents\\Lightroom (the real default).
    Paper score: 107."""

    name = "lightroom.exe"
    paper_score = 107.0

    def prepare(self, machine) -> None:
        _plant_photo_set(machine, self.seed)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        lr_dir = ctx.docs_root / "Lightroom"
        previews = lr_dir / "Previews.lrdata"
        ctx.mkdir(lr_dir, parents=True)
        ctx.mkdir(previews)
        catalog = lr_dir / "catalog.lrcat"
        photos_dir = ctx.docs_root / "Photos" / "Camera"
        names = [n for n in ctx.listdir(photos_dir)
                 if n.lower().endswith(".jpg")]
        journal = lr_dir / "catalog.lrcat-journal"
        # import: read every photo, build standard previews for a subset
        # (previews are pure entropy-coded pyramid data, no metadata).
        # The SQLite journal is rewritten page-by-page throughout — each
        # rewrite replaces its content wholesale, which is where most of
        # Lightroom's reputation points come from (similarity collapses
        # on a file CryptoDrop tracks but cannot match across versions).
        for index, name in enumerate(names):
            data = ctx.read_file(photos_dir / name)
            if index % 9 == 0:
                ctx.write_file(previews / f"{name}.lrprev",
                               rng.randbytes(6144))
            if index % 16 == 0:
                ctx.write_file(journal,
                               rng.randbytes(2048) + bytes(2048))
            if index % 100 == 0:
                ctx.write_file(catalog, make_sqlite(rng, 40000), 32768)
        # auto tone: metadata-only (catalog + journal) updates, batched
        for _ in range(2):
            ctx.write_file(journal, rng.randbytes(2048) + bytes(2048))
            ctx.write_file(catalog, make_sqlite(rng, 50000), 32768)
        ctx.delete(journal)
        # convert 5 photos to B&W and export to the documents folder
        export_dir = ctx.docs_root / "Exported"
        ctx.mkdir(export_dir)
        for name in names[:5]:
            data = ctx.read_file(photos_dir / name)
            ctx.write_file(export_dir / f"bw_{name}",
                           jpeg_reencode(data, variant=255))


class Picasa(BenignApplication):
    """Indexes the photo tree and maintains thumbnail caches."""

    name = "Picasa3.exe"

    def prepare(self, machine) -> None:
        _plant_photo_set(machine, self.seed, count=60)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        photos_dir = ctx.docs_root / "Photos" / "Camera"
        db_dir = ctx.docs_root / "Picasa"
        ctx.mkdir(db_dir, parents=True)
        for name in ctx.listdir(photos_dir):
            ctx.read_file(photos_dir / name, 16384)
        ctx.write_file(db_dir / "thumbs.db", make_sqlite(rng, 80000), 32768)


class Gimp(BenignApplication):
    """Open a few photos, export edited PNG copies."""

    name = "gimp-2.8.exe"

    def prepare(self, machine) -> None:
        _plant_photo_set(machine, self.seed, count=8)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        photos_dir = ctx.docs_root / "Photos" / "Camera"
        out_dir = ctx.docs_root / "Photos" / "Edited"
        ctx.mkdir(out_dir, parents=True)
        for name in list(ctx.listdir(photos_dir))[:3]:
            ctx.read_file(photos_dir / name)
            ctx.write_file(out_dir / (name[:-4] + ".png"),
                           make_png(rng, 30000), 16384)


class PaintDotNet(BenignApplication):
    """Edit PNGs and save over the originals (full IDAT rewrite)."""

    name = "PaintDotNet.exe"

    def prepare(self, machine) -> None:
        rng = random.Random(self.seed ^ 0xA1)
        for i in range(4):
            machine.vfs.peek_write(
                DOCUMENTS / "Photos" / "Sketches" / f"sketch{i}.png",
                make_png(rng, 20000), parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        sketch_dir = ctx.docs_root / "Photos" / "Sketches"
        for name in list(ctx.listdir(sketch_dir))[:2]:
            path = sketch_dir / name
            ctx.read_file(path)
            temp_save_dance(ctx, path, make_png(rng, 21000), rng,
                            chunk=16384)
