"""Media application simulators.

iTunes is one of the paper's five analysed apps (§V-F): library deleted,
70 audio files imported, three played, everything converted to AAC —
final score **16**.  The small score is real signal: AAC writes are
high-entropy while the library's reads are *mostly* compressed audio too,
so the entropy delta hovers at the 0.1 threshold and only a handful of
conversion writes land points.
"""

from __future__ import annotations

import random

from ..corpus.content import (make_flac, make_m4a, make_mp3, make_sqlite,
                              make_wav, wav_seed)
from ..fs.paths import APPDATA, DOCUMENTS
from .base import BenignApplication

__all__ = ["ITunes", "VlcMediaPlayer", "MusicBee", "Spotify",
           "ChocolateDoom"]


def _plant_music_library(machine, seed: int, n_mp3: int = 45,
                         n_wav: int = 15, n_flac: int = 10) -> None:
    rng = random.Random(seed ^ 0x317)
    base = DOCUMENTS / "Music" / "Library"
    for i in range(n_mp3):
        machine.vfs.peek_write(base / f"track{i:03d}.mp3",
                               make_mp3(rng, 60000), parents=True)
    for i in range(n_wav):
        machine.vfs.peek_write(base / f"session{i:02d}.wav",
                               make_wav(rng, 90000), parents=True)
    for i in range(n_flac):
        machine.vfs.peek_write(base / f"master{i:02d}.flac",
                               make_flac(rng, 110000), parents=True)


class ITunes(BenignApplication):
    """§V-F script on a mixed library; converts the non-AAC tracks."""

    name = "iTunes.exe"
    paper_score = 16.0

    def prepare(self, machine) -> None:
        _plant_music_library(machine, self.seed)
        machine.vfs.peek_write(
            DOCUMENTS / "Music" / "iTunes" / "iTunes Library.itl",
            make_sqlite(random.Random(self.seed ^ 5), 60000), parents=True)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        library_dir = ctx.docs_root / "Music" / "Library"
        itunes_dir = ctx.docs_root / "Music" / "iTunes"
        media_dir = itunes_dir / "iTunes Media"
        # the paper's test deletes the library so iTunes rebuilds it
        ctx.delete(itunes_dir / "iTunes Library.itl")
        ctx.mkdir(media_dir, parents=True)
        names = sorted(ctx.listdir(library_dir))
        # import scan: read every track
        for name in names:
            ctx.read_file(library_dir / name, 65536)
        ctx.write_file(itunes_dir / "iTunes Library.itl",
                       make_sqlite(rng, 70000), 32768)
        # play three songs (pure reads)
        for name in names[:3]:
            ctx.read_file(library_dir / name, 65536)
        # convert the lossless tracks to AAC
        for name in names:
            if not name.endswith((".wav", ".flac")):
                continue
            data = ctx.read_file(library_dir / name, 65536)
            seed = wav_seed(data)
            if seed is None:
                seed = rng.getrandbits(48)
            aac = make_m4a(seed, max(24000, len(data) // 3))
            ctx.write_file(media_dir / (name.rsplit(".", 1)[0] + ".m4a"),
                           aac, 65536)
        ctx.write_file(itunes_dir / "iTunes Library.itl",
                       make_sqlite(rng, 80000), 32768)


class VlcMediaPlayer(BenignApplication):
    """Plays media and saves a playlist; essentially read-only."""

    name = "vlc.exe"

    def prepare(self, machine) -> None:
        _plant_music_library(machine, self.seed, n_mp3=12, n_wav=2,
                             n_flac=1)

    def run(self, ctx) -> None:
        library_dir = ctx.docs_root / "Music" / "Library"
        names = sorted(ctx.listdir(library_dir))[:8]
        playlist = ['<?xml version="1.0"?><playlist>']
        for name in names:
            ctx.read_file(library_dir / name, 65536)
            playlist.append(f"  <track><location>{name}</location></track>")
        playlist.append("</playlist>")
        ctx.write_file(ctx.docs_root / "Music" / "recent.xspf",
                       "\n".join(playlist).encode())


class MusicBee(BenignApplication):
    """Retags MP3s in place: small structured writes at the file head."""

    name = "MusicBee.exe"

    def prepare(self, machine) -> None:
        _plant_music_library(machine, self.seed, n_mp3=20, n_wav=0,
                             n_flac=0)

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        library_dir = ctx.docs_root / "Music" / "Library"
        for name in sorted(ctx.listdir(library_dir))[:12]:
            path = library_dir / name
            handle = ctx.open(path, "rw")
            try:
                head = ctx.read(handle, 4096)
                if head[:3] != b"ID3":
                    continue
                new_title = f"TIT2\x00\x00\x00\x18\x00\x00\x01Track {rng.randint(1, 99)}".encode()
                ctx.seek(handle, 10)
                ctx.write(handle, new_title.ljust(40, b"\x00"))
            finally:
                ctx.close(handle)


class Spotify(BenignApplication):
    """Streams; its cache churn happens outside the documents tree."""

    name = "Spotify.exe"

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        cache = APPDATA / "Spotify" / "Storage"
        ctx.mkdir(cache, parents=True)
        for i in range(12):
            ctx.write_file(cache / f"chunk{i:04x}.file",
                           rng.randbytes(30000), 16384)


class ChocolateDoom(BenignApplication):
    """Game savefiles and config; nothing touches user documents."""

    name = "chocolate-doom.exe"

    def run(self, ctx) -> None:
        rng = random.Random(self.seed)
        save_dir = APPDATA / "chocolate-doom" / "savegames"
        ctx.mkdir(save_dir, parents=True)
        for slot in range(3):
            save = (b"DOOM SAVE\x00" + bytes([slot]) * 16
                    + rng.randbytes(4000))
            ctx.write_file(save_dir / f"doomsav{slot}.dsg", save)
        ctx.write_file(save_dir.parent / "default.cfg",
                       b"mouse_sensitivity 5\nsfx_volume 8\n" * 20)
