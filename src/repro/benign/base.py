"""Benign application framework.

The paper evaluated thirty common Windows applications on the malware-test
VM and found exactly one false positive (7-zip archiving the documents
folder) with the non-union threshold at 200 (§V-F).  Each simulator here
is a sandbox *program* with two phases:

* ``prepare(machine)`` — plant the assets the workload needs (photo
  imports, audio libraries, existing documents) via out-of-band writes;
  these are journalled, so the per-app revert cleans them up;
* ``run(ctx)`` — perform the workload through ordinary process I/O, which
  is what CryptoDrop scores.

Simulators aim for *filesystem fidelity* — the open/read/write/rename/
delete choreography each real application performs — because that
choreography is all the detector can see.
"""

from __future__ import annotations

import random
from typing import Optional

from ..fs.paths import WinPath

__all__ = ["BenignApplication", "temp_save_dance"]


class BenignApplication:
    """Base class for application workload simulators."""

    #: process image name, e.g. ``WINWORD.EXE``
    name = "benign.exe"
    #: paper-reported final reputation score, where §V-F gives one
    paper_score: Optional[float] = None
    #: did the paper observe a detection for this app?
    paper_detected: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def prepare(self, machine) -> None:
        """Plant workload assets (default: nothing)."""

    def run(self, ctx) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


def temp_save_dance(ctx, path: WinPath, payload: bytes,
                    rng: random.Random, chunk: int = 4096) -> None:
    """The Office-style atomic save: write a temp sibling, delete the
    original, move the temp into place.

    This is the exact choreography that makes benign saves *visible* to
    CryptoDrop (a move-over links new content to the old baseline) — and
    the reason Word/Excel still score zero similarity points is that their
    saves keep most of the container's bytes (§V-F).
    """
    tmp = path.parent / f"~WRL{rng.randrange(16**4):04x}.tmp"
    ctx.write_file(tmp, payload, chunk)
    ctx.rename(tmp, path, overwrite=True)

