"""Vocabulary for synthetic document content.

The generators need text with realistic English letter statistics (Shannon
entropy ≈ 4.2–4.8 bits/byte, matching the Govdocs1 text population) and
plausible file/directory names.  Everything is generated from seeded RNGs.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["WORDS", "FOLDER_NAMES", "FILE_STEMS", "sentence", "paragraph",
           "paragraphs", "title_words", "file_stem"]

WORDS = (
    "the of and a to in is was he for it with as his on be at by i this had "
    "not are but from or have an they which one you were her all she there "
    "would their we him been has when who will more no if out so said what "
    "up its about into than them can only other new some could time these "
    "two may then do first any my now such like our over man me even most "
    "made after also did many before must through back years where much your "
    "way well down should because each just those people mr how too little "
    "state good very make world still own see men work long get here between "
    "both life being under never day same another know while last might us "
    "great old year off come since against go came right used take three "
    "department report budget analysis summary review project committee "
    "federal agency program policy management office research development "
    "quarterly annual fiscal revenue expense forecast proposal contract "
    "meeting minutes agenda schedule deadline milestone deliverable invoice "
    "customer vendor account balance statement audit compliance regulation "
    "engineering design specification requirement implementation testing "
    "deployment maintenance documentation procedure guideline standard "
    "performance evaluation assessment metric baseline threshold capacity "
    "network server database application software hardware system security "
    "family vacation birthday wedding holiday recipe garden music photo"
).split()

FOLDER_NAMES = (
    "Projects Reports Taxes Receipts Photos Music Work Personal Archive "
    "Budget Invoices Contracts Travel Family School Research Presentations "
    "Spreadsheets Letters Notes Backup Old Drafts Final Shared Clients "
    "Vendors Legal Medical Insurance Recipes Scans Forms Templates Meeting "
    "Planning Marketing Sales Engineering Admin Finance HR Quarterly Annual "
    "2012 2013 2014 2015 January February March April May June July August "
    "September October November December Misc Important Pending Completed"
).split()

FILE_STEMS = (
    "report summary budget notes draft final analysis minutes agenda memo "
    "invoice receipt statement proposal contract letter form schedule plan "
    "review outline checklist inventory roster survey results data figures "
    "chart presentation slides handout worksheet ledger expenses forecast "
    "timeline status update brief overview appendix attachment exhibit "
    "scan photo image song track recording interview transcript journal "
    "readme changelog howto faq guide manual spec design architecture"
).split()


def sentence(rng: random.Random, n_words: int = 0) -> str:
    """One capitalised sentence of 5-18 corpus words."""
    n = n_words or rng.randint(5, 18)
    words = [rng.choice(WORDS) for _ in range(n)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def paragraph(rng: random.Random, n_sentences: int = 0) -> str:
    """A paragraph of several sentences."""
    n = n_sentences or rng.randint(3, 8)
    return " ".join(sentence(rng) for _ in range(n))


def paragraphs(rng: random.Random, approx_bytes: int) -> str:
    """Paragraphs totalling roughly ``approx_bytes`` characters."""
    pieces: List[str] = []
    total = 0
    while total < approx_bytes:
        para = paragraph(rng)
        pieces.append(para)
        total += len(para) + 2
    return "\n\n".join(pieces)


def title_words(rng: random.Random, n: int = 3) -> str:
    """A Title-Cased phrase of ``n`` words."""
    return " ".join(rng.choice(WORDS).capitalize() for _ in range(n))


def file_stem(rng: random.Random) -> str:
    """A plausible user file stem (report_2014, minutes (3), ...)."""
    stem = rng.choice(FILE_STEMS)
    style = rng.randrange(5)
    if style == 0:
        return f"{stem}_{rng.randint(1, 2015)}"
    if style == 1:
        return f"{stem} {rng.randint(1, 31)}-{rng.randint(1, 12)}"
    if style == 2:
        return f"{rng.choice(FILE_STEMS)}_{stem}"
    if style == 3:
        return f"{stem} ({rng.randint(1, 9)})"
    return stem
