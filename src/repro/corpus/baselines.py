"""Precomputed corpus baseline index — digest the corpus once, share it.

The paper's evaluation (§V-A) runs thousands of sample cycles against the
*same* planted corpus; every cycle starts a fresh engine whose first touch
of each document re-derives the identical baseline (magic type, sdhash
digest, entropy) from identical bytes.  :class:`BaselineStore` amortises
that: after ``generate()``, the whole corpus is digested exactly once into
an immutable content-keyed index that every engine — and, via fork
inheritance, every campaign worker process — resolves first-touch
baselines from instead of re-digesting.

Keys are the same 16-byte BLAKE2b content hashes the engine's
:class:`~repro.core.filestate.DigestCache` uses, so the store composes
with the single-digest close path: content the store has never seen (new
files, already-mutated versions) simply misses and falls back to live
digesting.

Entries are immutable and shared — :class:`BaselineEntry` deliberately
exposes the same attribute surface as
:class:`~repro.core.filestate.InspectionResult` (``file_type``,
``digest``, ``ctph``, ``size``, ``digested``) so a store hit can be
consumed anywhere an inspection result is expected, with zero copying.

Checkpoints never embed store entries: :meth:`BaselineStore.describe`
yields a small descriptor (corpus seed, parameters, content fingerprint)
that a restored engine validates against its own attached store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, Optional

from ..entropy import (corrected_entropies_from_histograms, corrected_entropy,
                       histograms_many)
from ..magic import FileType, identify
from ..simhash import sdhash as _sdhash
from ..simhash.sdhash import SdDigest, digest_many
from ..simhash.ssdeep import CtphSignature, ctph
from ..store.backend import DictBackend

__all__ = ["BaselineEntry", "BaselineStore", "content_key",
           "fingerprint_state"]

_STATE_MASK = (1 << 128) - 1


def content_key(content: bytes) -> bytes:
    """16-byte BLAKE2b content hash — identical to ``DigestCache.key``."""
    return blake2b(content, digest_size=16).digest()


def fingerprint_state(keys) -> int:
    """Order-independent 128-bit fold of a key set (sum mod 2^128).

    Incremental and associative: builders accumulate it per key, shard
    merges just add shard states, and the on-disk header persists it so
    a reopened million-entry store validates checkpoints in O(1) — no
    sorted-key rehash (the old cold path was O(n log n))."""
    state = 0
    for key in keys:
        state = (state + int.from_bytes(key, "little")) & _STATE_MASK
    return state


@dataclass(frozen=True)
class BaselineEntry:
    """One corpus file's precomputed first-touch baseline.

    Duck-types :class:`~repro.core.filestate.InspectionResult` (plus the
    corrected Shannon entropy of the pristine bytes), so engines can use
    a store hit directly as the inspection of that content.
    """

    file_type: FileType
    digest: Optional[SdDigest]
    ctph: Optional[CtphSignature]
    size: int
    entropy: float
    digested: bool

    #: a store entry is always fully materialised, never lazily pending
    deferred: bool = False


class BaselineStore:
    """Immutable content-key → :class:`BaselineEntry` index of a corpus.

    Built once per (corpus, similarity parameters) via :meth:`build`;
    lookups are single dict probes.  The store records the parameters it
    was digested under (``backend``, ``max_inspect_bytes``,
    ``digests_enabled``) so consumers can refuse a store that would
    yield different digests than live inspection — bit-identical scoring
    between store-backed and store-less runs is the contract.
    """

    __slots__ = ("seed", "backend", "max_inspect_bytes", "digests_enabled",
                 "total_bytes", "build_seconds", "path", "_impl",
                 "_state", "_fingerprint")

    def __init__(self, seed: int, backend: str, max_inspect_bytes: int,
                 digests_enabled: bool,
                 entries, total_bytes: int = 0,
                 build_seconds: float = 0.0,
                 state: Optional[int] = None) -> None:
        self.seed = seed
        self.backend = backend
        self.max_inspect_bytes = max_inspect_bytes
        self.digests_enabled = digests_enabled
        self.total_bytes = total_bytes
        self.build_seconds = build_seconds
        self.path: Optional[str] = None
        # a plain dict is wrapped in the in-memory backend; anything else
        # must already be a StoreBackend (e.g. an opened MmapBackend)
        self._impl = DictBackend(entries) if isinstance(entries, dict) \
            else entries
        self._state = state
        self._fingerprint: Optional[str] = None

    @property
    def _entries(self) -> Dict[bytes, BaselineEntry]:
        """Entry mapping (the live dict for dict storage; materialised on
        demand for mmap storage — tooling/tests, not the lookup path)."""
        return self._impl.as_dict()

    @property
    def storage(self) -> str:
        """Where entries live: ``"dict"`` (resident) or ``"mmap"``."""
        return self._impl.storage

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, corpus, backend: str = "sdhash",
              max_inspect_bytes: int = 4 * 1024 * 1024,
              digests_enabled: bool = True,
              batched: bool = True) -> "BaselineStore":
        """Digest every distinct content blob of ``corpus`` once.

        With ``batched`` (sdhash backend only) the whole corpus goes
        through the batched :func:`~repro.simhash.sdhash.digest_many`
        kernel and shared byte-histogram scatters — every entry
        bit-identical to the serial per-file loop, which remains the
        reference path (``batched=False``).
        """
        if backend not in ("sdhash", "ctph"):
            raise ValueError(f"unknown similarity backend {backend!r}")
        started = time.perf_counter()
        keys = []
        blobs = []
        seen = set()
        state = 0
        for content in corpus.contents.values():
            key = content_key(content)
            if key in seen:
                continue
            seen.add(key)
            keys.append(key)
            blobs.append(content)
            state = (state + int.from_bytes(key, "little")) & _STATE_MASK
        if batched and backend == "sdhash":
            entries, total = cls._build_entries_batched(
                keys, blobs, max_inspect_bytes, digests_enabled)
        else:
            entries, total = cls._build_entries_serial(
                keys, blobs, backend, max_inspect_bytes, digests_enabled)
        return cls(corpus.seed, backend, max_inspect_bytes, digests_enabled,
                   entries, total_bytes=total,
                   build_seconds=time.perf_counter() - started,
                   state=state)

    @staticmethod
    def _build_entries_serial(keys, blobs, backend: str,
                              max_inspect_bytes: int, digests_enabled: bool
                              ) -> tuple:
        """Per-file reference build loop (also the ctph path)."""
        entries: Dict[bytes, BaselineEntry] = {}
        total = 0
        for key, content in zip(keys, blobs):
            file_type = identify(content)
            digest: Optional[SdDigest] = None
            sig: Optional[CtphSignature] = None
            digested = False
            if digests_enabled and len(content) <= max_inspect_bytes:
                digested = True
                total += len(content)
                if backend == "sdhash":
                    digest = _sdhash(content)
                else:
                    sig = ctph(content)
            entries[key] = BaselineEntry(
                file_type, digest, sig, len(content),
                corrected_entropy(content), digested)
        return entries, total

    @staticmethod
    def _build_entries_batched(keys, blobs, max_inspect_bytes: int,
                               digests_enabled: bool) -> tuple:
        """Batched sdhash build: one digest_many pass over the digestable
        blobs, shared histogram scatters for the entropies."""
        entries: Dict[bytes, BaselineEntry] = {}
        total = 0
        flags = [digests_enabled and len(c) <= max_inspect_bytes
                 for c in blobs]
        digests = iter(digest_many(
            [c for c, flag in zip(blobs, flags) if flag]))
        entropies = corrected_entropies_from_histograms(
            histograms_many(blobs), [len(c) for c in blobs])
        for i, (key, content) in enumerate(zip(keys, blobs)):
            digested = flags[i]
            digest = next(digests) if digested else None
            if digested:
                total += len(content)
            entries[key] = BaselineEntry(
                identify(content), digest, None, len(content),
                float(entropies[i]), digested)
        return entries, total

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> str:
        """Write this store to ``path`` in the on-disk format.

        One sequential pass — records stream out in entry order, the
        sorted key index and type table follow, and the header (with the
        incremental fingerprint state) seals the file.  The result
        reopens via :meth:`open` with an identical fingerprint.
        """
        from ..store.writer import StoreWriter
        writer = StoreWriter(path, seed=self.seed, backend=self.backend,
                             max_inspect_bytes=self.max_inspect_bytes,
                             digests_enabled=self.digests_enabled)
        try:
            for key in self._impl.keys():
                writer.add(key, self._impl.get(key))
        except BaseException:
            writer.abort()
            raise
        return writer.finish(total_bytes=self.total_bytes,
                             build_seconds=self.build_seconds)

    @classmethod
    def open(cls, path, hot_entries: int = 4096) -> "BaselineStore":
        """Open an on-disk store lazily — O(1) in entry count.

        Nothing is deserialised up front; lookups page individual
        records in through a ``hot_entries``-bounded LRU.  Raises
        :class:`~repro.store.format.StoreFormatError` (with an
        actionable message) on truncated or corrupt files.
        """
        from ..store.mmapstore import MmapBackend
        impl = MmapBackend(path, hot_entries=hot_entries)
        header = impl.header
        store = cls(header.seed, header.backend, header.max_inspect_bytes,
                    header.digests_enabled, impl,
                    total_bytes=header.total_bytes,
                    build_seconds=header.build_seconds,
                    state=header.fingerprint_state)
        store.path = impl.path
        return store

    def close(self) -> None:
        """Release backend resources (the mmap and file handle)."""
        self._impl.close()

    # -- lookup --------------------------------------------------------------

    def get(self, key: bytes) -> Optional[BaselineEntry]:
        return self._impl.get(key)

    def lookup_content(self, content: bytes) -> Optional[BaselineEntry]:
        return self._impl.get(content_key(content))

    def entropy_of(self, content: bytes) -> Optional[float]:
        entry = self.lookup_content(content)
        return None if entry is None else entry.entropy

    def __len__(self) -> int:
        return len(self._impl)

    def __contains__(self, key: bytes) -> bool:
        return key in self._impl

    # -- identity ------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Stable hash of the key set + parameters (checkpoint identity).

        Derived from the order-independent :func:`fingerprint_state`, so
        it is O(1) when the state arrived with the store (every build
        path and the on-disk header supply it) — restore validation of a
        million-entry store never rehashes the key set.
        """
        if self._fingerprint is None:
            if self._state is None:
                self._state = fingerprint_state(self._impl.keys())
            h = blake2b(digest_size=8)
            h.update(f"{self.seed}|{self.backend}|{self.max_inspect_bytes}|"
                     f"{self.digests_enabled}|{len(self._impl)}".encode())
            h.update(self._state.to_bytes(16, "little"))
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def describe(self) -> dict:
        """Checkpoint-safe descriptor: identity, never entries."""
        return {
            "seed": self.seed,
            "backend": self.backend,
            "max_inspect_bytes": self.max_inspect_bytes,
            "digests_enabled": self.digests_enabled,
            "entries": len(self._impl),
            "storage": self.storage,
            "fingerprint": self.fingerprint,
        }

    def compatible_with(self, backend: str, max_inspect_bytes: int,
                        digests_enabled: bool,
                        seed: Optional[int] = None) -> bool:
        """Would this store return the same results as live inspection?

        ``seed`` (when the caller knows the corpus seed) fails fast on a
        parameter-identical store built from a *different* corpus —
        without it that mismatch only surfaced later, at checkpoint
        fingerprint validation.
        """
        return (self.backend == backend
                and self.max_inspect_bytes == max_inspect_bytes
                and self.digests_enabled == digests_enabled
                and (seed is None or self.seed == seed))

    def stats(self) -> dict:
        stats = {
            "entries": len(self._impl),
            "total_bytes": self.total_bytes,
            "build_seconds": round(self.build_seconds, 6),
            "backend": self.backend,
        }
        stats.update(self._impl.page_stats())
        return stats

    def page_stats(self) -> dict:
        """Backend residency/paging counters (all-resident for dict)."""
        return self._impl.page_stats()

    # -- telemetry -----------------------------------------------------------

    def bind_telemetry(self, telemetry) -> None:
        """Route backend page-in observations onto a telemetry session."""
        self._impl.bind_telemetry(telemetry)

    def emit_built(self, telemetry, timestamp_us: float = 0.0) -> None:
        """Announce this store on a telemetry session's bus.

        Builds happen once per campaign, usually before any monitor (and
        so any bus clock) exists, hence the explicit timestamp.  Imported
        lazily: the store itself has no telemetry dependency.
        """
        if telemetry is None:
            return
        from ..telemetry.events import StoreBuilt
        telemetry.bus.emit(StoreBuilt(
            timestamp_us, entries=len(self._impl),
            total_bytes=self.total_bytes,
            build_seconds=round(self.build_seconds, 6),
            backend=self.backend))

    def announce(self, telemetry, open_seconds: float = 0.0,
                 timestamp_us: float = 0.0) -> None:
        """Storage-aware announcement: ``StoreBuilt`` for resident dict
        stores, ``StoreOpened`` for stores paged in from disk."""
        if telemetry is None:
            return
        if self.storage == "dict":
            self.emit_built(telemetry, timestamp_us)
            return
        from ..telemetry.events import StoreOpened
        telemetry.bus.emit(StoreOpened(
            timestamp_us, entries=len(self._impl),
            total_bytes=self.total_bytes, path=self.path or "",
            open_seconds=round(open_seconds, 6),
            hot_entries=self.page_stats().get("hot_capacity", 0)))
