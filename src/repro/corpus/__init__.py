"""Synthetic user-document corpus (the paper's Govdocs1/OPF/Coldwell mix).

>>> from repro.corpus import generate
>>> corpus = generate(seed=1, n_files=100, n_dirs=12)
>>> len(corpus.files)
100
"""

from . import content
from .baselines import BaselineEntry, BaselineStore, content_key
from .builder import (PAPER_DIRS, PAPER_FILES, CorpusFile, GeneratedCorpus,
                      build_corpus, generate, plant)
from .profiles import PROFILE_NAMES, profile_spec
from .spec import CorpusSpec, TypeSpec, default_spec
from .tree import build_tree
from .wordlists import (FILE_STEMS, FOLDER_NAMES, WORDS, file_stem,
                        paragraph, paragraphs, sentence, title_words)

__all__ = [
    "BaselineEntry", "BaselineStore", "CorpusFile", "CorpusSpec",
    "FILE_STEMS", "FOLDER_NAMES",
    "GeneratedCorpus", "PAPER_DIRS", "PAPER_FILES", "PROFILE_NAMES",
    "TypeSpec", "WORDS", "content_key", "profile_spec",
    "build_corpus", "build_tree", "content", "default_spec", "file_stem",
    "generate", "paragraph", "paragraphs", "plant", "sentence",
    "title_words",
]
