"""Synthetic file content generators.

One ``make_<type>`` function per corpus format.  Each produces bytes that

* carry the correct magic numbers (so :mod:`repro.magic` identifies them
  exactly as ``file`` would),
* have realistic entropy profiles (compressed containers ≈ 7.9 bits/byte,
  legacy Office ≈ 4–6, plain text ≈ 4.2–4.8),
* contain enough *stable structure* (EXIF blocks, shared zip members,
  OLE2 headers) that similarity digests behave the way they do on real
  files — e.g. a re-encoded JPEG that keeps its EXIF still scores > 0
  against the original, which is why ImageMagick produced zero false
  positives in the paper (§V-F).

Media generators embed an 8-byte seed marker so the benign application
simulators can perform *semantic* transforms (rotate a photo, transcode a
song) by regenerating payload deterministically while preserving metadata.
"""

from __future__ import annotations

import io
import random
import struct
import zipfile
import zlib
from typing import List, Optional, Tuple

from .wordlists import paragraph, paragraphs, sentence, title_words

__all__ = [
    "make_pdf", "make_docx", "make_xlsx", "make_pptx", "make_odt",
    "make_doc", "make_xls", "make_ppt", "make_rtf", "make_jpeg", "make_png",
    "make_gif", "make_bmp", "make_mp3", "make_wav", "make_m4a", "make_flac",
    "make_txt", "make_md", "make_csv", "make_html", "make_xml",
    "make_sqlite", "make_m4a", "jpeg_parts", "jpeg_reencode", "wav_seed",
    "ooxml_members", "rebuild_ooxml", "SEED_MARKER",
]

SEED_MARKER = b"RPSEED::"


def _seed_blob(rng: random.Random) -> Tuple[bytes, int]:
    seed = rng.getrandbits(48)
    return SEED_MARKER + seed.to_bytes(8, "big"), seed


def _stream_bytes(seed: int, n: int) -> bytes:
    """Deterministic high-entropy payload (stand-in for compressed media)."""
    return random.Random(seed).randbytes(n)


# ---------------------------------------------------------------------------
# documents
# ---------------------------------------------------------------------------

def make_pdf(rng: random.Random, size_hint: int) -> bytes:
    """A structurally valid small PDF with Flate content streams."""
    out = io.BytesIO()
    out.write(b"%PDF-1.5\n%\xe2\xe3\xcf\xd3\n")
    offsets: List[int] = []

    def obj(body: bytes) -> None:
        offsets.append(out.tell())
        out.write(f"{len(offsets)} 0 obj\n".encode())
        out.write(body)
        out.write(b"\nendobj\n")

    n_pages = max(1, size_hint // 6000)
    page_refs = " ".join(f"{5 + 2 * i} 0 R" for i in range(n_pages))
    obj(b"<< /Type /Catalog /Pages 2 0 R >>")
    obj(f"<< /Type /Pages /Kids [{page_refs}] /Count {n_pages} >>".encode())
    obj(b"<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>")
    # an embedded font program: real PDFs carry large, highly structured
    # font tables (hmtx/glyf), which is much of why whole-file PDF entropy
    # sits near 7 rather than 8
    glyph_table = b"".join(struct.pack(">HHhh", g, (g * 37) & 0x3FF,
                                       (g * 11) % 600 - 300, 512)
                           for g in range(min(900, size_hint // 24)))
    obj(b"<< /Type /FontDescriptor /FontFile2 "
        + str(len(glyph_table)).encode() + b" >>\nstream\n"
        + glyph_table + b"\nendstream")
    budget = max(1200, size_hint - out.tell() - 800)
    per_page = budget // n_pages
    for i in range(n_pages):
        content = io.StringIO()
        content.write("BT /F1 11 Tf 72 720 Td 14 TL\n")
        text_bytes = 0
        while text_bytes < per_page:
            line = sentence(rng)
            content.write(f"({line}) Tj T*\n")
            text_bytes += len(line) + 10
        raw = content.getvalue().encode()
        obj(f"<< /Type /Page /Parent 2 0 R /MediaBox [0 0 612 792] "
            f"/Resources << /Font << /F1 3 0 R >> >> "
            f"/Contents {6 + 2 * i} 0 R >>".encode())
        if rng.random() < 0.45:
            # plenty of real-world producers leave content streams raw
            obj(b"<< /Length " + str(len(raw)).encode() + b" >>\nstream\n"
                + raw + b"\nendstream")
        else:
            stream = zlib.compress(raw, 6)
            obj(b"<< /Filter /FlateDecode /Length "
                + str(len(stream)).encode() + b" >>\nstream\n" + stream
                + b"\nendstream")
    xref_at = out.tell()
    out.write(f"xref\n0 {len(offsets) + 1}\n0000000000 65535 f \n".encode())
    for off in offsets:
        out.write(f"{off:010d} 00000 n \n".encode())
    out.write(f"trailer\n<< /Size {len(offsets) + 1} /Root 1 0 R >>\n"
              f"startxref\n{xref_at}\n%%EOF\n".encode())
    return out.getvalue()


_CONTENT_TYPES = (
    '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>\n'
    '<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">'
    '<Default Extension="rels" ContentType="application/vnd.openxmlformats-'
    'package.relationships+xml"/><Default Extension="xml" ContentType="'
    'application/xml"/>{overrides}</Types>'
)

_RELS = (
    '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>\n'
    '<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/'
    'relationships"><Relationship Id="rId1" Type="http://schemas.openxml'
    'formats.org/officeDocument/2006/relationships/officeDocument" '
    'Target="{target}"/></Relationships>'
)


def _core_props(rng: random.Random) -> str:
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>\n'
        '<cp:coreProperties xmlns:cp="http://schemas.openxmlformats.org/'
        'package/2006/metadata/core-properties" xmlns:dc="http://purl.org/'
        f'dc/elements/1.1/"><dc:title>{title_words(rng)}</dc:title>'
        f'<dc:creator>user{rng.randint(1, 40)}</dc:creator></cp:coreProperties>'
    )


def _zip_bytes(members: List[Tuple[str, bytes, bool]]) -> bytes:
    """Build a zip; ``members`` items are (name, data, stored_uncompressed)."""
    buf = io.BytesIO()
    with zipfile.ZipFile(buf, "w") as zf:
        for name, data, stored in members:
            method = zipfile.ZIP_STORED if stored else zipfile.ZIP_DEFLATED
            info = zipfile.ZipInfo(name, date_time=(2014, 6, 1, 12, 0, 0))
            zf.writestr(info, data, compress_type=method)
    return buf.getvalue()


def _ooxml(rng: random.Random, size_hint: int, app_dir: str,
           main_part: str, content_type: str, body_xml: str) -> bytes:
    overrides = (f'<Override PartName="/{app_dir}/{main_part}" '
                 f'ContentType="{content_type}"/>')
    # fixed-boilerplate members (theme, fonts, settings) mirror the real
    # OOXML overhead every Office save carries unchanged; they are what
    # keeps version-to-version similarity well above the ciphertext floor
    theme = ('<?xml version="1.0"?><a:theme>'
             + "".join(f'<a:clr idx="{i}" val="{(i * 1234567) & 0xFFFFFF:06x}"'
                       f'/><a:font idx="{i}" typeface="Font {i}"/>'
                       for i in range(160)) + "</a:theme>")
    fonts = ('<?xml version="1.0"?><w:fonts>'
             + "".join(f'<w:font w:name="Family {i}"><w:panose1 w:val='
                       f'"{i:016x}"/><w:sig w:usb0="{i * 99991:08x}"/></w:font>'
                       for i in range(40)) + "</w:fonts>")
    settings = ('<?xml version="1.0"?><w:settings>'
                + "".join(f'<w:compat w:name="opt{i}" w:val="{i % 3}"/>'
                          for i in range(80)) + "</w:settings>")
    members: List[Tuple[str, bytes, bool]] = [
        ("[Content_Types].xml",
         _CONTENT_TYPES.format(overrides=overrides).encode(), False),
        ("_rels/.rels",
         _RELS.format(target=f"{app_dir}/{main_part}").encode(), False),
        (f"{app_dir}/{main_part}", body_xml.encode(), False),
        (f"{app_dir}/styles.xml",
         ('<?xml version="1.0"?><styles>'
          + "".join(f'<style id="s{i}" font="Calibri" size="{10 + i}"/>'
                    for i in range(20)) + "</styles>").encode(), False),
        (f"{app_dir}/theme/theme1.xml", theme.encode(), False),
        (f"{app_dir}/fontTable.xml", fonts.encode(), False),
        (f"{app_dir}/settings.xml", settings.encode(), False),
        ("docProps/core.xml", _core_props(rng).encode(), False),
    ]
    if size_hint > 24000:
        # larger documents carry an embedded image
        members.append((f"{app_dir}/media/image1.jpg",
                        make_jpeg(rng, min(size_hint // 2, 40000)), True))
    return _zip_bytes(members)


def make_docx(rng: random.Random, size_hint: int) -> bytes:
    text = paragraphs(rng, max(800, size_hint * 3))
    body = ('<?xml version="1.0"?><w:document xmlns:w="http://schemas.open'
            'xmlformats.org/wordprocessingml/2006/main"><w:body>'
            + "".join(f"<w:p><w:r><w:t>{para}</w:t></w:r></w:p>"
                      for para in text.split("\n\n"))
            + "</w:body></w:document>")
    return _ooxml(rng, size_hint, "word", "document.xml",
                  "application/vnd.openxmlformats-officedocument."
                  "wordprocessingml.document.main+xml", body)


def make_xlsx(rng: random.Random, size_hint: int) -> bytes:
    n_rows = max(20, size_hint // 60)
    rows = []
    for r in range(1, n_rows + 1):
        cells = "".join(
            f'<c r="{chr(65 + c)}{r}"><v>{rng.randint(0, 99999) / 100:.2f}</v></c>'
            for c in range(6))
        rows.append(f'<row r="{r}">{cells}</row>')
    body = ('<?xml version="1.0"?><worksheet xmlns="http://schemas.openxml'
            'formats.org/spreadsheetml/2006/main"><sheetData>'
            + "".join(rows) + "</sheetData></worksheet>")
    return _ooxml(rng, size_hint, "xl", "worksheet1.xml",
                  "application/vnd.openxmlformats-officedocument."
                  "spreadsheetml.sheet.main+xml", body)


def make_pptx(rng: random.Random, size_hint: int) -> bytes:
    n_slides = max(2, size_hint // 8000)
    slides = "".join(
        f"<p:sld><p:title>{title_words(rng)}</p:title>"
        f"<p:body>{paragraph(rng)}</p:body></p:sld>"
        for _ in range(n_slides))
    body = ('<?xml version="1.0"?><p:presentation xmlns:p="http://schemas.'
            'openxmlformats.org/presentationml/2006/main">'
            + slides + "</p:presentation>")
    return _ooxml(rng, size_hint, "ppt", "presentation.xml",
                  "application/vnd.openxmlformats-officedocument."
                  "presentationml.presentation.main+xml", body)


def make_odt(rng: random.Random, size_hint: int) -> bytes:
    text = paragraphs(rng, max(600, size_hint * 3))
    content = ('<?xml version="1.0"?><office:document-content>'
               + "".join(f"<text:p>{p}</text:p>" for p in text.split("\n\n"))
               + "</office:document-content>")
    members = [
        ("mimetype", b"application/vnd.oasis.opendocument.text", True),
        ("content.xml", content.encode(), False),
        ("styles.xml", b'<?xml version="1.0"?><office:styles/>', False),
        ("meta.xml", _core_props(rng).encode(), False),
    ]
    return _zip_bytes(members)


def _ole2(rng: random.Random, size_hint: int, stream_marker: str) -> bytes:
    """Legacy Composite Document File (doc/xls/ppt)."""
    header = bytearray(512)
    header[0:8] = b"\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1"
    header[24:28] = struct.pack("<HH", 0x3E, 0x3)   # minor/major version
    header[28:30] = struct.pack("<H", 0xFFFE)        # little-endian marker
    header[30:34] = struct.pack("<HH", 9, 6)         # sector shifts
    # directory sector with the stream name that magic refinement keys on
    directory = bytearray(512)
    name = stream_marker.encode("utf-16-le")
    directory[0:len(name)] = name
    directory[64:66] = struct.pack("<H", len(name) + 2)
    text = paragraphs(rng, max(600, int(size_hint * 0.7)))
    payload = text.encode("utf-16-le")
    # FAT chain table: monotone sector numbers, structured & low entropy
    n_fat = max(1, size_hint // 2048)
    fat = b"".join(struct.pack("<I", i + 1) for i in range(n_fat * 128))
    blob = bytes(header) + bytes(directory) + payload + fat
    pad = -len(blob) % 512
    return blob + b"\x00" * pad


def make_doc(rng: random.Random, size_hint: int) -> bytes:
    return _ole2(rng, size_hint, "WordDocument")


def make_xls(rng: random.Random, size_hint: int) -> bytes:
    return _ole2(rng, size_hint, "Workbook")


def make_ppt(rng: random.Random, size_hint: int) -> bytes:
    return _ole2(rng, size_hint, "PowerPoint")


def make_rtf(rng: random.Random, size_hint: int) -> bytes:
    text = paragraphs(rng, size_hint).replace("\n\n", "\\par\n")
    return (r"{\rtf1\ansi\deff0{\fonttbl{\f0 Times New Roman;}}" + "\n"
            + text + "\n}").encode()


# ---------------------------------------------------------------------------
# images
# ---------------------------------------------------------------------------

def _jpeg_exif(rng: random.Random, seed_blob: bytes,
               thumb_bytes: int = 4096, makernote_bytes: int = 1024) -> bytes:
    """A structured APP1/EXIF segment with an embedded thumbnail.

    Real camera JPEGs carry 4–16 KiB of EXIF including a compressed
    thumbnail; editors that preserve metadata (mogrify, Lightroom exports)
    leave this block byte-identical, which is why a re-encoded photo still
    similarity-matches its original — and why ImageMagick produced no
    false positives in the paper (§V-F).
    """
    entries = io.BytesIO()
    entries.write(b"Exif\x00\x00MM\x00*\x00\x00\x00\x08")
    for tag in range(40):
        entries.write(struct.pack(">HHI4s", 0x0100 + tag, 3, 1,
                                  struct.pack(">I", rng.randint(0, 4000))))
    entries.write(b"Make\x00Canon\x00Model\x00EOS 5D\x00")
    entries.write(seed_blob)
    # maker note: the structured lens/exposure tables real cameras write
    # (low entropy, pulls whole-file JPEG entropy to the realistic ~7.8)
    seed = int.from_bytes(seed_blob[-8:], "big")
    note = bytearray(b"MakerNote\x00")
    for i in range(makernote_bytes // 8):
        note += struct.pack(">HHI", i & 0x3FF, (seed + i) & 7,
                            (i * 257) & 0xFFFF)
    entries.write(bytes(note))
    # embedded thumbnail: deterministic compressed-looking payload
    entries.write(b"\xff\xd8\xff\xdb")
    entries.write(_stream_bytes(seed ^ 0x7B, thumb_bytes))
    entries.write(b"\xff\xd9")
    entries.write(b"\x00" * 64)
    body = entries.getvalue()
    return b"\xff\xe1" + struct.pack(">H", min(65533, len(body) + 2)) + body


def make_jpeg(rng: random.Random, size_hint: int) -> bytes:
    blob, seed = _seed_blob(rng)
    out = io.BytesIO()
    out.write(b"\xff\xd8\xff\xe0\x00\x10JFIF\x00\x01\x01\x01\x00H\x00H\x00\x00")
    # metadata scales with the photo, as real camera EXIF does; it is the
    # stable anchor that keeps edited re-encodes similarity-matchable
    thumb = max(3072, min(12288, size_hint // 4))
    note = max(768, min(4096, size_hint // 12))
    out.write(_jpeg_exif(rng, blob, thumb_bytes=thumb,
                         makernote_bytes=note))
    # quantisation + huffman table stubs: structured, low entropy
    out.write(b"\xff\xdb\x00\x43\x00" + bytes(range(1, 65)))
    out.write(b"\xff\xc4\x00\x1f\x00" + bytes(29))
    out.write(b"\xff\xda\x00\x0c\x03\x01\x00\x02\x11\x03\x11\x00\x3f\x00")
    scan = _stream_bytes(seed, max(1024, size_hint - out.tell() - 2))
    out.write(scan.replace(b"\xff", b"\xfe"))  # real scans byte-stuff 0xFF
    out.write(b"\xff\xd9")
    return out.getvalue()


def jpeg_parts(data: bytes) -> Optional[Tuple[bytes, int, int]]:
    """Split a synthetic JPEG into (pre-scan bytes, seed, scan length).

    Returns None if the seed marker is absent (not one of our JPEGs)."""
    at = data.find(SEED_MARKER)
    if at < 0 or data[:3] != b"\xff\xd8\xff":
        return None
    seed = int.from_bytes(data[at + 8:at + 16], "big")
    # match the full start-of-scan header our generator writes, so random
    # thumbnail bytes inside the EXIF block cannot alias it
    sos_header = b"\xff\xda\x00\x0c\x03\x01\x00\x02\x11\x03\x11\x00\x3f\x00"
    sos = data.find(sos_header)
    if sos < 0:
        return None
    header_end = sos + len(sos_header)
    return bytes(data[:header_end]), seed, max(0, len(data) - header_end - 2)


def jpeg_reencode(data: bytes, variant: int) -> bytes:
    """Semantic transform (rotate/tone): new scan, same metadata."""
    parts = jpeg_parts(data)
    if parts is None:
        raise ValueError("not a synthetic JPEG")
    header, seed, scan_len = parts
    scan = _stream_bytes(seed ^ (0xA5A5 + variant), scan_len)
    return header + scan.replace(b"\xff", b"\xfe") + b"\xff\xd9"


def make_png(rng: random.Random, size_hint: int) -> bytes:
    def chunk(tag: bytes, body: bytes) -> bytes:
        raw = tag + body
        return struct.pack(">I", len(body)) + raw + struct.pack(
            ">I", zlib.crc32(raw) & 0xFFFFFFFF)

    width = max(16, int((size_hint / 3) ** 0.5))
    height = width
    rows = bytearray()
    base = rng.randrange(256)
    for y in range(height):
        rows.append(0)  # filter byte
        rows.extend(((base + x + y + rng.randrange(8)) & 0xFF)
                    for x in range(width))
    idat = zlib.compress(bytes(rows), 6)
    return (b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", struct.pack(">IIBBBBB", width, height, 8, 0, 0, 0, 0))
            + chunk(b"IDAT", idat)
            + chunk(b"IEND", b""))


def make_gif(rng: random.Random, size_hint: int) -> bytes:
    width = height = max(8, int(size_hint ** 0.5) & 0xFFFF)
    header = (b"GIF89a" + struct.pack("<HH", width, height)
              + b"\xf7\x00\x00" + bytes(rng.randrange(256) for _ in range(768)))
    body = _stream_bytes(rng.getrandbits(48), max(256, size_hint - len(header) - 1))
    return header + body + b"\x3b"


def make_bmp(rng: random.Random, size_hint: int) -> bytes:
    width = max(16, int((size_hint / 3) ** 0.5))
    height = width
    pixels = bytearray()
    for y in range(height):
        for x in range(width):
            # blocky, banded image: a few dozen distinct byte values, so
            # the per-byte histogram stays low entropy like real bitmaps
            shade = 96 + ((x // 8 + y // 8) % 24) * 4
            pixels += bytes((shade, shade, (shade + 40) & 0xFF))
        pixels += b"\x00" * (-(width * 3) % 4)
    header = struct.pack("<2sIHHIIiiHHIIiiII", b"BM", 54 + len(pixels), 0, 0,
                         54, 40, width, height, 1, 24, 0, len(pixels),
                         2835, 2835, 0, 0)
    return header + bytes(pixels)


# ---------------------------------------------------------------------------
# audio
# ---------------------------------------------------------------------------

def make_mp3(rng: random.Random, size_hint: int) -> bytes:
    blob, seed = _seed_blob(rng)
    tag_body = (b"TIT2" + struct.pack(">I", 24) + b"\x00\x00\x01"
                + title_words(rng).encode()[:20].ljust(21, b"\x00")
                + b"TPE1" + struct.pack(">I", 16) + b"\x00\x00\x01"
                + b"Unknown Artist\x00" + blob)
    out = io.BytesIO()
    out.write(b"ID3\x04\x00\x00" + struct.pack(">I", len(tag_body)) + tag_body)
    n_frames = max(4, (size_hint - out.tell()) // 418)
    for i in range(n_frames):
        out.write(b"\xff\xfb\x90\x00")
        out.write(_stream_bytes(seed + i, 414))
    return out.getvalue()


def make_wav(rng: random.Random, size_hint: int) -> bytes:
    import numpy as np
    blob, seed = _seed_blob(rng)
    n_samples = max(512, (size_hint - 60) // 2)
    t = np.arange(n_samples, dtype=np.float64)
    freq = 220.0 + (seed % 440)
    wave = (0.6 * np.sin(2 * np.pi * freq * t / 44100.0)
            + 0.25 * np.sin(2 * np.pi * 2.01 * freq * t / 44100.0)
            + 0.05 * np.asarray(
                random.Random(seed).choices(range(-100, 100), k=n_samples)) / 100.0)
    pcm = (wave * 12000).astype("<i2").tobytes()
    data_len = len(pcm)
    header = (b"RIFF" + struct.pack("<I", 36 + data_len + len(blob) + 8) + b"WAVE"
              + b"fmt " + struct.pack("<IHHIIHH", 16, 1, 1, 44100, 88200, 2, 16)
              + b"LIST" + struct.pack("<I", len(blob)) + blob
              + b"data" + struct.pack("<I", data_len))
    return header + pcm


def wav_seed(data: bytes) -> Optional[int]:
    at = data.find(SEED_MARKER)
    if at < 0:
        return None
    return int.from_bytes(data[at + 8:at + 16], "big")


def make_m4a(rng_or_seed, size_hint: int) -> bytes:
    """AAC-in-MP4; accepts an RNG or a raw seed (for deterministic
    transcodes by the iTunes simulator)."""
    if isinstance(rng_or_seed, random.Random):
        seed = rng_or_seed.getrandbits(48)
    else:
        seed = int(rng_or_seed)
    ftyp = b"\x00\x00\x00\x20ftypM4A \x00\x00\x00\x00M4A mp42isom\x00\x00\x00\x00"
    moov = (b"\x00\x00\x00\x40moov" + b"\x00" * 24
            + SEED_MARKER + seed.to_bytes(8, "big") + b"\x00" * 20)
    mdat_payload = _stream_bytes(seed ^ 0xAAC, max(1024, size_hint - 128))
    mdat = struct.pack(">I", len(mdat_payload) + 8) + b"mdat" + mdat_payload
    return ftyp + moov + mdat


def make_flac(rng: random.Random, size_hint: int) -> bytes:
    header = b"fLaC\x00\x00\x00\x22" + bytes(34)
    return header + _stream_bytes(rng.getrandbits(48), max(512, size_hint - 42))


# ---------------------------------------------------------------------------
# text
# ---------------------------------------------------------------------------

def make_txt(rng: random.Random, size_hint: int) -> bytes:
    return paragraphs(rng, size_hint).encode()[:max(24, size_hint)]


def make_md(rng: random.Random, size_hint: int) -> bytes:
    out = [f"# {title_words(rng)}", ""]
    total = len(out[0])
    while total < size_hint:
        kind = rng.randrange(4)
        if kind == 0:
            piece = f"## {title_words(rng, 2)}"
        elif kind == 1:
            piece = "\n".join(f"- {sentence(rng, rng.randint(3, 8))}"
                              for _ in range(rng.randint(2, 5)))
        elif kind == 2:
            piece = f"> {sentence(rng)}"
        else:
            piece = paragraph(rng)
        out.extend([piece, ""])
        total += len(piece) + 2
    return "\n".join(out).encode()[:max(24, size_hint + 200)]


def make_csv(rng: random.Random, size_hint: int) -> bytes:
    cols = ["id", "date", "amount", "category", "notes"]
    lines = [",".join(cols)]
    total = len(lines[0])
    row_id = 1
    while total < size_hint:
        line = (f"{row_id},2014-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d},"
                f"{rng.randint(1, 900000) / 100:.2f},"
                f"{rng.choice(['travel', 'office', 'meals', 'equipment'])},"
                f"{sentence(rng, 4)[:-1]}")
        lines.append(line)
        total += len(line) + 1
        row_id += 1
    return "\n".join(lines).encode()


def make_html(rng: random.Random, size_hint: int) -> bytes:
    body = "".join(f"<p>{paragraph(rng)}</p>\n"
                   for _ in range(max(2, size_hint // 400)))
    return (f"<!DOCTYPE html>\n<html><head><title>{title_words(rng)}"
            f"</title></head>\n<body>\n<h1>{title_words(rng)}</h1>\n"
            f"{body}</body></html>\n").encode()


def make_xml(rng: random.Random, size_hint: int) -> bytes:
    records = []
    total = 0
    idx = 0
    while total < size_hint:
        rec = (f'  <record id="{idx}" date="2014-{rng.randint(1, 12):02d}">'
               f"<name>{title_words(rng, 2)}</name>"
               f"<value>{rng.randint(0, 10000)}</value>"
               f"<note>{sentence(rng, 6)}</note></record>")
        records.append(rec)
        total += len(rec)
        idx += 1
    return ('<?xml version="1.0" encoding="UTF-8"?>\n<records>\n'
            + "\n".join(records) + "\n</records>\n").encode()


def make_sqlite(rng: random.Random, size_hint: int) -> bytes:
    """A SQLite-shaped database file (Lightroom catalogs, iTunes library)."""
    page = 4096
    n_pages = max(2, size_hint // page)
    header = bytearray(100)
    header[0:16] = b"SQLite format 3\x00"
    header[16:18] = struct.pack(">H", page)
    header[28:32] = struct.pack(">I", n_pages)
    body = io.BytesIO()
    body.write(bytes(header) + b"\x00" * (page - 100))
    for _ in range(n_pages - 1):
        cells = b"".join(
            struct.pack(">HB", rng.randrange(page), 13)
            + sentence(rng, 6).encode()[:48].ljust(48)
            for _ in range(page // 64))
        body.write(b"\x0d" + cells[:page - 1])
    return body.getvalue()


# ---------------------------------------------------------------------------
# OOXML editing support (benign Word/Excel simulators)
# ---------------------------------------------------------------------------

def ooxml_members(data: bytes) -> List[Tuple[str, bytes, bool]]:
    """Explode an OOXML/zip file back into (name, data, stored) members."""
    members = []
    with zipfile.ZipFile(io.BytesIO(data)) as zf:
        for info in zf.infolist():
            members.append((info.filename, zf.read(info.filename),
                            info.compress_type == zipfile.ZIP_STORED))
    return members


def rebuild_ooxml(members: List[Tuple[str, bytes, bool]]) -> bytes:
    return _zip_bytes(members)
