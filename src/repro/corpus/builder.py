"""Corpus assembly: generate once, plant into any filesystem.

``generate()`` renders a full corpus (manifest + content bytes) and caches
it by parameters, because the campaign harness builds one corpus and runs
hundreds of samples against journal-reverted copies.  ``plant()`` installs
a generated corpus under a protected root in a VFS via out-of-band writes
(corpus installation must not look like process I/O to the detector).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fs.nodes import FileAttributes
from ..fs.paths import DOCUMENTS, WinPath
from ..fs.vfs import VirtualFileSystem
from .spec import CorpusSpec, default_spec
from .tree import build_tree
from .wordlists import file_stem

__all__ = ["CorpusFile", "GeneratedCorpus", "generate", "plant",
           "build_corpus", "PAPER_FILES", "PAPER_DIRS"]

#: the paper's §V-A corpus dimensions
PAPER_FILES = 5099
PAPER_DIRS = 511


@dataclass(frozen=True)
class CorpusFile:
    """Manifest row for one generated file."""

    rel_dir: Tuple[str, ...]
    name: str
    type_name: str
    size: int
    read_only: bool

    @property
    def rel_path(self) -> str:
        return "\\".join(self.rel_dir + (self.name,))

    @property
    def suffix(self) -> str:
        dot = self.name.rfind(".")
        return self.name[dot:].lower() if dot >= 0 else ""


@dataclass
class GeneratedCorpus:
    """A rendered corpus, independent of any filesystem."""

    seed: int
    dirs: List[Tuple[str, ...]]
    files: List[CorpusFile]
    contents: Dict[str, bytes] = field(repr=False, default_factory=dict)
    #: memoised BaselineStore per (backend, max_inspect_bytes,
    #: digests_enabled) — the corpus is immutable once generated, so each
    #: parameter set needs digesting exactly once per process
    _stores: Dict[tuple, object] = field(repr=False, compare=False,
                                         default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def baseline_store(self, backend: str = "sdhash",
                       max_inspect_bytes: int = 4 * 1024 * 1024,
                       digests_enabled: bool = True,
                       storage: str = "dict",
                       hot_entries: int = 4096):
        """The (cached) precomputed first-touch baseline index.

        Building digests the whole corpus once; campaigns running many
        samples against this corpus resolve pristine-content baselines
        from the returned :class:`~repro.corpus.baselines.BaselineStore`
        instead of re-digesting per sample.

        ``storage="mmap"`` serves the same index from a single on-disk
        file (written to a temp path on first request, reopened lazily)
        — identical lookups, bounded resident memory; see
        ``docs/performance.md``.
        """
        from .baselines import BaselineStore
        if storage not in ("dict", "mmap"):
            raise ValueError(f"unknown store storage {storage!r} "
                             "(expected 'dict' or 'mmap')")
        key = (backend, max_inspect_bytes, digests_enabled)
        store = self._stores.get(key)
        if store is None:
            store = BaselineStore.build(self, backend=backend,
                                        max_inspect_bytes=max_inspect_bytes,
                                        digests_enabled=digests_enabled)
            self._stores[key] = store
        if storage == "dict":
            return store
        disk_key = key + ("mmap", hot_entries)
        disk_store = self._stores.get(disk_key)
        if disk_store is None:
            import tempfile
            fd, path = tempfile.mkstemp(prefix="cryptodrop-store-",
                                        suffix=".cdbs")
            os.close(fd)
            store.save(path)
            disk_store = BaselineStore.open(path, hot_entries=hot_entries)
            self._stores[disk_key] = disk_store
        return disk_store

    def files_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.files:
            counts[f.type_name] = counts.get(f.type_name, 0) + 1
        return counts

    def without_small_files(self, min_bytes: int = 512) -> "GeneratedCorpus":
        """The §V-C rerun corpus: drop every file smaller than ``min_bytes``."""
        keep = [f for f in self.files if f.size >= min_bytes]
        contents = {f.rel_path: self.contents[f.rel_path] for f in keep}
        return GeneratedCorpus(self.seed, list(self.dirs), keep, contents)


_CACHE: Dict[Tuple[int, int, int], GeneratedCorpus] = {}


def generate(seed: int = 2016, n_files: int = PAPER_FILES,
             n_dirs: int = PAPER_DIRS,
             spec: Optional[CorpusSpec] = None,
             use_cache: bool = True) -> GeneratedCorpus:
    """Render a corpus; results are cached per (seed, n_files, n_dirs)."""
    cache_key = (seed, n_files, n_dirs)
    if use_cache and spec is None and cache_key in _CACHE:
        return _CACHE[cache_key]
    spec = spec or default_spec()
    rng = random.Random(seed)
    dirs = build_tree(seed, n_dirs)
    counts = spec.counts(n_files)

    # Interleave the type populations deterministically, then deal files
    # round-robin-ishly into directories with per-directory weights, so
    # every directory mixes types the way real folders do.
    population: List[str] = []
    for name in sorted(counts):
        population.extend([name] * counts[name])
    rng.shuffle(population)
    dir_weights = [rng.lognormvariate(0.0, 0.8) for _ in dirs]

    files: List[CorpusFile] = []
    contents: Dict[str, bytes] = {}
    used_names: Dict[Tuple[str, ...], set] = {d: set() for d in dirs}
    for type_name in population:
        tspec = spec.by_name(type_name)
        rel_dir = rng.choices(dirs, weights=dir_weights, k=1)[0]
        stem = file_stem(rng)
        name = f"{stem}.{type_name}"
        bump = 2
        while name.lower() in used_names[rel_dir]:
            name = f"{stem} ({bump}).{type_name}"
            bump += 1
        used_names[rel_dir].add(name.lower())
        size_hint = tspec.draw_size(rng)
        data = tspec.maker(rng, size_hint)
        read_only = rng.random() < spec.read_only_fraction
        row = CorpusFile(rel_dir, name, type_name, len(data), read_only)
        files.append(row)
        contents[row.rel_path] = data
    corpus = GeneratedCorpus(seed, dirs, files, contents)
    if use_cache and cache_key not in _CACHE:
        _CACHE[cache_key] = corpus
    return corpus


def plant(vfs: VirtualFileSystem, corpus: GeneratedCorpus,
          root: WinPath = DOCUMENTS) -> None:
    """Install ``corpus`` under ``root`` (out-of-band; emits no events)."""
    vfs._ensure_dirs(root)
    for rel_dir in corpus.dirs:
        if rel_dir:
            vfs._ensure_dirs(root.joinpath(*rel_dir))
    for row in corpus.files:
        path = root.joinpath(*(row.rel_dir + (row.name,)))
        attrs = FileAttributes(read_only=row.read_only)
        vfs.peek_write(path, corpus.contents[row.rel_path], attrs=attrs)


def build_corpus(vfs: VirtualFileSystem, seed: int = 2016,
                 n_files: int = PAPER_FILES, n_dirs: int = PAPER_DIRS,
                 root: WinPath = DOCUMENTS) -> GeneratedCorpus:
    """Generate (cached) and plant in one call."""
    corpus = generate(seed, n_files, n_dirs)
    plant(vfs, corpus, root)
    return corpus
