"""Corpus composition model.

The paper built its 5,099-file corpus from the Govdocs1 threads, an OOXML
set, the OPF format corpus, and the Coldwell audio files, proportioned to
match measured user document directories (Hicks et al. [22], Douceur [16],
Agrawal [2]).  :func:`default_spec` encodes those proportions; sizes are
log-normal per type, which is the accepted model for file-size
distributions in both filesystem studies the paper cites.

The text-type small tail matters: CTB-Locker's size-ascending attack found
dozens of sub-512-byte files, too small for sdhash (§V-C) — the default
spec reproduces that population.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from . import content

__all__ = ["TypeSpec", "CorpusSpec", "default_spec"]


@dataclass(frozen=True)
class TypeSpec:
    """One file type's population parameters."""

    name: str                      # extension without dot, e.g. "pdf"
    fraction: float                # share of the corpus
    median_bytes: int
    sigma: float                   # log-normal shape
    min_bytes: int
    max_bytes: int
    maker: Callable[[random.Random, int], bytes]

    def draw_size(self, rng: random.Random) -> int:
        size = int(self.median_bytes * math.exp(rng.gauss(0.0, self.sigma)))
        return max(self.min_bytes, min(self.max_bytes, size))


@dataclass(frozen=True)
class CorpusSpec:
    """A full corpus recipe."""

    types: List[TypeSpec]
    read_only_fraction: float = 0.02

    def counts(self, n_files: int) -> Dict[str, int]:
        """Deterministic per-type counts summing exactly to ``n_files``."""
        raw = {t.name: t.fraction * n_files for t in self.types}
        counts = {name: int(value) for name, value in raw.items()}
        remainder = n_files - sum(counts.values())
        # hand leftovers to the largest fractional parts, ties by name
        order = sorted(raw, key=lambda k: (counts[k] - raw[k], k))
        for name in order[:remainder]:
            counts[name] += 1
        return counts

    def by_name(self, name: str) -> TypeSpec:
        for spec in self.types:
            if spec.name == name:
                return spec
        raise KeyError(name)


def default_spec() -> CorpusSpec:
    """The Govdocs1/OPF/Coldwell-modelled composition used by the paper."""
    k = 1024
    types = [
        TypeSpec("pdf", 0.165, 14 * k, 0.90, 3 * k, 220 * k, content.make_pdf),
        TypeSpec("html", 0.065, 6 * k, 1.00, 600, 80 * k, content.make_html),
        TypeSpec("txt", 0.106, 3000, 1.03, 150, 60 * k, content.make_txt),
        TypeSpec("md", 0.030, 2000, 0.85, 150, 30 * k, content.make_md),
        TypeSpec("csv", 0.045, 4 * k, 1.10, 200, 90 * k, content.make_csv),
        TypeSpec("xml", 0.035, 5 * k, 1.00, 300, 70 * k, content.make_xml),
        TypeSpec("doc", 0.085, 12 * k, 0.80, 4 * k, 150 * k, content.make_doc),
        TypeSpec("xls", 0.055, 12 * k, 0.80, 4 * k, 150 * k, content.make_xls),
        TypeSpec("ppt", 0.035, 16 * k, 0.80, 6 * k, 200 * k, content.make_ppt),
        TypeSpec("docx", 0.075, 11 * k, 0.80, 3 * k, 120 * k, content.make_docx),
        TypeSpec("xlsx", 0.045, 10 * k, 0.80, 3 * k, 120 * k, content.make_xlsx),
        TypeSpec("pptx", 0.035, 14 * k, 0.80, 4 * k, 160 * k, content.make_pptx),
        TypeSpec("odt", 0.020, 9 * k, 0.80, 3 * k, 90 * k, content.make_odt),
        TypeSpec("rtf", 0.025, 7 * k, 1.00, 500, 90 * k, content.make_rtf),
        TypeSpec("jpg", 0.090, 16 * k, 0.70, 4 * k, 180 * k, content.make_jpeg),
        TypeSpec("png", 0.035, 8 * k, 0.80, 1 * k, 90 * k, content.make_png),
        TypeSpec("gif", 0.020, 6 * k, 0.80, 1 * k, 60 * k, content.make_gif),
        TypeSpec("bmp", 0.007, 10 * k, 0.60, 2 * k, 60 * k, content.make_bmp),
        TypeSpec("wav", 0.008, 60 * k, 0.50, 8 * k, 300 * k, content.make_wav),
        TypeSpec("mp3", 0.012, 70 * k, 0.50, 8 * k, 300 * k, content.make_mp3),
        TypeSpec("m4a", 0.004, 50 * k, 0.50, 8 * k, 250 * k, content.make_m4a),
        TypeSpec("flac", 0.003, 80 * k, 0.50, 8 * k, 300 * k, content.make_flac),
    ]
    total = sum(t.fraction for t in types)
    if not 0.995 <= total <= 1.005:
        raise AssertionError(f"spec fractions sum to {total}")
    return CorpusSpec(types=types)
