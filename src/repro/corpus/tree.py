"""Directory tree synthesis.

Builds a nested directory skeleton with a target directory count (511 for
the paper's corpus), shaped like real user document trees: a handful of
broad top-level folders, year/month subtrees, and occasional deep chains.
Deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .wordlists import FOLDER_NAMES

__all__ = ["build_tree", "DirSpec"]

#: a directory, as a tuple of path parts relative to the corpus root
DirSpec = Tuple[str, ...]


def build_tree(seed: int, n_dirs: int) -> List[DirSpec]:
    """Return ``n_dirs`` relative directory paths (root included as ``()``).

    Growth procedure: start from the root; repeatedly pick an existing
    directory (biased toward shallow ones, so the tree stays bushy rather
    than becoming one long chain) and attach a child with a plausible name,
    avoiding collisions case-insensitively.
    """
    if n_dirs < 1:
        raise ValueError("need at least the root directory")
    rng = random.Random(seed ^ 0xD1285)
    dirs: List[DirSpec] = [()]
    names_in: dict = {(): set()}
    while len(dirs) < n_dirs:
        # Bias: weight each candidate parent by 1/(depth+1)^1.5.
        weights = [1.0 / (len(d) + 1) ** 1.5 for d in dirs]
        parent = rng.choices(dirs, weights=weights, k=1)[0]
        if len(parent) >= 8:
            continue
        base = rng.choice(FOLDER_NAMES)
        name = base
        suffix = 2
        taken = names_in[parent]
        while name.lower() in taken:
            name = f"{base} {suffix}"
            suffix += 1
            if suffix > 30:
                break
        if name.lower() in taken:
            continue
        taken.add(name.lower())
        child = parent + (name,)
        dirs.append(child)
        names_in[child] = set()
    return dirs
