"""Alternative user-profile corpus compositions.

The paper's corpus models a *generic* user (Govdocs1/Hicks proportions).
Real victims differ: the detector's speed depends on what the victim
actually stores, because the entropy indicator keys off the read mix and
sdhash's floor keys off file sizes.  These profiles support the
sensitivity experiment (how files-lost moves with corpus composition):

* ``writer``     — text-heavy: notes, manuscripts, markdown; lots of
  small low-entropy files (entropy delta trips instantly, but many files
  fall under sdhash's floor),
* ``photographer`` — JPEG/PNG-heavy: almost everything is compressed
  (entropy delta is starved; type change and similarity do the work),
* ``accountant`` — spreadsheets/OLE2/CSV-heavy: large structured files
  (every indicator fires; the friendliest case for the detector).
"""

from __future__ import annotations

from typing import Dict

from .spec import CorpusSpec, TypeSpec, default_spec

__all__ = ["profile_spec", "PROFILE_NAMES"]

PROFILE_NAMES = ("generic", "writer", "photographer", "accountant")

#: per-profile fraction overrides; unlisted types are scaled down
#: proportionally so the total stays at 1.0
_OVERRIDES: Dict[str, Dict[str, float]] = {
    "writer": {
        "txt": 0.30, "md": 0.18, "rtf": 0.08, "docx": 0.12, "doc": 0.08,
        "html": 0.05, "pdf": 0.08,
    },
    "photographer": {
        "jpg": 0.46, "png": 0.14, "gif": 0.05, "bmp": 0.03, "pdf": 0.06,
        "txt": 0.04,
    },
    "accountant": {
        "xlsx": 0.22, "xls": 0.18, "csv": 0.16, "doc": 0.07, "docx": 0.07,
        "pdf": 0.12, "txt": 0.05,
    },
}


def profile_spec(name: str) -> CorpusSpec:
    """A :class:`CorpusSpec` for the named user profile."""
    base = default_spec()
    if name == "generic":
        return base
    try:
        overrides = _OVERRIDES[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; "
                         f"choose from {PROFILE_NAMES}") from None
    fixed = sum(overrides.values())
    if fixed >= 1.0:
        raise AssertionError(f"profile {name} overrides exceed 1.0")
    remaining_base = sum(t.fraction for t in base.types
                         if t.name not in overrides)
    scale = (1.0 - fixed) / remaining_base
    types = []
    for spec in base.types:
        fraction = overrides.get(spec.name, spec.fraction * scale)
        types.append(TypeSpec(spec.name, fraction, spec.median_bytes,
                              spec.sigma, spec.min_bytes, spec.max_bytes,
                              spec.maker))
    return CorpusSpec(types=types,
                      read_only_fraction=base.read_only_fraction)
