"""Context-triggered piecewise hashing (ssdeep-style; Kornblum 2006).

Included as the classic alternative similarity-preserving hash the paper
cites ([27]) alongside sdhash.  CryptoDrop's similarity indicator can be
configured to use either backend; the ablation benches compare them.

Implements the standard construction:

* a rolling hash (7-byte window) triggers a piece boundary whenever
  ``rolling % blocksize == blocksize - 1``,
* each piece contributes one base64 character derived from an FNV-1 hash,
* the signature holds two strings at blocksize b and 2b,
* comparison aligns blocksizes and scores a capped, length-normalised
  edit distance into 0–100.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["ctph", "compare_signatures", "CtphSignature", "MIN_INPUT"]

_B64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
SPAMSUM_LENGTH = 64
MIN_BLOCKSIZE = 3
MIN_INPUT = 16
_FNV_PRIME = 0x01000193
_FNV_OFFSET = 0x28021967


class _RollingHash:
    """Adler-style rolling hash over a 7-byte window."""

    __slots__ = ("h1", "h2", "h3", "window", "pos")

    WINDOW = 7

    def __init__(self) -> None:
        self.h1 = 0
        self.h2 = 0
        self.h3 = 0
        self.window = bytearray(self.WINDOW)
        self.pos = 0

    def update(self, byte: int) -> int:
        oldest = self.window[self.pos % self.WINDOW]
        self.h2 = (self.h2 - self.h1 + self.WINDOW * byte) & 0xFFFFFFFF
        self.h1 = (self.h1 + byte - oldest) & 0xFFFFFFFF
        self.window[self.pos % self.WINDOW] = byte
        self.pos += 1
        self.h3 = ((self.h3 << 5) ^ byte) & 0xFFFFFFFF
        return (self.h1 + self.h2 + self.h3) & 0xFFFFFFFF


class CtphSignature:
    """``blocksize:sig1:sig2``, like the ssdeep tool prints."""

    __slots__ = ("blocksize", "sig1", "sig2")

    def __init__(self, blocksize: int, sig1: str, sig2: str) -> None:
        self.blocksize = blocksize
        self.sig1 = sig1
        self.sig2 = sig2

    def __str__(self) -> str:
        return f"{self.blocksize}:{self.sig1}:{self.sig2}"

    @classmethod
    def parse(cls, text: str) -> "CtphSignature":
        """Inverse of ``str()`` (the signature alphabet has no colons)."""
        blocksize, sig1, sig2 = text.split(":")
        return cls(int(blocksize), sig1, sig2)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CtphSignature)
                and str(self) == str(other))

    def __hash__(self) -> int:
        return hash(str(self))


def _hash_pass(data: bytes, blocksize: int) -> Tuple[str, str]:
    # The rolling hash is inlined (same arithmetic as _RollingHash.update)
    # — one method call per input byte is the difference between this pass
    # being bearable and not on multi-megabyte ablation corpora.
    h1 = h2 = h3 = 0
    window = bytearray(_RollingHash.WINDOW)
    wsize = _RollingHash.WINDOW
    pos = 0
    fnv1 = _FNV_OFFSET
    fnv2 = _FNV_OFFSET
    sig1 = []
    sig2 = []
    bs2 = blocksize * 2
    cap1 = SPAMSUM_LENGTH - 1
    cap2 = SPAMSUM_LENGTH // 2 - 1
    for byte in data:
        fnv1 = ((fnv1 * _FNV_PRIME) ^ byte) & 0xFFFFFFFF
        fnv2 = ((fnv2 * _FNV_PRIME) ^ byte) & 0xFFFFFFFF
        slot = pos % wsize
        oldest = window[slot]
        h2 = (h2 - h1 + wsize * byte) & 0xFFFFFFFF
        h1 = (h1 + byte - oldest) & 0xFFFFFFFF
        window[slot] = byte
        pos += 1
        h3 = ((h3 << 5) ^ byte) & 0xFFFFFFFF
        rh = (h1 + h2 + h3) & 0xFFFFFFFF
        if rh % blocksize == blocksize - 1 and len(sig1) < cap1:
            sig1.append(_B64[fnv1 & 63])
            fnv1 = _FNV_OFFSET
        if rh % bs2 == bs2 - 1 and len(sig2) < cap2:
            sig2.append(_B64[fnv2 & 63])
            fnv2 = _FNV_OFFSET
    sig1.append(_B64[fnv1 & 63])
    sig2.append(_B64[fnv2 & 63])
    return "".join(sig1), "".join(sig2)


def ctph(data: bytes) -> Optional[CtphSignature]:
    """Compute a CTPH signature; None for inputs too small to be useful."""
    if not isinstance(data, bytes):
        data = bytes(data)
    if len(data) < MIN_INPUT:
        return None
    blocksize = MIN_BLOCKSIZE
    while blocksize * SPAMSUM_LENGTH < len(data):
        blocksize *= 2
    while True:
        sig1, sig2 = _hash_pass(data, blocksize)
        if len(sig1) >= SPAMSUM_LENGTH // 2 or blocksize == MIN_BLOCKSIZE:
            return CtphSignature(blocksize, sig1, sig2)
        blocksize //= 2


def _edit_distance(a: str, b: str) -> int:
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + (ca != cb)))
        previous = current
    return previous[-1]


def _score_strings(s1: str, s2: str, blocksize: int) -> int:
    if not s1 or not s2:
        return 0
    if not _has_common_substring(s1, s2, 7):
        return 0
    dist = _edit_distance(s1, s2)
    # spamsum scaling: normalise the distance by the combined length.
    score = 100 - (100 * dist) // (len(s1) + len(s2))
    # cap scores for very short signatures (little evidence).
    cap = blocksize // MIN_BLOCKSIZE * min(len(s1), len(s2))
    return max(0, min(score, cap))


def _has_common_substring(s1: str, s2: str, length: int) -> bool:
    if len(s1) < length or len(s2) < length:
        return False
    grams = {s1[i:i + length] for i in range(len(s1) - length + 1)}
    return any(s2[i:i + length] in grams
               for i in range(len(s2) - length + 1))


def compare_signatures(a: Optional[CtphSignature],
                       b: Optional[CtphSignature]) -> Optional[int]:
    """ssdeep match score 0–100, None when either signature is missing."""
    if a is None or b is None:
        return None
    if a.blocksize == b.blocksize:
        return max(_score_strings(a.sig1, b.sig1, a.blocksize),
                   _score_strings(a.sig2, b.sig2, a.blocksize * 2))
    if a.blocksize == b.blocksize * 2:
        return _score_strings(a.sig1, b.sig2, a.blocksize)
    if b.blocksize == a.blocksize * 2:
        return _score_strings(a.sig2, b.sig1, b.blocksize)
    return 0
