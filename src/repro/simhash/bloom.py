"""Bloom filters for similarity digests.

sdhash packs selected features into a chain of 256-byte Bloom filters
(2048 bits, 5 bit-positions per feature, at most 160 features per filter).
We reproduce that geometry.  Filters support fast popcount and intersection
via NumPy, which is what makes digest comparison cheap enough to run inside
the analysis engine at close time.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = ["BloomFilter", "FILTER_BITS", "BITS_PER_FEATURE", "MAX_FEATURES",
           "feature_positions", "packed_popcount"]

FILTER_BITS = 2048          # 256 bytes, as in sdhash
BITS_PER_FEATURE = 5        # sdhash uses 5 sub-hashes per SHA-1 feature
MAX_FEATURES = 160          # features per filter before chaining

#: per-byte popcount lookup, the workhorse of batched digest comparison
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint16)


def feature_positions(hashes: np.ndarray) -> np.ndarray:
    """Bit positions for a batch of feature hashes, vectorised.

    ``hashes`` is an ``(n, 20)`` uint8 array of SHA-1 digests; the result
    is ``(n, BITS_PER_FEATURE)`` int64 positions, bit-identical to
    :meth:`BloomFilter.positions` per row.  The five 11-bit slices occupy
    the low 55 bits of the first-16-bytes big-endian integer, which live
    entirely inside bytes 8..16 viewed as one big-endian uint64.
    """
    low = np.ascontiguousarray(hashes[:, 8:16]).view(">u8")
    low = low.astype(np.uint64).reshape(-1)
    shifts = np.arange(BITS_PER_FEATURE, dtype=np.uint64) * np.uint64(11)
    return ((low[:, None] >> shifts[None, :])
            & np.uint64(FILTER_BITS - 1)).astype(np.int64)


def packed_popcount(packed: np.ndarray) -> np.ndarray:
    """Popcount along the last axis of a uint8-packed bit array."""
    return _POPCOUNT8[packed].sum(axis=-1, dtype=np.int64)


class BloomFilter:
    """A fixed-geometry Bloom filter over 160-bit feature hashes."""

    __slots__ = ("bits", "count")

    def __init__(self) -> None:
        self.bits = np.zeros(FILTER_BITS, dtype=bool)
        self.count = 0

    @staticmethod
    def positions(feature_hash: bytes) -> List[int]:
        """Derive the 5 bit positions from a 20-byte hash (11 bits each)."""
        value = int.from_bytes(feature_hash[:16], "big")
        positions = []
        for _ in range(BITS_PER_FEATURE):
            positions.append(value & (FILTER_BITS - 1))
            value >>= 11
        return positions

    def add(self, feature_hash: bytes) -> None:
        for pos in self.positions(feature_hash):
            self.bits[pos] = True
        self.count += 1

    @property
    def full(self) -> bool:
        return self.count >= MAX_FEATURES

    def popcount(self) -> int:
        return int(self.bits.sum())

    def intersect_count(self, other: "BloomFilter") -> int:
        return int((self.bits & other.bits).sum())

    def contains(self, feature_hash: bytes) -> bool:
        return all(self.bits[pos] for pos in self.positions(feature_hash))

    def similarity(self, other: "BloomFilter") -> float:
        """Similarity estimate in [0, 1] between two filters.

        Uses sdhash's approach: compare the observed bit overlap against
        the overlap expected from two independent filters of the observed
        densities, normalised by the maximum possible overlap.
        """
        pa, pb = self.popcount(), other.popcount()
        if pa == 0 or pb == 0:
            return 0.0
        overlap = self.intersect_count(other)
        expected = pa * pb / FILTER_BITS
        max_overlap = min(pa, pb)
        if max_overlap <= expected:
            return 0.0
        score = (overlap - expected) / (max_overlap - expected)
        return max(0.0, min(1.0, score))

    @classmethod
    def from_features(cls, hashes: Iterable[bytes]) -> "BloomFilter":
        filt = cls()
        for feature_hash in hashes:
            filt.add(feature_hash)
        return filt

    @classmethod
    def from_position_rows(cls, rows: np.ndarray) -> "BloomFilter":
        """Build a filter from ``(k, BITS_PER_FEATURE)`` precomputed
        positions (one row per feature) in a single scatter."""
        filt = cls()
        filt.bits[rows.reshape(-1)] = True
        filt.count = rows.shape[0]
        return filt

    def packed(self) -> np.ndarray:
        """The bit array packed to 256 uint8 values (np.packbits order)."""
        return np.packbits(self.bits)
