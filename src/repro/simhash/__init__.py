"""Similarity-preserving hashes.

``sdhash`` is the paper's similarity metric (Roussev's similarity digests);
``ssdeep`` (Kornblum's CTPH) is provided as the cited alternative backend
for ablation experiments.
"""

from .bloom import BITS_PER_FEATURE, FILTER_BITS, MAX_FEATURES, BloomFilter
from .sdhash import (ANCHOR_MASK, MIN_DIGEST_BYTES, WINDOW, SdDigest,
                     compare, compare_bytes, compare_many, digest_many,
                     sdhash)
from .ssdeep import MIN_INPUT, CtphSignature, compare_signatures, ctph

__all__ = [
    "ANCHOR_MASK", "BITS_PER_FEATURE", "BloomFilter", "CtphSignature",
    "FILTER_BITS", "MAX_FEATURES", "MIN_DIGEST_BYTES", "MIN_INPUT",
    "SdDigest", "WINDOW", "compare", "compare_bytes", "compare_many",
    "compare_signatures", "ctph", "digest_many", "sdhash",
]
