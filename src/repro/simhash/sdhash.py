"""sdhash-style similarity digests (Roussev, 2010).

The detector's similarity indicator rests on three properties of sdhash,
all reproduced here:

1. two *homologous* files (sharing substantial byte runs) score high
   (100 "indicating a high likelihood that two files are related"),
2. a file and its ciphertext — or any two unrelated random blobs — score 0
   ("statistically comparable to that of two blobs of random data"),
3. **small files yield no digest** (real sdhash needs a minimum feature
   population; the paper leans on this: CTB-Locker's sub-512-byte victims
   could not be scored, delaying union indication, §V-C).

Algorithm (faithful in shape, simplified in constants — see DESIGN.md):

* candidate 64-byte windows are anchored at **content-defined positions**
  (a cheap rolling hash over the preceding 8 bytes selects ~1/16 of all
  offsets).  Real sdhash evaluates every offset; content anchoring keeps
  the ~16× cost saving of a strided scan while preserving the property
  that matters — *shift invariance*: a byte run shared between two files
  anchors the same windows in both regardless of its offset,
* each candidate's Shannon entropy is computed (vectorised); windows that
  are near-constant (< ``MIN_FEATURE_ENTROPY``) are dropped and only
  local entropy maxima within a popularity neighbourhood are kept,
  mirroring sdhash's popularity rank,
* SHA-1 each selected window into a chain of 2048-bit Bloom filters
  (≤ 160 features each),
* compare digests filter-by-filter; the score is the mean of each filter's
  best match against the other digest, scaled to 0–100.

Every stage past the SHA-1 calls is batched through NumPy: feature
selection uses a sliding-window maximum instead of a per-candidate Python
loop, Bloom bit positions are derived for all features at once, and
:func:`compare` evaluates every filter pair through a packed uint64/uint8
bit-matrix with table-driven popcounts.  The original per-feature /
per-pair implementations are retained as :func:`sdhash_scalar`,
:func:`compare_scalar`, and ``_select_features_scalar``; the golden
equivalence tests (``tests/test_simhash_vectorised.py``) pin the two
paths bit-identical, and ``make bench`` measures the gap.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from .bloom import (FILTER_BITS, MAX_FEATURES, BloomFilter,
                    feature_positions, packed_popcount)

__all__ = ["SdDigest", "sdhash", "compare", "digest_many", "compare_many",
           "StreamingDigestState",
           "MIN_DIGEST_BYTES", "WINDOW", "ANCHOR_MASK", "sdhash_scalar",
           "compare_scalar"]

WINDOW = 64
#: anchor density: offsets where rolling-hash & ANCHOR_MASK == 0 (~1/16)
ANCHOR_MASK = 15
_ANCHOR_WEIGHTS = np.array([1, 3, 5, 7, 11, 13, 17, 19], dtype=np.int64)
#: sdhash refuses to digest tiny inputs; the paper pins the practical
#: threshold at 512 bytes ("sdhash is unable to generate similarity scores
#: for such small files", §V-C — files < 512 B).
MIN_DIGEST_BYTES = 512
MIN_FEATURES = 4
#: windows whose entropy falls below this carry too little structure
#: (long zero runs, padding) and are excluded, as in sdhash's rank table.
MIN_FEATURE_ENTROPY = 0.8
#: popularity neighbourhood: a window must be the entropy maximum of its
#: neighbouring candidates to be selected (ties broken leftmost).
POPULARITY_SPAN = 3


def _as_bytes(data) -> bytes:
    """Copy only non-bytes inputs (memoryview, bytearray)."""
    return data if isinstance(data, bytes) else bytes(data)


class SdDigest:
    """A chained-Bloom-filter similarity digest."""

    __slots__ = ("filters", "n_features", "source_len", "_packed", "_pops")

    def __init__(self, filters: List[BloomFilter], n_features: int,
                 source_len: int) -> None:
        self.filters = filters
        self.n_features = n_features
        self.source_len = source_len
        self._packed: Optional[np.ndarray] = None
        self._pops: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.filters)

    def packed_matrix(self) -> np.ndarray:
        """All filters stacked as an ``(n_filters, 256)`` uint8 bit-matrix
        (np.packbits order), built once and cached — what :func:`compare`
        runs its all-pairs intersections over."""
        if self._packed is None:
            self._packed = np.stack([f.packed() for f in self.filters])
        return self._packed

    def popcounts(self) -> np.ndarray:
        """Per-filter set-bit counts, cached alongside the packed matrix."""
        if self._pops is None:
            self._pops = packed_popcount(self.packed_matrix())
        return self._pops

    def hexdigest(self) -> str:
        """Stable textual form (for logging / golden tests)."""
        h = hashlib.sha1()
        for row in self.packed_matrix():
            h.update(row.tobytes())
        return h.hexdigest()

    # -- checkpoint serialization (JSON-safe, exact) -------------------

    def to_state(self) -> dict:
        return {
            "filters": [{"bits": f.packed().tobytes().hex(),
                         "count": f.count} for f in self.filters],
            "n_features": self.n_features,
            "source_len": self.source_len,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SdDigest":
        filters: List[BloomFilter] = []
        for entry in state["filters"]:
            filt = BloomFilter()
            packed = np.frombuffer(bytes.fromhex(entry["bits"]),
                                   dtype=np.uint8)
            filt.bits = np.unpackbits(packed).astype(bool)[:len(filt.bits)]
            filt.count = int(entry["count"])
            filters.append(filt)
        return cls(filters, int(state["n_features"]),
                   int(state["source_len"]))


#: chunk length for the rolling-hash scan: bounds the int32 working set so
#: multi-megabyte buffers (and batch concatenations) stay cache-resident
#: instead of streaming eight full-length temporaries through DRAM
_ANCHOR_CHUNK = 1 << 18


def _anchor_starts(buf: np.ndarray) -> np.ndarray:
    """Rolling-hash anchor offsets over ``buf``, unfiltered.

    Every intermediate fits int32 exactly (max rolling value is
    ``sum(weights) * 255 = 19380``), so the chunked 32-bit accumulation
    is the same integer arithmetic as the original int64 formulation.
    """
    n = buf.size - 7
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    parts = []
    tmp = None
    for lo in range(0, n, _ANCHOR_CHUNK):
        m = min(n, lo + _ANCHOR_CHUNK) - lo
        values = np.multiply(buf[lo:lo + m], np.int32(_ANCHOR_WEIGHTS[0]),
                             dtype=np.int32)
        if tmp is None or tmp.size < m:
            tmp = np.empty(m, dtype=np.int32)
        for k in range(1, 8):
            np.multiply(buf[lo + k:lo + k + m], np.int32(_ANCHOR_WEIGHTS[k]),
                        dtype=np.int32, out=tmp[:m])
            values += tmp[:m]
        part = np.nonzero((values & ANCHOR_MASK) == 0)[0]
        if part.size:
            parts.append(part + (lo + 8))
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


def _anchor_positions(buf: np.ndarray) -> np.ndarray:
    """Content-defined window start offsets (shift-invariant)."""
    if len(buf) < WINDOW + 8:
        return np.zeros(0, dtype=np.int64)
    # a window starting at offset i is anchored by the context ending at i-1
    starts = _anchor_starts(buf)
    return starts[starts + WINDOW <= len(buf)]


#: term table for window entropies: _ENTROPY_TERMS[c] equals the
#: ``p * log2(p)`` term for a byte count of c out of WINDOW, computed with
#: the same float ops the direct formula uses — looking it up instead of
#: calling log2 on a mostly-zero (n, 256) matrix is what makes feature
#: selection fast, while every summed term stays bit-identical.
_ENTROPY_TERMS = np.zeros(WINDOW + 1, dtype=np.float64)
_counts = np.arange(1, WINDOW + 1, dtype=np.float64)
_ENTROPY_TERMS[1:] = (_counts / WINDOW) * np.log2(_counts / WINDOW)
del _counts


#: row-block size for the per-window histograms: a small block keeps each
#: scatter's working set (block × 256 int64 counts + the term gather) in
#: the L1/L2 caches and every temporary under the allocator's mmap
#: threshold; rows are independent, so blocking cannot change a result.
_ENTROPY_BLOCK = 128


def _window_entropies(windows: np.ndarray) -> np.ndarray:
    """Shannon entropy of each row of an ``(n, WINDOW)`` uint8 array."""
    n = windows.shape[0]
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    block = min(n, _ENTROPY_BLOCK)
    base = np.repeat(np.arange(block, dtype=np.int64), WINDOW) * 256
    idx = np.empty(block * WINDOW, dtype=np.int64)
    terms = np.empty((block, 256), dtype=np.float64)
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        k = hi - lo
        np.add(base[:k * WINDOW], windows[lo:hi].reshape(-1),
               out=idx[:k * WINDOW])
        counts = np.bincount(idx[:k * WINDOW],
                             minlength=k * 256).reshape(k, 256)
        np.take(_ENTROPY_TERMS, counts, mode="clip", out=terms[:k])
        terms[:k].sum(axis=1, out=out[lo:hi])
    # the per-row value is -(sum of terms); negating the finished sums is
    # exact, so results match the direct -_ENTROPY_TERMS[counts].sum() form
    np.negative(out, out=out)
    return out


def _select_feature_windows(data: bytes) -> np.ndarray:
    """The selected 64-byte windows of ``data`` as an ``(k, WINDOW)``
    uint8 array (k may be 0), fully vectorised.

    The popularity rule is a sliding-window maximum: a candidate survives
    when its entropy strictly exceeds every earlier neighbour's (leftmost
    tie wins) and is no lower than any later neighbour's.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    starts = _anchor_positions(buf)
    if starts.size == 0:
        return np.zeros((0, WINDOW), dtype=np.uint8)
    windows = np.lib.stride_tricks.sliding_window_view(buf, WINDOW)[starts]
    entropies = _window_entropies(windows)
    n = entropies.shape[0]
    span = POPULARITY_SPAN
    padded = np.full(n + 2 * span, -np.inf)
    padded[span:span + n] = entropies
    neigh = np.lib.stride_tricks.sliding_window_view(padded, 2 * span + 1)
    left_max = neigh[:, :span].max(axis=1)
    right_max = neigh[:, span:].max(axis=1)      # includes the candidate
    keep = ((entropies >= MIN_FEATURE_ENTROPY)
            & (entropies > left_max)
            & (entropies >= right_max))
    return np.ascontiguousarray(windows[keep])


def _select_features(data: bytes) -> List[bytes]:
    """Pick characteristic 64-byte windows of ``data``."""
    return [w.tobytes() for w in _select_feature_windows(_as_bytes(data))]


def _select_features_scalar(data: bytes) -> List[bytes]:
    """Scalar reference for the popularity-window selection loop.

    Kept verbatim from the pre-vectorisation implementation; the golden
    equivalence tests pin ``_select_features`` against it.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    starts = _anchor_positions(buf)
    if starts.size == 0:
        return []
    windows = np.lib.stride_tricks.sliding_window_view(buf, WINDOW)[starts]
    entropies = _window_entropies(windows)
    n = windows.shape[0]
    eligible = entropies >= MIN_FEATURE_ENTROPY
    features: List[bytes] = []
    for idx in range(n):
        if not eligible[idx]:
            continue
        lo = max(0, idx - POPULARITY_SPAN)
        hi = min(n, idx + POPULARITY_SPAN + 1)
        if entropies[idx] < entropies[lo:hi].max():
            continue
        # leftmost tie wins within the neighbourhood
        if idx - lo > 0 and np.any(entropies[lo:idx] >= entropies[idx]):
            continue
        start = int(starts[idx])
        features.append(bytes(data[start:start + WINDOW]))
    return features


def sdhash(data: bytes) -> Optional[SdDigest]:
    """Digest ``data``; returns None when the input is too small to score."""
    data = _as_bytes(data)
    if len(data) < MIN_DIGEST_BYTES:
        return None
    windows = _select_feature_windows(data)
    n = windows.shape[0]
    if n < MIN_FEATURES:
        return None
    sha1 = hashlib.sha1
    raw = b"".join([sha1(w).digest() for w in windows])
    hashes = np.frombuffer(raw, dtype=np.uint8).reshape(n, 20)
    positions = feature_positions(hashes)
    filters = [BloomFilter.from_position_rows(positions[i:i + MAX_FEATURES])
               for i in range(0, n, MAX_FEATURES)]
    return SdDigest(filters, n, len(data))


def sdhash_scalar(data: bytes) -> Optional[SdDigest]:
    """Scalar reference digest path (per-feature hash + ``BloomFilter.add``
    loop) — for golden equivalence tests and ``make bench`` only."""
    data = bytes(data)
    if len(data) < MIN_DIGEST_BYTES:
        return None
    features = _select_features_scalar(data)
    if len(features) < MIN_FEATURES:
        return None
    filters: List[BloomFilter] = [BloomFilter()]
    for feature in features:
        if filters[-1].full:
            filters.append(BloomFilter())
        filters[-1].add(hashlib.sha1(feature).digest())
    return SdDigest(filters, len(features), len(data))


#: cap on the concatenated byte span one batched pass materialises; larger
#: batches are split into groups so the gathered windows, entropies, and
#: Bloom scatters stay within a bounded memory footprint at corpus scale
_BATCH_SPAN_BYTES = 8 << 20


def _digest_group(blobs: List[bytes]) -> List[Optional[SdDigest]]:
    """One batched pass over blobs that all meet ``MIN_DIGEST_BYTES``.

    The whole feature pipeline — anchor scan, window entropies, popularity
    maxima, and the Bloom bit scatter — runs over the *concatenation* of
    the batch, with per-file boundaries enforced by masking and by -inf
    gaps, so every per-file result is bit-identical to :func:`sdhash`.
    """
    F = len(blobs)
    out: List[Optional[SdDigest]] = [None] * F
    lens = np.array([len(b) for b in blobs], dtype=np.int64)
    offsets = np.zeros(F + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    cat = np.frombuffer(b"".join(blobs), dtype=np.uint8)
    starts = _anchor_starts(cat)
    # drop anchors whose window would run past the concatenation before
    # locating files: searchsorted on such a start can land out of range
    starts = starts[starts + WINDOW <= offsets[-1]]
    if starts.size == 0:
        return out
    file_of = np.searchsorted(offsets, starts, side="right") - 1
    # an anchor only counts when its 8-byte context and 64-byte window both
    # lie inside a single file — exactly the per-file anchor rule
    ok = ((starts - 8 >= offsets[file_of])
          & (starts + WINDOW <= offsets[file_of + 1]))
    starts = starts[ok]
    file_of = file_of[ok]
    total = starts.size
    if total == 0:
        return out
    windows = np.lib.stride_tricks.sliding_window_view(cat, WINDOW)[starts]
    entropies = _window_entropies(windows)
    # popularity maxima per file: lay every file's candidates on one line
    # with a -inf gap of POPULARITY_SPAN between neighbouring files, so a
    # sliding maximum never sees across a file boundary
    span = POPULARITY_SPAN
    counts_per_file = np.bincount(file_of, minlength=F)
    first_index = np.zeros(F + 1, dtype=np.int64)
    np.cumsum(counts_per_file, out=first_index[1:])
    seg_starts = np.zeros(F, dtype=np.int64)
    np.cumsum(counts_per_file[:-1] + span, out=seg_starts[1:])
    seg_starts += span
    pos = seg_starts[file_of] + (np.arange(total) - first_index[file_of])
    padded = np.full(int(pos[-1]) + span + 1, -np.inf)
    padded[pos] = entropies
    # q[j] = max(padded[j:j+span]) via span-1 shifted maxima; max is
    # order-insensitive, so this equals the neighbourhood max exactly
    q = padded[:padded.size - (span - 1)].copy()
    for shift in range(1, span):
        np.maximum(q, padded[shift:padded.size - (span - 1) + shift], out=q)
    # right_max in the per-file path includes the candidate itself, but
    # e >= max(e, rest) reduces to e >= max(rest), so q[pos + 1] suffices
    keep = ((entropies >= MIN_FEATURE_ENTROPY)
            & (entropies > q[pos - span])
            & (entropies >= q[pos + 1]))
    sel = np.ascontiguousarray(windows[keep])
    feat_counts = np.bincount(file_of[keep], minlength=F)
    n_sel = sel.shape[0]
    if n_sel == 0:
        return out
    sha1 = hashlib.sha1
    raw = b"".join([sha1(w).digest() for w in sel])
    hashes = np.frombuffer(raw, dtype=np.uint8).reshape(n_sel, 20)
    positions = feature_positions(hashes)
    bounds = np.zeros(F + 1, dtype=np.int64)
    np.cumsum(feat_counts, out=bounds[1:])
    # batched Bloom assembly: every filter of every file is one row of a
    # single boolean matrix filled by one flat scatter
    n_filters_per_file = (feat_counts + MAX_FEATURES - 1) // MAX_FEATURES
    filt_base = np.zeros(F + 1, dtype=np.int64)
    np.cumsum(n_filters_per_file, out=filt_base[1:])
    local = np.arange(n_sel) - bounds[:-1].repeat(feat_counts)
    filt_of_feature = (filt_base[:-1].repeat(feat_counts)
                       + local // MAX_FEATURES)
    nf = int(filt_base[-1])
    bits = np.zeros((nf, FILTER_BITS), dtype=bool)
    flat = (filt_of_feature[:, None] * FILTER_BITS + positions).reshape(-1)
    bits.reshape(-1)[flat] = True
    counts_per_filter = np.bincount(filt_of_feature, minlength=nf)
    for k, blob in enumerate(blobs):
        cnt = int(feat_counts[k])
        if cnt < MIN_FEATURES:
            continue
        filters: List[BloomFilter] = []
        for j in range(int(filt_base[k]), int(filt_base[k + 1])):
            filt = BloomFilter.__new__(BloomFilter)
            filt.bits = bits[j]
            filt.count = int(counts_per_filter[j])
            filters.append(filt)
        out[k] = SdDigest(filters, cnt, len(blob))
    return out


def digest_many(contents) -> List[Optional[SdDigest]]:
    """Digest a batch of buffers in one vectorised pass per size group.

    Returns one entry per input, in order: ``None`` exactly where
    :func:`sdhash` returns None (input under ``MIN_DIGEST_BYTES`` or too
    few selected features), otherwise an :class:`SdDigest` bit-identical
    to ``sdhash(content)`` — same filters, feature count, and hexdigest.
    """
    results: List[Optional[SdDigest]] = [None] * len(contents)
    pending_idx: List[int] = []
    pending: List[bytes] = []
    pending_bytes = 0
    for i, content in enumerate(contents):
        blob = _as_bytes(content)
        if len(blob) < MIN_DIGEST_BYTES:
            continue
        if pending and pending_bytes + len(blob) > _BATCH_SPAN_BYTES:
            for j, dig in zip(pending_idx, _digest_group(pending)):
                results[j] = dig
            pending_idx, pending, pending_bytes = [], [], 0
        pending_idx.append(i)
        pending.append(blob)
        pending_bytes += len(blob)
    if pending:
        for j, dig in zip(pending_idx, _digest_group(pending)):
            results[j] = dig
    return results


#: bytes of context a new window can reach back into: the latest byte a
#: future window may need is ``total - (WINDOW - 1) - 8`` (its start can be
#: as early as ``total - WINDOW + 1`` and its anchor context spans the 8
#: preceding bytes), so a 71-byte tail always suffices.
_STREAM_TAIL = WINDOW + 7


class StreamingDigestState:
    """Incremental :func:`sdhash` over an append-only byte stream.

    Feed write chunks with :meth:`update` as they land; :meth:`finalize`
    returns the digest in O(tail) — it never re-reads the stream.  The
    result is **bit-identical** to ``sdhash(whole_buffer)`` for every
    chunking of the same bytes (pinned by ``tests/test_streaming_digest.py``):

    * anchors: a candidate window starting at absolute offset ``S`` is
      discovered in the chunk where ``S + WINDOW`` first fits the stream;
      its rolling-hash context (bytes ``S-8 .. S-1``) always lies inside
      the carried 71-byte tail, so the anchor decision sees exactly the
      bytes the whole-buffer scan sees,
    * entropies: ``_window_entropies`` is row-independent, so per-chunk
      calls produce the same float64 values as one whole-buffer call,
    * popularity: candidates arrive in globally ascending ``S`` order
      (per-chunk intervals ``(T_old-WINDOW, T_new-WINDOW]`` are disjoint
      and increasing); the rule needs ``POPULARITY_SPAN`` neighbours on
      each side, so the last ``span`` candidates stay pending and the
      ``span`` most recent decided entropies are carried as left context
      (``-inf`` initially and as final right padding — exactly the
      whole-buffer padding),
    * filters: features emit in order, chaining a Bloom filter per
      ``MAX_FEATURES`` exactly as :func:`sdhash` slices them.

    Streams smaller than ``min_stream_bytes`` stay in *buffered* mode —
    chunk refs only, no numpy work per write — and are replayed through
    the streaming pipeline the moment the threshold is crossed (or at
    :meth:`finalize`).  Memory is O(1) in stream length either way once
    streaming: a 71-byte tail, ≤ ``span`` pending windows, <160 pending
    feature positions, plus the finished filters (256 B / 160 features).

    A running ``blake2b-16`` mirrors :class:`~repro.core.filestate.DigestCache`
    keys so the close path gets its cache key in O(1) too; it is dropped
    by :meth:`to_state` (hashers do not serialise), so restored states
    return ``None`` from :meth:`key`.
    """

    __slots__ = ("total", "min_stream_bytes", "consumed", "chunks_consumed",
                 "filters", "n_features",
                 "_streamed", "_finalized", "_chunks", "_chunk_bytes",
                 "_tail", "_left", "_pend_ent", "_pend_win",
                 "_pos_rows", "_pos_count", "_hasher")

    def __init__(self, min_stream_bytes: int = 0) -> None:
        #: bytes received so far (both modes)
        self.total = 0
        self.min_stream_bytes = min_stream_bytes
        #: True once finalize() actually produced the digest incrementally
        self.consumed = False
        self.chunks_consumed = 0
        self.filters: List[BloomFilter] = []
        self.n_features = 0
        self._streamed = 0
        self._finalized = False
        self._chunks: Optional[List[bytes]] = [] if min_stream_bytes else None
        self._chunk_bytes = 0
        self._tail = b""
        self._left = np.full(POPULARITY_SPAN, -np.inf)
        self._pend_ent = np.zeros(0, dtype=np.float64)
        self._pend_win = np.zeros((0, WINDOW), dtype=np.uint8)
        self._pos_rows: List[np.ndarray] = []
        self._pos_count = 0
        self._hasher = hashlib.blake2b(digest_size=16)

    @property
    def streaming(self) -> bool:
        """True once past buffered mode (numpy work happens per chunk)."""
        return self._chunks is None

    def update(self, chunk) -> None:
        """Consume the next appended chunk (must be the bytes written at
        offset ``self.total`` — the caller enforces sequentiality)."""
        chunk = _as_bytes(chunk)
        if not chunk:
            return
        if self._hasher is not None:
            self._hasher.update(chunk)
        self.total += len(chunk)
        if self._chunks is not None:
            self._chunks.append(chunk)
            self._chunk_bytes += len(chunk)
            if self._chunk_bytes >= self.min_stream_bytes:
                self._begin_streaming()
            return
        self._consume(chunk)

    def key(self) -> Optional[bytes]:
        """The :class:`DigestCache` key of the bytes seen so far, or
        ``None`` on a checkpoint-restored state (hasher not serialisable)."""
        if self._hasher is None:
            return None
        return self._hasher.copy().digest()

    def finalize(self) -> Optional[SdDigest]:
        """Close the stream and return the digest (None exactly where
        ``sdhash`` returns None).  O(tail); callable once."""
        if self._finalized:
            raise RuntimeError("StreamingDigestState already finalized")
        if self._chunks is not None:
            self._begin_streaming()
        self._finalized = True
        self.consumed = True
        # decide the held-back candidates against -inf right padding,
        # mirroring the whole-buffer padded sliding maximum exactly
        n = self._pend_ent.size
        if n:
            span = POPULARITY_SPAN
            full = np.concatenate([self._left, self._pend_ent,
                                   np.full(span, -np.inf)])
            neigh = np.lib.stride_tricks.sliding_window_view(
                full, 2 * span + 1)
            cand = self._pend_ent
            keep = ((cand >= MIN_FEATURE_ENTROPY)
                    & (cand > neigh[:, :span].max(axis=1))
                    & (cand >= neigh[:, span:].max(axis=1)))
            if keep.any():
                self._emit(self._pend_win[keep])
            self._pend_ent = np.zeros(0, dtype=np.float64)
            self._pend_win = np.zeros((0, WINDOW), dtype=np.uint8)
        if self.total < MIN_DIGEST_BYTES or self.n_features < MIN_FEATURES:
            return None
        if self._pos_count:
            stacked = (self._pos_rows[0] if len(self._pos_rows) == 1
                       else np.concatenate(self._pos_rows))
            self.filters.append(BloomFilter.from_position_rows(stacked))
            self._pos_rows, self._pos_count = [], 0
        return SdDigest(list(self.filters), self.n_features, self.total)

    # -- internal pipeline ---------------------------------------------

    def _begin_streaming(self) -> None:
        chunks, self._chunks, self._chunk_bytes = self._chunks, None, 0
        for chunk in chunks:
            self._consume(chunk)

    def _consume(self, chunk: bytes) -> None:
        t_old = self._streamed
        combined = self._tail + chunk
        t_new = t_old + len(chunk)
        base = t_new - len(combined)
        buf = np.frombuffer(combined, dtype=np.uint8)
        starts = _anchor_starts(buf)
        if starts.size:
            # new windows only: those whose end first fits this chunk
            # (earlier ones were emitted by the chunk that completed them)
            keep = ((starts + WINDOW <= len(combined))
                    & (starts + base + WINDOW > t_old))
            starts = starts[keep]
            if starts.size:
                windows = np.lib.stride_tricks.sliding_window_view(
                    buf, WINDOW)[starts]
                self._advance(windows, _window_entropies(windows))
        self._streamed = t_new
        self._tail = combined[max(0, len(combined) - _STREAM_TAIL):]
        self.chunks_consumed += 1

    def _advance(self, windows: np.ndarray, ent: np.ndarray) -> None:
        if self._pend_ent.size:
            ent = np.concatenate([self._pend_ent, ent])
            windows = np.vstack([self._pend_win, windows])
        span = POPULARITY_SPAN
        decide = ent.size - span
        if decide <= 0:
            self._pend_ent = ent
            self._pend_win = np.ascontiguousarray(windows)
            return
        full = np.concatenate([self._left, ent])
        neigh = np.lib.stride_tricks.sliding_window_view(full, 2 * span + 1)
        cand = ent[:decide]
        keep = ((cand >= MIN_FEATURE_ENTROPY)
                & (cand > neigh[:, :span].max(axis=1))
                & (cand >= neigh[:, span:].max(axis=1)))
        self._left = full[decide:decide + span].copy()
        self._pend_ent = ent[decide:].copy()
        self._pend_win = windows[decide:].copy()
        if keep.any():
            self._emit(windows[:decide][keep])

    def _emit(self, windows: np.ndarray) -> None:
        sha1 = hashlib.sha1
        raw = b"".join([sha1(w).digest() for w in windows])
        hashes = np.frombuffer(raw, dtype=np.uint8).reshape(-1, 20)
        positions = feature_positions(hashes)
        self._pos_rows.append(positions)
        self._pos_count += positions.shape[0]
        self.n_features += positions.shape[0]
        while self._pos_count >= MAX_FEATURES:
            stacked = (self._pos_rows[0] if len(self._pos_rows) == 1
                       else np.concatenate(self._pos_rows))
            self.filters.append(
                BloomFilter.from_position_rows(stacked[:MAX_FEATURES]))
            rest = stacked[MAX_FEATURES:]
            self._pos_rows = [rest] if rest.shape[0] else []
            self._pos_count = int(rest.shape[0])

    # -- checkpoint serialization (JSON-safe, exact) -------------------

    def to_state(self) -> dict:
        """JSON-safe snapshot of the in-flight stream.  Restored states
        continue bit-identically; only the cache-key hasher is dropped."""
        state = {
            "min_stream_bytes": self.min_stream_bytes,
            "total": self.total,
            "chunks_consumed": self.chunks_consumed,
        }
        if self._chunks is not None:
            state["mode"] = "buffered"
            state["chunks"] = [c.hex() for c in self._chunks]
            return state
        state["mode"] = "streaming"
        state["tail"] = self._tail.hex()
        # -inf is not JSON-encodable; None is the sentinel.  Finite float64
        # round-trips exactly through repr/JSON.
        state["left"] = [None if e == -np.inf else float(e)
                         for e in self._left]
        state["pend_ent"] = [float(e) for e in self._pend_ent]
        state["pend_win"] = self._pend_win.tobytes().hex()
        state["positions"] = [rows.tolist() for rows in self._pos_rows]
        state["filters"] = [{"bits": f.packed().tobytes().hex(),
                             "count": f.count} for f in self.filters]
        state["n_features"] = self.n_features
        return state

    @classmethod
    def from_state(cls, state: dict) -> "StreamingDigestState":
        st = cls(min_stream_bytes=int(state["min_stream_bytes"]))
        st.total = int(state["total"])
        st.chunks_consumed = int(state["chunks_consumed"])
        st._hasher = None
        if state["mode"] == "buffered":
            st._chunks = [bytes.fromhex(c) for c in state["chunks"]]
            st._chunk_bytes = sum(len(c) for c in st._chunks)
            return st
        st._chunks = None
        st._streamed = st.total
        st._tail = bytes.fromhex(state["tail"])
        st._left = np.array([-np.inf if e is None else e
                             for e in state["left"]], dtype=np.float64)
        st._pend_ent = np.array(state["pend_ent"], dtype=np.float64)
        pend = np.frombuffer(bytes.fromhex(state["pend_win"]),
                             dtype=np.uint8)
        st._pend_win = pend.reshape(-1, WINDOW).copy()
        st._pos_rows = [np.array(rows, dtype=np.int64)
                        for rows in state["positions"]]
        st._pos_count = sum(r.shape[0] for r in st._pos_rows)
        for entry in state["filters"]:
            filt = BloomFilter()
            packed = np.frombuffer(bytes.fromhex(entry["bits"]),
                                   dtype=np.uint8)
            filt.bits = np.unpackbits(packed).astype(bool)[:len(filt.bits)]
            filt.count = int(entry["count"])
            st.filters.append(filt)
        st.n_features = int(state["n_features"])
        return st


def _ordered(a: SdDigest, b: SdDigest) -> tuple:
    """The (small, large) pair, independent of argument order.

    The score averages best-matches over the *smaller* digest's filters.
    When both digests hold the same number of filters that choice is
    ambiguous, so ties break on digest content (feature count, then
    hexdigest) rather than argument position — making ``compare``
    symmetric: ``compare(a, b) == compare(b, a)``.
    """
    if len(a) != len(b):
        return (a, b) if len(a) < len(b) else (b, a)
    if a.n_features != b.n_features:
        return (a, b) if a.n_features < b.n_features else (b, a)
    return (a, b) if a.hexdigest() <= b.hexdigest() else (b, a)


def compare(a: Optional[SdDigest], b: Optional[SdDigest]) -> Optional[int]:
    """sdhash confidence score 0–100; None when either digest is missing.

    All filter pairs are evaluated in one batched pass over the two
    digests' packed bit-matrices; the arithmetic mirrors
    :meth:`BloomFilter.similarity` operation for operation, so scores are
    bit-identical to :func:`compare_scalar`.
    """
    if a is None or b is None:
        return None
    small, large = _ordered(a, b)
    inter = packed_popcount(small.packed_matrix()[:, None, :]
                            & large.packed_matrix()[None, :, :])
    pa = small.popcounts()[:, None]
    pb = large.popcounts()[None, :]
    expected = pa * pb / FILTER_BITS
    max_overlap = np.minimum(pa, pb)
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = (inter - expected) / (max_overlap - expected)
        sim = np.where((pa == 0) | (pb == 0) | (max_overlap <= expected),
                       0.0, np.clip(raw, 0.0, 1.0))
    scores = sim.max(axis=1).tolist()
    return int(round(100 * sum(scores) / len(scores)))


def compare_many(pairs) -> List[Optional[int]]:
    """Score a batch of digest pairs, bit-identical to :func:`compare`.

    ``pairs`` is a sequence of ``(a, b)`` digests; either element may be
    None, which yields None for that pair.  Pairs whose ordered digests
    share a (filters, filters) shape are stacked and scored in a single
    popcount pass — one numpy dispatch amortised over the whole group
    instead of one per pair.  The per-pair arithmetic, including the final
    sequential Python sum over filter scores, mirrors :func:`compare`
    operation for operation.
    """
    results: List[Optional[int]] = [None] * len(pairs)
    groups: dict = {}
    for p, (a, b) in enumerate(pairs):
        if a is None or b is None:
            continue
        small, large = _ordered(a, b)
        groups.setdefault((len(small), len(large)), []).append(
            (p, small, large))
    for members in groups.values():
        smalls = np.stack([s.packed_matrix() for _, s, _ in members])
        larges = np.stack([l.packed_matrix() for _, _, l in members])
        inter = packed_popcount(smalls[:, :, None, :]
                                & larges[:, None, :, :])
        pa = np.stack([s.popcounts() for _, s, _ in members])[:, :, None]
        pb = np.stack([l.popcounts() for _, _, l in members])[:, None, :]
        expected = pa * pb / FILTER_BITS
        max_overlap = np.minimum(pa, pb)
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = (inter - expected) / (max_overlap - expected)
            sim = np.where((pa == 0) | (pb == 0) | (max_overlap <= expected),
                           0.0, np.clip(raw, 0.0, 1.0))
        best = sim.max(axis=2)
        for row, (p, _, _) in enumerate(members):
            scores = best[row].tolist()
            results[p] = int(round(100 * sum(scores) / len(scores)))
    return results


def compare_scalar(a: Optional[SdDigest],
                   b: Optional[SdDigest]) -> Optional[int]:
    """Scalar reference comparison (per-pair ``BloomFilter.similarity``
    loop) — for golden equivalence tests and ``make bench`` only."""
    if a is None or b is None:
        return None
    small, large = _ordered(a, b)
    scores = []
    for filt in small.filters:
        best = max(filt.similarity(other) for other in large.filters)
        scores.append(best)
    return int(round(100 * sum(scores) / len(scores)))


def compare_bytes(x: bytes, y: bytes) -> Optional[int]:
    """Convenience one-shot comparison of two buffers."""
    return compare(sdhash(x), sdhash(y))
