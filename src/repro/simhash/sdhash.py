"""sdhash-style similarity digests (Roussev, 2010).

The detector's similarity indicator rests on three properties of sdhash,
all reproduced here:

1. two *homologous* files (sharing substantial byte runs) score high
   (100 "indicating a high likelihood that two files are related"),
2. a file and its ciphertext — or any two unrelated random blobs — score 0
   ("statistically comparable to that of two blobs of random data"),
3. **small files yield no digest** (real sdhash needs a minimum feature
   population; the paper leans on this: CTB-Locker's sub-512-byte victims
   could not be scored, delaying union indication, §V-C).

Algorithm (faithful in shape, simplified in constants — see DESIGN.md):

* candidate 64-byte windows are anchored at **content-defined positions**
  (a cheap rolling hash over the preceding 8 bytes selects ~1/16 of all
  offsets).  Real sdhash evaluates every offset; content anchoring keeps
  the ~16× cost saving of a strided scan while preserving the property
  that matters — *shift invariance*: a byte run shared between two files
  anchors the same windows in both regardless of its offset,
* each candidate's Shannon entropy is computed (vectorised); windows that
  are near-constant (< ``MIN_FEATURE_ENTROPY``) are dropped and only
  local entropy maxima within a popularity neighbourhood are kept,
  mirroring sdhash's popularity rank,
* SHA-1 each selected window into a chain of 2048-bit Bloom filters
  (≤ 160 features each),
* compare digests filter-by-filter; the score is the mean of each filter's
  best match against the other digest, scaled to 0–100.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from .bloom import MAX_FEATURES, BloomFilter

__all__ = ["SdDigest", "sdhash", "compare", "MIN_DIGEST_BYTES",
           "WINDOW", "ANCHOR_MASK"]

WINDOW = 64
#: anchor density: offsets where rolling-hash & ANCHOR_MASK == 0 (~1/16)
ANCHOR_MASK = 15
_ANCHOR_WEIGHTS = np.array([1, 3, 5, 7, 11, 13, 17, 19], dtype=np.int64)
#: sdhash refuses to digest tiny inputs; the paper pins the practical
#: threshold at 512 bytes ("sdhash is unable to generate similarity scores
#: for such small files", §V-C — files < 512 B).
MIN_DIGEST_BYTES = 512
MIN_FEATURES = 4
#: windows whose entropy falls below this carry too little structure
#: (long zero runs, padding) and are excluded, as in sdhash's rank table.
MIN_FEATURE_ENTROPY = 0.8
#: popularity neighbourhood: a window must be the entropy maximum of its
#: neighbouring candidates to be selected (ties broken leftmost).
POPULARITY_SPAN = 3


class SdDigest:
    """A chained-Bloom-filter similarity digest."""

    __slots__ = ("filters", "n_features", "source_len")

    def __init__(self, filters: List[BloomFilter], n_features: int,
                 source_len: int) -> None:
        self.filters = filters
        self.n_features = n_features
        self.source_len = source_len

    def __len__(self) -> int:
        return len(self.filters)

    def hexdigest(self) -> str:
        """Stable textual form (for logging / golden tests)."""
        h = hashlib.sha1()
        for filt in self.filters:
            h.update(np.packbits(filt.bits).tobytes())
        return h.hexdigest()

    # -- checkpoint serialization (JSON-safe, exact) -------------------

    def to_state(self) -> dict:
        return {
            "filters": [{"bits": np.packbits(f.bits).tobytes().hex(),
                         "count": f.count} for f in self.filters],
            "n_features": self.n_features,
            "source_len": self.source_len,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SdDigest":
        filters: List[BloomFilter] = []
        for entry in state["filters"]:
            filt = BloomFilter()
            packed = np.frombuffer(bytes.fromhex(entry["bits"]),
                                   dtype=np.uint8)
            filt.bits = np.unpackbits(packed).astype(bool)[:len(filt.bits)]
            filt.count = int(entry["count"])
            filters.append(filt)
        return cls(filters, int(state["n_features"]),
                   int(state["source_len"]))


def _anchor_positions(buf: np.ndarray) -> np.ndarray:
    """Content-defined window start offsets (shift-invariant)."""
    if len(buf) < WINDOW + 8:
        return np.zeros(0, dtype=np.int64)
    # rolling value over each 8-byte context, via correlation with weights
    contexts = np.lib.stride_tricks.sliding_window_view(buf, 8).astype(np.int64)
    values = contexts @ _ANCHOR_WEIGHTS
    # a window starting at offset i is anchored by the context ending at i-1
    starts = np.nonzero((values & ANCHOR_MASK) == 0)[0] + 8
    return starts[starts + WINDOW <= len(buf)]


def _select_features(data: bytes) -> List[bytes]:
    """Pick characteristic 64-byte windows of ``data``."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    starts = _anchor_positions(buf)
    if starts.size == 0:
        return []
    windows = np.lib.stride_tricks.sliding_window_view(buf, WINDOW)[starts]
    n = windows.shape[0]
    rows = np.repeat(np.arange(n, dtype=np.int64), WINDOW)
    counts = np.bincount(rows * 256 + windows.ravel().astype(np.int64),
                         minlength=n * 256).reshape(n, 256)
    probs = counts / WINDOW
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    entropies = -terms.sum(axis=1)
    eligible = entropies >= MIN_FEATURE_ENTROPY
    features: List[bytes] = []
    for idx in range(n):
        if not eligible[idx]:
            continue
        lo = max(0, idx - POPULARITY_SPAN)
        hi = min(n, idx + POPULARITY_SPAN + 1)
        if entropies[idx] < entropies[lo:hi].max():
            continue
        # leftmost tie wins within the neighbourhood
        if idx - lo > 0 and np.any(entropies[lo:idx] >= entropies[idx]):
            continue
        start = int(starts[idx])
        features.append(bytes(data[start:start + WINDOW]))
    return features


def sdhash(data: bytes) -> Optional[SdDigest]:
    """Digest ``data``; returns None when the input is too small to score."""
    data = bytes(data)
    if len(data) < MIN_DIGEST_BYTES:
        return None
    features = _select_features(data)
    if len(features) < MIN_FEATURES:
        return None
    filters: List[BloomFilter] = [BloomFilter()]
    for feature in features:
        if filters[-1].full:
            filters.append(BloomFilter())
        filters[-1].add(hashlib.sha1(feature).digest())
    return SdDigest(filters, len(features), len(data))


def compare(a: Optional[SdDigest], b: Optional[SdDigest]) -> Optional[int]:
    """sdhash confidence score 0–100; None when either digest is missing."""
    if a is None or b is None:
        return None
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    scores = []
    for filt in small.filters:
        best = max(filt.similarity(other) for other in large.filters)
        scores.append(best)
    return int(round(100 * sum(scores) / len(scores)))


def compare_bytes(x: bytes, y: bytes) -> Optional[int]:
    """Convenience one-shot comparison of two buffers."""
    return compare(sdhash(x), sdhash(y))
