"""Single-sample execution protocol (§V-A, one VM revert cycle).

For each sample the paper reverted the guest to a snapshot, ran the
sample until detection or timeout, then verified every document's SHA-256.
:func:`run_sample` reproduces one such cycle: fresh CryptoDrop engine,
run, damage assessment, revert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..core.config import CryptoDropConfig
from ..core.detection import Detection
from ..core.monitor import CryptoDropMonitor
from ..fs.events import OpKind
from ..fs.paths import WinPath
from ..fs.recorder import OperationRecorder
from ..perfstats import collect
from ..telemetry.timeline import indicator_totals
from .machine import RunOutcome, VirtualMachine

__all__ = ["BenignResult", "SampleResult", "errored_result", "run_benign",
           "run_sample"]


@dataclass
class SampleResult:
    """Everything the experiments need from one sample run."""

    sample_name: str
    family: str
    behavior_class: str
    seed: int
    detected: bool
    suspended: bool
    files_lost: int
    files_modified: int
    files_missing: int
    new_files: int
    union_fired: bool
    score: float
    threshold: float
    flags: Set[str] = field(default_factory=set)
    sim_seconds: float = 0.0
    error: Optional[str] = None
    completed: bool = False
    inert: bool = False
    touched_dirs: Set[WinPath] = field(default_factory=set)
    extensions_accessed: Set[str] = field(default_factory=set)
    notes_written: int = 0
    files_attacked: int = 0
    disposal: str = ""
    traversal: str = ""
    cipher: str = ""
    #: total reputation points per indicator (entropy/type_change/...)
    indicator_points: dict = field(default_factory=dict)
    #: per-sample engine perf counters (repro.perfstats dict); transient —
    #: not journalled, excluded from equality so journal round trips stay
    #: exact
    perf: Optional[dict] = field(default=None, repr=False, compare=False)
    #: per-sample telemetry snapshot (``TelemetrySession.export()``:
    #: ring events + metric state); None unless the run's config enabled
    #: telemetry.  Transient like :attr:`perf` — not journalled, excluded
    #: from equality.
    telemetry: Optional[dict] = field(default=None, repr=False,
                                      compare=False)

    @property
    def is_working_detection(self) -> bool:
        return self.detected and not self.inert


def errored_result(profile, error: str) -> SampleResult:
    """A placeholder result for a sample whose run itself failed.

    Campaigns record these instead of aborting the sweep: the sample is
    visibly errored (``error`` set, ``completed`` False) rather than
    silently missing from the aggregate.
    """
    return SampleResult(
        sample_name=profile.sample_name,
        family=profile.family,
        behavior_class=profile.behavior_class,
        seed=profile.seed,
        detected=False, suspended=False, files_lost=0, files_modified=0,
        files_missing=0, new_files=0, union_fired=False, score=0.0,
        threshold=0.0, error=error, completed=False,
        inert=profile.inert_reason is not None,
        disposal=profile.class_c_disposal,
        traversal=profile.traversal,
        cipher=profile.cipher_kind,
    )


def run_sample(machine: VirtualMachine, sample,
               config: Optional[CryptoDropConfig] = None,
               record_ops: bool = False) -> SampleResult:
    """One revert-run-assess cycle with a fresh CryptoDrop instance.

    Workload exceptions are absorbed by ``machine.run_program``; anything
    unexpected that escapes the run/assess cycle itself (a harness bug, a
    fault-layer surprise) is converted into an errored result rather than
    propagated, so one bad sample cannot abort a campaign.  The machine
    is always reverted.
    """
    if machine.baseline is None:
        machine.snapshot()
    monitor = CryptoDropMonitor(machine.vfs, config,
                                baseline_store=machine.baseline_store)
    recorder = OperationRecorder(
        kinds={OpKind.READ, OpKind.WRITE, OpKind.OPEN,
               OpKind.RENAME, OpKind.DELETE}) if record_ops else None
    monitor.attach()
    if recorder is not None:
        machine.vfs.filters.attach(recorder)
    try:
        return _run_sample_attached(machine, sample, monitor, recorder)
    except Exception as exc:  # noqa: BLE001 - campaign survival
        return errored_result(sample.profile,
                              f"{type(exc).__name__}: {exc}")
    finally:
        if recorder is not None:
            machine.vfs.filters.detach(recorder)
        monitor.detach()
        machine.revert()


def _run_sample_attached(machine: VirtualMachine, sample,
                         monitor: CryptoDropMonitor,
                         recorder: Optional[OperationRecorder]) -> SampleResult:
    outcome: RunOutcome = machine.run_program(sample)
    damage = machine.assess()
    detections: List[Detection] = list(monitor.detections)
    detection = detections[0] if detections else None
    row = monitor.engine.row_of(outcome.pid)
    profile = sample.profile
    in_docs = machine.docs_root
    touched = set()
    exts = set()
    if recorder is not None:
        touched = {d for d in recorder.touched_directories(None)
                   if d.is_within(in_docs)}
        # victim formats only: OPEN/READ hit pre-existing files,
        # while the sample's own drops (notes, ciphertext) arrive via
        # CREATE and are excluded
        exts = {e for e in recorder.accessed_extensions(
                    None, kinds=(OpKind.READ, OpKind.OPEN))
                if e}
    result = SampleResult(
        sample_name=profile.sample_name,
        family=profile.family,
        behavior_class=profile.behavior_class,
        seed=profile.seed,
        detected=detection is not None,
        suspended=outcome.suspended,
        files_lost=damage.files_lost,
        files_modified=len(damage.modified),
        files_missing=len(damage.missing),
        new_files=len(damage.new_files),
        union_fired=row.union_fired,
        score=row.score,
        threshold=row.threshold,
        flags=set(row.flags),
        sim_seconds=outcome.sim_seconds,
        error=outcome.error,
        completed=outcome.completed,
        inert=profile.inert_reason is not None,
        touched_dirs=touched,
        extensions_accessed=exts,
        notes_written=getattr(sample, "notes_written", 0),
        files_attacked=len(getattr(sample, "files_attacked", ())),
        disposal=profile.class_c_disposal,
        traversal=profile.traversal,
        cipher=profile.cipher_kind,
        indicator_points=indicator_totals(row.history),
    )
    result.perf = collect(monitor).as_dict()
    if detection is not None:
        detection.files_lost = damage.files_lost
    if monitor.telemetry is not None:
        # damage is only measurable post-assessment, so the detection
        # latency histogram is fed here, not at the suspension emit point
        if detection is not None:
            monitor.telemetry.observe_files_lost(damage.files_lost)
        result.telemetry = monitor.telemetry_export()
    return result


@dataclass
class BenignResult:
    """Outcome of one benign-application run (§V-F)."""

    app_name: str
    final_score: float
    detected: bool
    suspended: bool
    union_fired: bool
    flags: Set[str] = field(default_factory=set)
    completed: bool = False
    error: Optional[str] = None
    #: journalled (timestamp_us, cumulative score, indicator) triples for
    #: threshold sweeps; legacy 2-tuples without the indicator still work
    trajectory: List[tuple] = field(default_factory=list)
    #: the union threshold the run was recorded under (None = union never
    #: considered, e.g. a no-union ablation)
    union_threshold: Optional[float] = None

    def score_at_threshold(self, threshold: float,
                           union_threshold: Optional[float] = None) -> bool:
        """Would this run have been flagged at a given non-union threshold?

        Union indication lowers a process's effective threshold the moment
        all three primary flags are present (§V-B2), so the sweep must
        honour any union crossing recorded in the trajectory: after a
        ``union`` event the run is flagged once the score reaches
        ``min(threshold, union_threshold)``, not just ``threshold``.
        """
        if union_threshold is None:
            union_threshold = self.union_threshold
        effective = threshold
        for entry in self.trajectory:
            score = entry[1]
            indicator = entry[2] if len(entry) > 2 else ""
            if indicator == "union" and union_threshold is not None:
                effective = min(effective, union_threshold)
            if score >= effective:
                return True
        return False


def run_benign(machine: VirtualMachine, app,
               config: Optional[CryptoDropConfig] = None) -> BenignResult:
    """One benign workload under a fresh CryptoDrop, then revert.

    The alert policy still suspends on detection (the paper's user is
    asked either way); the result records whether that happened.

    The monitor attaches *before* ``app.prepare`` runs: preparation plants
    assets through the event-free ``peek_*`` accessors, so the detector
    sees nothing, but the ordering guarantees a prepare-time failure is
    caught with the monitor detached cleanly and reported as an errored
    result instead of killing the suite.
    """
    if machine.baseline is None:
        machine.snapshot()
    monitor = CryptoDropMonitor(machine.vfs, config)
    monitor.attach()
    try:
        app.prepare(machine)
        outcome = machine.run_program(app, seed=getattr(app, "seed", 0))
        row = monitor.engine.row_of(outcome.pid)
        return BenignResult(
            app_name=app.name,
            final_score=row.score,
            detected=bool(monitor.detections),
            suspended=outcome.suspended,
            union_fired=row.union_fired,
            flags=set(row.flags),
            completed=outcome.completed,
            error=outcome.error,
            trajectory=[(e.timestamp_us, e.score_after, e.indicator)
                        for e in row.history],
            union_threshold=(monitor.config.union_threshold
                             if monitor.config.enable_union else None),
        )
    except Exception as exc:  # noqa: BLE001 - suite survival
        return BenignResult(
            app_name=getattr(app, "name", repr(app)), final_score=0.0,
            detected=False, suspended=False, union_fired=False,
            completed=False, error=f"{type(exc).__name__}: {exc}")
    finally:
        monitor.detach()
        machine.revert()
