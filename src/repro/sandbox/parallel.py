"""Parallel campaign execution.

The full 492-sample sweep is embarrassingly parallel: every sample runs
against its own reverted machine with a fresh detector, so results are
independent of scheduling.  :func:`run_campaign_parallel` fans the cohort
out over worker processes, each owning one long-lived
:class:`~repro.sandbox.machine.VirtualMachine` (corpus planted once,
journal-reverted between samples), and reassembles a
:class:`~repro.sandbox.campaign.CampaignResult` in the original sample
order — bit-identical to the serial runner's.

Dispatch is crash-resilient: samples are submitted individually (not via
``pool.map``), so the death of a worker process loses at most the one
sample it was executing.  That sample is requeued onto a fresh worker —
``multiprocessing.Pool`` respawns dead workers and re-runs the
initializer — with bounded retries; a sample that exhausts its retries or
its per-sample wall-clock timeout becomes an errored
:class:`~repro.sandbox.runner.SampleResult` instead of aborting the
sweep.  With a journal attached, completed results are durably appended
as they arrive and an interrupted campaign resumes by running only the
missing samples.

Requires a ``fork``-capable platform (Linux/macOS): the corpus is shared
with workers through fork inheritance rather than pickling ~85 MB per
worker.  On platforms without ``fork`` the function transparently falls
back to the serial runner.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Optional, Sequence, Tuple

from ..core.config import CryptoDropConfig
from ..corpus.builder import GeneratedCorpus, generate
from ..ransomware import instantiate
from .campaign import CampaignResult
from .journal import CampaignJournal, coerce_journal
from .machine import VirtualMachine
from .runner import SampleResult, errored_result, run_sample

__all__ = ["run_campaign_parallel"]

#: host-seconds a sample may spend queued+running before it is requeued
DEFAULT_SAMPLE_TIMEOUT = 300.0
#: how often the dispatcher rescans outstanding work
_POLL_INTERVAL_S = 0.02

# Module globals used to hand state to forked workers without pickling.
_PARENT_CORPUS: Optional[GeneratedCorpus] = None
_WORKER_MACHINE: Optional[VirtualMachine] = None


def _init_worker() -> None:
    global _WORKER_MACHINE
    machine = VirtualMachine(_PARENT_CORPUS)
    machine.snapshot()
    _WORKER_MACHINE = machine


def _run_one(args) -> SampleResult:
    profile, config, record_ops = args
    sample = instantiate(profile)
    return run_sample(_WORKER_MACHINE, sample, config, record_ops)


def run_campaign_parallel(samples: Sequence,
                          corpus: Optional[GeneratedCorpus] = None,
                          config: Optional[CryptoDropConfig] = None,
                          record_ops: bool = False,
                          workers: Optional[int] = None,
                          journal=None,
                          sample_timeout: Optional[float] = DEFAULT_SAMPLE_TIMEOUT,
                          max_retries: int = 2) -> CampaignResult:
    """Run a cohort across worker processes; same results as serial.

    ``workers`` defaults to the CPU count capped at 8 (per-worker corpus
    copies cost memory).  With one worker, or without ``fork``, the call
    degrades to the ordinary serial campaign.

    ``sample_timeout`` is the host-wall-clock budget per dispatch attempt
    (None disables it — a dead worker then goes undetected, so leave it
    on); ``max_retries`` bounds how often a lost/timed-out sample is
    requeued before it is recorded as errored.
    """
    global _PARENT_CORPUS, _WORKER_MACHINE
    corpus = corpus or generate()
    journal = coerce_journal(journal)
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        from .campaign import run_campaign
        return run_campaign(samples, corpus, config, record_ops,
                            journal=journal)

    profiles = [sample.profile for sample in samples]
    completed: Dict[int, SampleResult] = {}
    if journal is not None:
        cached = journal.load()
        for index, profile in enumerate(profiles):
            hit = cached.get(CampaignJournal.key_for(profile))
            if hit is not None:
                completed[index] = hit

    if _PARENT_CORPUS is not None:
        raise RuntimeError(
            "run_campaign_parallel is already active in this process: the "
            "corpus is handed to forked workers through the module global "
            "_PARENT_CORPUS (fork inheritance, not pickling), so nested or "
            "concurrent parallel campaigns would silently share the wrong "
            "corpus.  Run campaigns sequentially, or use workers=1 for the "
            "serial path.")
    _PARENT_CORPUS = corpus
    try:
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(processes=workers, initializer=_init_worker)
        try:
            completed.update(_dispatch(pool, profiles, completed, config,
                                       record_ops, journal, sample_timeout,
                                       max_retries))
        finally:
            pool.terminate()
            pool.join()
    finally:
        # Hygiene: the parent never owns a worker machine, and the corpus
        # global must not leak into unrelated forks after teardown.
        _PARENT_CORPUS = None
        _WORKER_MACHINE = None
    campaign = CampaignResult()
    campaign.results.extend(completed[i] for i in range(len(profiles)))
    return campaign


def _dispatch(pool, profiles: Sequence, already_done: Dict[int, SampleResult],
              config, record_ops: bool, journal: Optional[CampaignJournal],
              sample_timeout: Optional[float],
              max_retries: int) -> Dict[int, SampleResult]:
    """Per-sample submission with requeue-on-loss and bounded retries."""
    results: Dict[int, SampleResult] = {}
    #: index -> (async_result, deadline, attempt)
    pending: Dict[int, Tuple] = {}

    def submit(index: int, attempt: int) -> None:
        handle = pool.apply_async(
            _run_one, ((profiles[index], config, record_ops),))
        deadline = (time.monotonic() + sample_timeout
                    if sample_timeout is not None else None)
        pending[index] = (handle, deadline, attempt)

    for index in range(len(profiles)):
        if index not in already_done:
            submit(index, attempt=1)

    while pending:
        progressed = False
        now = time.monotonic()
        for index in list(pending):
            handle, deadline, attempt = pending[index]
            if handle.ready():
                del pending[index]
                progressed = True
                try:
                    result = handle.get()
                except Exception as exc:  # noqa: BLE001 - worker raised
                    result = errored_result(
                        profiles[index], f"{type(exc).__name__}: {exc}")
                results[index] = result
                if journal is not None:
                    journal.record(result)
            elif deadline is not None and now > deadline:
                # Lost to a dead worker, or wedged past its wall-clock
                # budget.  The pool has already respawned any dead worker
                # (rerunning _init_worker), so requeueing lands the
                # sample on a healthy machine.
                del pending[index]
                progressed = True
                if attempt <= max_retries:
                    submit(index, attempt + 1)
                else:
                    # Deliberately not journalled: a resume should retry
                    # a timed-out sample rather than pin its failure.
                    results[index] = errored_result(
                        profiles[index],
                        f"TimeoutError: no result after {attempt} "
                        f"attempts of {sample_timeout:g}s")
        if not progressed:
            time.sleep(_POLL_INTERVAL_S)
    return results
