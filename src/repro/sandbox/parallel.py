"""Parallel campaign execution.

The full 492-sample sweep is embarrassingly parallel: every sample runs
against its own reverted machine with a fresh detector, so results are
independent of scheduling.  :func:`run_campaign_parallel` fans the cohort
out over worker processes, each owning one long-lived
:class:`~repro.sandbox.machine.VirtualMachine` (corpus planted once,
journal-reverted between samples), and reassembles a
:class:`~repro.sandbox.campaign.CampaignResult` in the original sample
order — bit-identical to the serial runner's.

Requires a ``fork``-capable platform (Linux/macOS): the corpus is shared
with workers through fork inheritance rather than pickling ~85 MB per
worker.  On platforms without ``fork`` the function transparently falls
back to the serial runner.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence

from ..core.config import CryptoDropConfig
from ..corpus.builder import GeneratedCorpus, generate
from ..ransomware import instantiate
from .campaign import CampaignResult
from .machine import VirtualMachine
from .runner import SampleResult, run_sample

__all__ = ["run_campaign_parallel"]

# Module globals used to hand state to forked workers without pickling.
_PARENT_CORPUS: Optional[GeneratedCorpus] = None
_WORKER_MACHINE: Optional[VirtualMachine] = None


def _init_worker() -> None:
    global _WORKER_MACHINE
    machine = VirtualMachine(_PARENT_CORPUS)
    machine.snapshot()
    _WORKER_MACHINE = machine


def _run_one(args) -> SampleResult:
    profile, config, record_ops = args
    sample = instantiate(profile)
    return run_sample(_WORKER_MACHINE, sample, config, record_ops)


def run_campaign_parallel(samples: Sequence,
                          corpus: Optional[GeneratedCorpus] = None,
                          config: Optional[CryptoDropConfig] = None,
                          record_ops: bool = False,
                          workers: Optional[int] = None) -> CampaignResult:
    """Run a cohort across worker processes; same results as serial.

    ``workers`` defaults to the CPU count capped at 8 (per-worker corpus
    copies cost memory).  With one worker, or without ``fork``, the call
    degrades to the ordinary serial campaign.
    """
    global _PARENT_CORPUS
    corpus = corpus or generate()
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        from .campaign import run_campaign
        return run_campaign(samples, corpus, config, record_ops)

    profiles = [sample.profile for sample in samples]
    _PARENT_CORPUS = corpus
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers, initializer=_init_worker) as pool:
            results: List[SampleResult] = pool.map(
                _run_one,
                [(profile, config, record_ops) for profile in profiles],
                chunksize=max(1, len(profiles) // (workers * 4) or 1))
    finally:
        _PARENT_CORPUS = None
    campaign = CampaignResult()
    campaign.results.extend(results)
    return campaign
