"""High-throughput parallel campaign execution.

The full 492-sample sweep is embarrassingly parallel: every sample runs
against its own reverted machine with a fresh detector, so results are
independent of scheduling.  :func:`run_campaign_parallel` fans the cohort
out over worker processes, each owning one long-lived
:class:`~repro.sandbox.machine.VirtualMachine` (corpus planted once,
journal-reverted between samples), and reassembles a
:class:`~repro.sandbox.campaign.CampaignResult` in the original sample
order — bit-identical to the serial runner's.

Throughput model:

* **Shared baseline index** — the corpus
  :class:`~repro.corpus.baselines.BaselineStore` is built once in the
  parent and inherited by every worker through fork (zero-copy), so no
  worker ever re-digests pristine corpus content.  This also removed the
  per-worker memory argument behind the old hard cap of 8 workers; the
  worker count now comes from ``config.campaign_workers`` (0 = one per
  CPU).
* **Chunked dispatch with streamed results** — samples are submitted in
  adaptive chunks (≈4 chunks per worker, so stragglers still balance)
  instead of one task per sample, cutting per-task IPC; each finished
  chunk's results stream back and are journalled on arrival.
* **Crash resilience** — a worker death loses at most one in-flight
  chunk; its samples are requeued individually (the pool respawns dead
  workers and re-runs the initializer) with bounded retries, and a
  sample that exhausts its retries or its wall-clock budget becomes an
  errored :class:`~repro.sandbox.runner.SampleResult` instead of
  aborting the sweep.  On the success path the pool is drained and
  closed cleanly — ``terminate()`` is reserved for the error path, so
  in-flight journal appends are never cut off mid-write.

Requires a ``fork``-capable platform (Linux/macOS): corpus and store are
shared with workers through fork inheritance rather than pickling ~85 MB
per worker.  On platforms without ``fork`` the function transparently
falls back to the serial runner.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import CryptoDropConfig
from ..corpus.baselines import BaselineStore, content_key
from ..corpus.builder import GeneratedCorpus, generate
from ..ransomware import instantiate
from ..telemetry import TelemetrySession
from .campaign import CampaignResult, store_for_config
from .journal import CampaignJournal, coerce_journal
from .machine import VirtualMachine
from .runner import SampleResult, errored_result, run_sample

__all__ = ["build_store_parallel", "retry_backoff_s",
           "run_campaign_parallel"]

#: host-seconds a sample may spend queued+running before it is requeued
DEFAULT_SAMPLE_TIMEOUT = 300.0
#: how often the dispatcher rescans outstanding work
_POLL_INTERVAL_S = 0.02
#: chunks submitted per worker when the chunk size is adaptive — small
#: enough that a slow chunk cannot serialise the tail of the sweep
_CHUNKS_PER_WORKER = 4
#: retry backoff: first requeue waits this long, doubling per attempt …
_RETRY_BACKOFF_BASE_S = 0.25
#: … up to this cap, …
_RETRY_BACKOFF_CAP_S = 4.0
#: … stretched by up to this fraction of deterministic per-sample jitter
#: so a mass timeout (dead worker) does not resubmit in one burst
_RETRY_JITTER = 0.25


def retry_backoff_s(index: int, attempt: int) -> float:
    """Delay before requeueing sample ``index`` for retry ``attempt``.

    Exponential in the attempt number with seeded jitter: a wedged
    worker's whole chunk times out at once, and immediate requeue used
    to slam every orphaned sample back onto the pool in the same poll
    cycle.  Jitter comes from ``random.Random(f"{index}:{attempt}")``,
    a pure function of the retry identity, so reruns back off
    identically (the determinism contract the chaos suite pins).
    """
    base = min(_RETRY_BACKOFF_CAP_S,
               _RETRY_BACKOFF_BASE_S * (2 ** (attempt - 1)))
    return base * (1.0 + _RETRY_JITTER
                   * random.Random(f"{index}:{attempt}").random())

# Module globals used to hand state to forked workers without pickling.
_PARENT_CORPUS: Optional[GeneratedCorpus] = None
_PARENT_STORE = None
_WORKER_MACHINE: Optional[VirtualMachine] = None
# Fork handoff for the sharded store build (keys + blobs, read-only).
_SHARD_KEYS: Optional[List[bytes]] = None
_SHARD_BLOBS: Optional[List[bytes]] = None


def _build_shard(args) -> Tuple[Dict[bytes, object], int]:
    """One worker's slice of a sharded store build (batched kernel)."""
    lo, hi, max_inspect_bytes, digests_enabled = args
    return BaselineStore._build_entries_batched(
        _SHARD_KEYS[lo:hi], _SHARD_BLOBS[lo:hi],
        max_inspect_bytes, digests_enabled)


def _build_shard_file(args) -> str:
    """One worker's slice, written straight to a shard store file.

    The shard file is a complete, valid store over its key subset, so
    the parent merges index blocks and record regions
    (:func:`repro.store.writer.merge_store_files`) without ever holding
    any shard's entries in memory — the disk-build path for corpora
    whose digests should never all be resident at once.
    """
    from ..store.writer import StoreWriter
    (lo, hi, shard_path, seed, backend, max_inspect_bytes,
     digests_enabled) = args
    started = time.perf_counter()
    keys = _SHARD_KEYS[lo:hi]
    entries, total = BaselineStore._build_entries_batched(
        keys, _SHARD_BLOBS[lo:hi], max_inspect_bytes, digests_enabled)
    writer = StoreWriter(shard_path, seed=seed, backend=backend,
                         max_inspect_bytes=max_inspect_bytes,
                         digests_enabled=digests_enabled)
    try:
        for key in keys:
            writer.add(key, entries[key])
    except BaseException:
        writer.abort()
        raise
    return writer.finish(total_bytes=total,
                         build_seconds=time.perf_counter() - started)


def build_store_parallel(corpus, backend: str = "sdhash",
                         max_inspect_bytes: int = 4 * 1024 * 1024,
                         digests_enabled: bool = True,
                         workers: Optional[int] = None,
                         config: Optional[CryptoDropConfig] = None,
                         path=None, hot_entries: int = 4096
                         ) -> BaselineStore:
    """:meth:`BaselineStore.build` sharded across worker processes.

    The distinct content blobs are split into one contiguous shard per
    worker; each forked worker runs the batched digest kernel over its
    shard and pickles the finished entries back.  Entries are pure
    functions of content, so the merged store is bit-identical to a
    single-process build (same fingerprint, same digests).

    With ``path`` set, the build lands on disk instead: each worker
    writes its shard as a complete store file, the parent merge-sorts
    the shard indexes into one final store at ``path``
    (:func:`~repro.store.writer.merge_store_files` — the full entry
    dict is never materialised in any process), and the result comes
    back opened via :meth:`BaselineStore.open` with a ``hot_entries``
    LRU.  Same fingerprint, same lookups as the in-memory build.

    Worker count resolves like the parallel campaign's (explicit argument
    > ``config.campaign_workers`` > one per CPU).  With one worker, a
    non-sdhash backend, or no ``fork`` support, this degrades to the
    ordinary in-process build (written out and reopened when ``path`` is
    set) — on a single-CPU host the batching itself carries the speedup
    and sharding would only add fork overhead.
    """
    global _SHARD_KEYS, _SHARD_BLOBS
    workers = _resolve_workers(workers, config)
    if (workers <= 1 or backend != "sdhash"
            or "fork" not in multiprocessing.get_all_start_methods()):
        store = BaselineStore.build(corpus, backend, max_inspect_bytes,
                                    digests_enabled)
        if path is None:
            return store
        store.save(path)
        return BaselineStore.open(path, hot_entries=hot_entries)
    started = time.perf_counter()
    keys: List[bytes] = []
    blobs: List[bytes] = []
    seen = set()
    for content in corpus.contents.values():
        key = content_key(content)
        if key in seen:
            continue
        seen.add(key)
        keys.append(key)
        blobs.append(content)
    if _SHARD_KEYS is not None:
        raise RuntimeError(
            "build_store_parallel is already active in this process (the "
            "shard handoff uses module globals, like the parallel "
            "campaign's corpus) — build stores sequentially.")
    _SHARD_KEYS = keys
    _SHARD_BLOBS = blobs
    try:
        bound = max(1, (len(blobs) + workers - 1) // workers)
        ctx = multiprocessing.get_context("fork")
        if path is not None:
            shard_files = [(lo, min(len(blobs), lo + bound),
                            f"{path}.shard{i}", corpus.seed, backend,
                            max_inspect_bytes, digests_enabled)
                           for i, lo in enumerate(
                               range(0, len(blobs), bound))]
            with ctx.Pool(processes=min(workers, len(shard_files))) as pool:
                shard_paths = pool.map(_build_shard_file, shard_files)
            try:
                from ..store.writer import merge_store_files
                merge_store_files(shard_paths, path,
                                  build_seconds=time.perf_counter()
                                  - started)
            finally:
                for shard_path in shard_paths:
                    if os.path.exists(shard_path):
                        os.unlink(shard_path)
            return BaselineStore.open(path, hot_entries=hot_entries)
        shards = [(lo, min(len(blobs), lo + bound),
                   max_inspect_bytes, digests_enabled)
                  for lo in range(0, len(blobs), bound)]
        with ctx.Pool(processes=min(workers, len(shards))) as pool:
            parts = pool.map(_build_shard, shards)
    finally:
        _SHARD_KEYS = None
        _SHARD_BLOBS = None
    entries: Dict[bytes, object] = {}
    total = 0
    for part_entries, part_total in parts:
        entries.update(part_entries)
        total += part_total
    return BaselineStore(corpus.seed, backend, max_inspect_bytes,
                         digests_enabled, entries, total_bytes=total,
                         build_seconds=time.perf_counter() - started)


def _init_worker() -> None:
    global _WORKER_MACHINE
    machine = VirtualMachine(_PARENT_CORPUS, baseline_store=_PARENT_STORE)
    machine.snapshot()
    _WORKER_MACHINE = machine


def _run_one(args) -> SampleResult:
    """Run a single sample on this worker's machine (chunk building block)."""
    profile, config, record_ops = args
    sample = instantiate(profile)
    return run_sample(_WORKER_MACHINE, sample, config, record_ops)


def _run_chunk(args) -> List[Tuple[int, SampleResult]]:
    """Run a batch of samples; one bad sample never poisons its chunk."""
    indices, profiles, config, record_ops = args
    out: List[Tuple[int, SampleResult]] = []
    for index, profile in zip(indices, profiles):
        try:
            result = _run_one((profile, config, record_ops))
        except Exception as exc:  # noqa: BLE001 - chunk survival
            result = errored_result(profile, f"{type(exc).__name__}: {exc}")
        out.append((index, result))
    return out


def _resolve_workers(workers: Optional[int],
                     config: Optional[CryptoDropConfig]) -> int:
    """Explicit argument > ``config.campaign_workers`` > one per CPU."""
    if workers is not None:
        return max(1, workers)
    configured = (config or CryptoDropConfig()).campaign_workers
    if configured > 0:
        return configured
    return os.cpu_count() or 1


def run_campaign_parallel(samples: Sequence,
                          corpus: Optional[GeneratedCorpus] = None,
                          config: Optional[CryptoDropConfig] = None,
                          record_ops: bool = False,
                          workers: Optional[int] = None,
                          journal=None,
                          sample_timeout: Optional[float] = DEFAULT_SAMPLE_TIMEOUT,
                          max_retries: int = 2,
                          chunk_size: Optional[int] = None,
                          use_baseline_store: bool = True) -> CampaignResult:
    """Run a cohort across worker processes; same results as serial.

    ``workers`` defaults to ``config.campaign_workers`` (0 = CPU count).
    With one worker, or without ``fork``, the call degrades to the
    ordinary serial campaign.

    ``sample_timeout`` is the host-wall-clock budget per sample (None
    disables it — a dead worker then goes undetected, so leave it on);
    ``max_retries`` bounds how often a lost/timed-out sample is requeued
    before it is recorded as errored.  ``chunk_size`` overrides the
    adaptive batch size (``None`` = cohort split into roughly
    ``4 × workers`` chunks).
    """
    global _PARENT_CORPUS, _PARENT_STORE, _WORKER_MACHINE
    corpus = corpus or generate()
    journal = coerce_journal(journal)
    workers = _resolve_workers(workers, config)
    if workers <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        from .campaign import run_campaign
        return run_campaign(samples, corpus, config, record_ops,
                            journal=journal,
                            use_baseline_store=use_baseline_store)

    profiles = [sample.profile for sample in samples]
    completed: Dict[int, SampleResult] = {}
    if journal is not None:
        cached = journal.load()
        for index, profile in enumerate(profiles):
            hit = cached.get(CampaignJournal.key_for(profile))
            if hit is not None:
                completed[index] = hit

    if _PARENT_CORPUS is not None:
        raise RuntimeError(
            "run_campaign_parallel is already active in this process: the "
            "corpus is handed to forked workers through the module global "
            "_PARENT_CORPUS (fork inheritance, not pickling), so nested or "
            "concurrent parallel campaigns would silently share the wrong "
            "corpus.  Run campaigns sequentially, or use workers=1 for the "
            "serial path.")
    # Parent-side session: captures the store build.  Per-sample
    # telemetry snapshots are produced inside each worker's monitor and
    # ride home on the pickled SampleResult like perf counters do.
    session = TelemetrySession.from_config(config or CryptoDropConfig())
    store = store_for_config(corpus, config, telemetry=session) \
        if use_baseline_store else None
    _PARENT_CORPUS = corpus
    _PARENT_STORE = store
    started = time.perf_counter()
    try:
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(processes=workers, initializer=_init_worker)
        try:
            results, abandoned, backoffs = _dispatch(
                pool, profiles, completed, config, record_ops, journal,
                sample_timeout, max_retries, workers, chunk_size)
            completed.update(results)
        except BaseException:
            # Error/interrupt path only: in-flight work is unrecoverable
            # anyway, kill it rather than wait.
            pool.terminate()
            pool.join()
            raise
        else:
            if abandoned:
                # At least one dispatch was written off to a dead or
                # wedged worker; its orphaned task would keep the pool's
                # bookkeeping alive forever, so a clean close would hang.
                # Every collected result is already journalled — kill
                # what's left.
                pool.terminate()
            else:
                # Success path: every result has been received — close
                # lets workers finish their teardown (flushing anything
                # buffered) instead of dying mid-write under terminate().
                pool.close()
            pool.join()
    finally:
        # Hygiene: the parent never owns a worker machine, and the corpus
        # global must not leak into unrelated forks after teardown.
        _PARENT_CORPUS = None
        _PARENT_STORE = None
        _WORKER_MACHINE = None
    elapsed = time.perf_counter() - started
    campaign = CampaignResult()
    campaign.results.extend(completed[i] for i in range(len(profiles)))
    campaign.perf = {
        "wall_seconds": elapsed,
        "samples_per_second": (len(profiles) / elapsed if elapsed > 0
                               else 0.0),
        "workers": workers,
        "baseline_store": None if store is None else store.describe(),
        "retry_backoffs": backoffs,
    }
    if session is not None:
        if backoffs:
            session.retry_backoff.inc(backoffs)
        campaign.telemetry = session.export()
    return campaign


def _dispatch(pool, profiles: Sequence, already_done: Dict[int, SampleResult],
              config, record_ops: bool, journal: Optional[CampaignJournal],
              sample_timeout: Optional[float], max_retries: int,
              workers: int, chunk_size: Optional[int]
              ) -> Tuple[Dict[int, SampleResult], int, int]:
    """Chunked submission, streamed results, requeue-on-loss.

    Fresh work goes out in adaptive chunks; a chunk lost to a dead or
    wedged worker is requeued as single-sample tasks (attempt counts
    carry over), so one poisoned sample re-isolates itself instead of
    dragging its chunk-mates through every retry.  Requeues wait out an
    exponential, deterministically jittered backoff
    (:func:`retry_backoff_s`) before resubmission, so a mass timeout
    cannot stampede the freshly respawned workers.

    Returns the collected results, the number of dispatches that were
    abandoned past their deadline — their orphaned pool tasks can never
    complete, which the caller must know before trying a clean
    ``close()`` — and the number of backoff-delayed resubmissions.
    """
    todo = [i for i in range(len(profiles)) if i not in already_done]
    if chunk_size is None:
        chunk_size = max(1, len(todo) // (workers * _CHUNKS_PER_WORKER))
    results: Dict[int, SampleResult] = {}
    abandoned = 0
    backoffs = 0
    #: handle -> (indices, deadline, attempt)
    pending: Dict[object, Tuple[List[int], Optional[float], int]] = {}
    #: backoff holding pen: (ready_at_monotonic, index, attempt)
    delayed: List[Tuple[float, int, int]] = []

    def submit(indices: List[int], attempt: int) -> None:
        handle = pool.apply_async(
            _run_chunk, ((indices, [profiles[i] for i in indices],
                          config, record_ops),))
        deadline = (time.monotonic() + sample_timeout * len(indices)
                    if sample_timeout is not None else None)
        pending[handle] = (indices, deadline, attempt)

    for start in range(0, len(todo), chunk_size):
        submit(todo[start:start + chunk_size], attempt=1)

    while pending or delayed:
        progressed = False
        now = time.monotonic()
        if delayed:
            still_waiting: List[Tuple[float, int, int]] = []
            for ready_at, index, attempt in delayed:
                if now >= ready_at:
                    submit([index], attempt)
                    progressed = True
                else:
                    still_waiting.append((ready_at, index, attempt))
            delayed = still_waiting
        for handle in list(pending):
            indices, deadline, attempt = pending[handle]
            if handle.ready():
                del pending[handle]
                progressed = True
                try:
                    chunk_results = handle.get()
                except Exception as exc:  # noqa: BLE001 - pool-level failure
                    chunk_results = [
                        (i, errored_result(profiles[i],
                                           f"{type(exc).__name__}: {exc}"))
                        for i in indices]
                for index, result in chunk_results:
                    results[index] = result
                    if journal is not None:
                        journal.record(result)
            elif deadline is not None and now > deadline:
                # Lost to a dead worker, or wedged past its wall-clock
                # budget.  The pool has already respawned any dead worker
                # (rerunning _init_worker); requeue the chunk's samples
                # individually so a healthy machine picks them up and a
                # single bad sample cannot re-poison a whole chunk.
                del pending[handle]
                progressed = True
                abandoned += 1
                if attempt <= max_retries:
                    for index in indices:
                        delayed.append((now + retry_backoff_s(index, attempt),
                                        index, attempt + 1))
                        backoffs += 1
                else:
                    for index in indices:
                        # Deliberately not journalled: a resume should
                        # retry a timed-out sample rather than pin its
                        # failure.
                        results[index] = errored_result(
                            profiles[index],
                            f"TimeoutError: no result after {attempt} "
                            f"attempts of {sample_timeout:g}s")
        if not progressed:
            time.sleep(_POLL_INTERVAL_S)
    return results, abandoned, backoffs
