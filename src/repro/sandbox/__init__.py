"""Cuckoo-sandbox substitute: VM, per-sample revert cycles, campaigns."""

from .campaign import (CampaignResult, cull_haul, run_campaign,
                       store_for_config)
from .journal import CampaignJournal
from .machine import ExecutionContext, RunOutcome, VirtualMachine
from .parallel import run_campaign_parallel
from .runner import (BenignResult, SampleResult, errored_result, run_benign,
                     run_sample)

__all__ = [
    "BenignResult", "CampaignJournal", "CampaignResult", "ExecutionContext",
    "RunOutcome", "SampleResult", "VirtualMachine", "cull_haul",
    "errored_result", "run_benign", "run_campaign", "run_campaign_parallel",
    "store_for_config",
    "run_sample",
]
