"""Cuckoo-sandbox substitute: VM, per-sample revert cycles, campaigns."""

from .campaign import CampaignResult, cull_haul, run_campaign
from .machine import ExecutionContext, RunOutcome, VirtualMachine
from .parallel import run_campaign_parallel
from .runner import BenignResult, SampleResult, run_benign, run_sample

__all__ = [
    "BenignResult", "CampaignResult", "ExecutionContext", "RunOutcome", "SampleResult", "run_benign",
    "VirtualMachine", "cull_haul", "run_campaign", "run_campaign_parallel",
    "run_sample",
]
