"""The analysis machine — a Cuckoo-sandbox guest substitute.

One :class:`VirtualMachine` bundles a virtual filesystem, process table,
simulated clock, shadow-copy service, and the planted document corpus.
``snapshot()``/``revert()`` reproduce the paper's methodology of reverting
the guest between samples (§V-A), implemented with the VFS journal so a
revert costs only what the sample touched.

Workloads (ransomware and benign applications alike) are *programs*:
objects with a ``name`` and ``run(ctx)``.  The machine spawns a process,
hands the program an :class:`ExecutionContext` (its window onto the
machine), and converts CryptoDrop suspensions into a clean outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..corpus.builder import GeneratedCorpus, plant
from ..fs.errors import ProcessSuspended
from ..fs.paths import DOCUMENTS, TEMP, WinPath
from ..fs.processes import Process
from ..fs.shadow import ShadowCopyService
from ..fs.snapshot import BaselineIndex, DamageReport, assess_damage
from ..fs.vfs import VirtualFileSystem

__all__ = ["ExecutionContext", "VirtualMachine", "RunOutcome"]


class ExecutionContext:
    """A program's handle on the machine: pid-bound filesystem access.

    All methods proxy the VFS with this process's pid, so every call flows
    through the filter stack (and therefore through CryptoDrop).
    """

    def __init__(self, machine: "VirtualMachine", process: Process,
                 rng: random.Random) -> None:
        self.machine = machine
        self.vfs = machine.vfs
        self.process = process
        self.pid = process.pid
        self.rng = rng
        self.docs_root = machine.docs_root
        self.temp_root = machine.temp_root
        self.shadow = machine.shadow

    # -- filesystem proxies ------------------------------------------------

    def open(self, path, mode="r", create=False, truncate=False):
        return self.vfs.open(self.pid, path, mode, create, truncate)

    def read(self, handle, size=None):
        return self.vfs.read(self.pid, handle, size)

    def write(self, handle, payload):
        return self.vfs.write(self.pid, handle, payload)

    def seek(self, handle, pos):
        return self.vfs.seek(self.pid, handle, pos)

    def close(self, handle):
        return self.vfs.close(self.pid, handle)

    def read_file(self, path, chunk_size=None):
        return self.vfs.read_file(self.pid, path, chunk_size)

    def write_file(self, path, payload, chunk_size=None):
        return self.vfs.write_file(self.pid, path, payload, chunk_size)

    def rename(self, path, dest, overwrite=True):
        return self.vfs.rename(self.pid, path, dest, overwrite)

    def delete(self, path):
        return self.vfs.delete(self.pid, path)

    def mkdir(self, path, parents=False, exist_ok=True):
        return self.vfs.mkdir(self.pid, path, parents, exist_ok)

    def listdir(self, path):
        return self.vfs.listdir(self.pid, path)

    def walk(self, root):
        return self.vfs.walk(self.pid, root)

    def stat(self, path):
        return self.vfs.stat(self.pid, path)

    def exists(self, path):
        return self.vfs.exists(path)

    def set_attributes(self, path, read_only=None, hidden=None):
        return self.vfs.set_attributes(self.pid, path, read_only, hidden)

    def spawn_child(self, name: str) -> "ExecutionContext":
        """Fork a child process (Virlock-style families score as one)."""
        child = self.machine.vfs.processes.spawn(
            name, parent_pid=self.pid,
            started_us=self.machine.vfs.clock.now_us)
        return ExecutionContext(self.machine, child,
                                random.Random(self.rng.getrandbits(48)))


@dataclass
class RunOutcome:
    """What happened when a program ran on the machine."""

    program_name: str
    pid: int
    suspended: bool
    suspend_reason: str
    completed: bool
    error: Optional[str]
    sim_seconds: float

    @property
    def ran_to_completion(self) -> bool:
        return self.completed and not self.suspended


class VirtualMachine:
    """VFS + processes + corpus + services, with snapshot/revert."""

    def __init__(self, corpus: Optional[GeneratedCorpus] = None,
                 docs_root: WinPath = DOCUMENTS,
                 temp_root: WinPath = TEMP,
                 baseline_store=None) -> None:
        self.vfs = VirtualFileSystem()
        self.docs_root = docs_root
        self.temp_root = temp_root
        self.shadow = ShadowCopyService(self.vfs)
        self.corpus = corpus
        #: precomputed corpus baseline index shared by every monitor that
        #: runs on this machine (see repro.corpus.baselines)
        if (baseline_store is not None and corpus is not None
                and baseline_store.seed != corpus.seed):
            # a parameter-identical store from another corpus would pass
            # every per-entry check and only die at checkpoint
            # fingerprint validation — refuse it up front
            raise ValueError(
                f"baseline store was built from corpus seed "
                f"{baseline_store.seed}, but this machine plants corpus "
                f"seed {corpus.seed} — rebuild the store for this corpus")
        self.baseline_store = baseline_store
        self.vfs._ensure_dirs(temp_root)
        self.vfs._ensure_dirs(docs_root)
        if corpus is not None:
            plant(self.vfs, corpus, docs_root)
        self.baseline: Optional[BaselineIndex] = None

    # -- snapshot management ---------------------------------------------------

    def snapshot(self) -> None:
        """Capture the pristine state (call once, before the first run)."""
        self.baseline = BaselineIndex(self.vfs, self.docs_root)
        self.vfs.snapshot_mark()

    def revert(self) -> None:
        """Return to the snapshot (between samples, §V-A)."""
        if self.baseline is None:
            raise RuntimeError("snapshot() must be called before revert()")
        self.vfs.revert()

    def assess(self) -> DamageReport:
        """Damage relative to the snapshot, verified by SHA-256."""
        if self.baseline is None:
            raise RuntimeError("snapshot() must be called before assess()")
        return assess_damage(self.vfs, self.baseline,
                             self.vfs.touched_since_mark)

    # -- program execution --------------------------------------------------------

    def run_program(self, program, seed: Optional[int] = None,
                    max_ops: Optional[int] = None) -> RunOutcome:
        """Run ``program.run(ctx)`` in a fresh process.

        ``max_ops`` models the paper's sample timeout: the context raises
        after that many filesystem operations (used for inert culling).
        """
        proc = self.vfs.processes.spawn(
            program.name, image_path=getattr(program, "image_path", ""),
            started_us=self.vfs.clock.now_us)
        rng = random.Random(seed if seed is not None
                            else getattr(program, "seed", 0))
        ctx = ExecutionContext(self, proc, rng)
        start_us = self.vfs.clock.now_us
        suspended = False
        reason = ""
        completed = False
        error: Optional[str] = None
        try:
            program.run(ctx)
            completed = True
        except ProcessSuspended as exc:
            suspended = True
            reason = exc.reason
        except Exception as exc:  # noqa: BLE001 - workload bug isolation
            error = f"{type(exc).__name__}: {exc}"
        finally:
            if not suspended:
                self.vfs.processes.exit(proc.pid)
        return RunOutcome(program.name, proc.pid, suspended, reason,
                          completed, error,
                          (self.vfs.clock.now_us - start_us) / 1e6)
