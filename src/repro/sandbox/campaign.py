"""Campaign orchestration — run a cohort, aggregate Table-I-style stats.

A *campaign* runs a list of samples against one corpus with per-sample
revert, exactly as the paper's 22-day VirusTotal sweep did (§V-A), and
aggregates the per-family medians, the files-lost distribution (Fig. 3),
and the union-indication accounting (§V-B2).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import CryptoDropConfig
from ..corpus.builder import GeneratedCorpus, generate
from ..perfstats import merge_perf_dicts
from ..telemetry import TelemetrySession, merge_telemetry_dicts
from .machine import VirtualMachine
from .runner import SampleResult, run_sample

__all__ = ["CampaignResult", "run_campaign", "cull_haul",
           "store_for_config"]


def store_for_config(corpus: GeneratedCorpus,
                     config: Optional[CryptoDropConfig],
                     telemetry=None):
    """The corpus's (cached) BaselineStore matching a detector config.

    ``config.store_backend`` picks the storage: ``"dict"`` (resident,
    default) or ``"mmap"`` (single-file on-disk store, lazy page-in,
    ``config.store_hot_entries`` LRU) — verdicts are bit-identical
    either way.  With a telemetry session attached, the resolved store
    announces itself (``StoreBuilt`` for dict, ``StoreOpened`` for
    mmap) — once per campaign, from the parent process, before any
    monitor exists.
    """
    config = config or CryptoDropConfig()
    resolve_started = time.perf_counter()
    store = corpus.baseline_store(
        backend=config.similarity_backend,
        max_inspect_bytes=config.max_inspect_bytes,
        digests_enabled=config.enable_similarity,
        storage=config.store_backend,
        hot_entries=config.store_hot_entries)
    if telemetry is not None:
        store.announce(telemetry,
                       open_seconds=time.perf_counter() - resolve_started)
    return store

ProgressFn = Callable[[int, int, SampleResult], None]


@dataclass
class CampaignResult:
    """Aggregated outcome of one cohort sweep."""

    results: List[SampleResult] = field(default_factory=list)
    #: campaign-level execution counters (wall seconds, throughput,
    #: workers, baseline-store identity) filled by the runners
    perf: dict = field(default_factory=dict, compare=False)
    #: campaign-level telemetry snapshot (``TelemetrySession.export()``
    #: of the parent's session — store-build events and the like); None
    #: when the campaign ran without telemetry
    telemetry: Optional[dict] = field(default=None, compare=False)

    def perf_stats(self) -> dict:
        """``monitor.stats()``-style aggregate of per-sample engine
        counters, merged across every sample that carried them, plus the
        campaign-level execution counters in :attr:`perf`."""
        merged = merge_perf_dicts([r.perf for r in self.results
                                   if r.perf is not None])
        merged.update(self.perf)
        return merged

    def telemetry_stats(self) -> dict:
        """Campaign-wide telemetry aggregate, the analogue of
        :meth:`perf_stats`: every per-sample (or per-worker)
        ``TelemetrySession.export()`` snapshot merged — metric states
        add, per-kind event counts add — plus the campaign-level
        snapshot in :attr:`telemetry` (store builds etc.)."""
        return merge_telemetry_dicts(
            [r.telemetry for r in self.results if r.telemetry is not None]
            + ([self.telemetry] if self.telemetry is not None else []))

    # -- headline metrics -----------------------------------------------------

    @property
    def working(self) -> List[SampleResult]:
        return [r for r in self.results if not r.inert]

    @property
    def detection_rate(self) -> float:
        working = self.working
        if not working:
            return 0.0
        return sum(1 for r in working if r.detected) / len(working)

    def files_lost_values(self) -> List[int]:
        return [r.files_lost for r in self.working]

    @property
    def median_files_lost(self) -> float:
        values = self.files_lost_values()
        return statistics.median(values) if values else 0.0

    @property
    def max_files_lost(self) -> int:
        values = self.files_lost_values()
        return max(values) if values else 0

    @property
    def min_files_lost(self) -> int:
        values = self.files_lost_values()
        return min(values) if values else 0

    @property
    def union_rate(self) -> float:
        working = self.working
        if not working:
            return 0.0
        return sum(1 for r in working if r.union_fired) / len(working)

    # -- groupings ----------------------------------------------------------------

    def by_family(self) -> Dict[str, List[SampleResult]]:
        grouped: Dict[str, List[SampleResult]] = {}
        for result in self.working:
            grouped.setdefault(result.family, []).append(result)
        return grouped

    def family_medians(self) -> Dict[str, float]:
        return {family: statistics.median([r.files_lost for r in rows])
                for family, rows in sorted(self.by_family().items())}

    def class_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.working:
            counts[result.behavior_class] = \
                counts.get(result.behavior_class, 0) + 1
        return counts

    def cumulative_distribution(self) -> List[tuple]:
        """(files_lost, cumulative fraction of samples) — Fig. 3's curve."""
        values = sorted(self.files_lost_values())
        if not values:
            return []
        total = len(values)
        out = []
        for i, value in enumerate(values, start=1):
            if i == total or values[i] != value:
                out.append((value, i / total))
        return out


def run_campaign(samples: Sequence, corpus: Optional[GeneratedCorpus] = None,
                 config: Optional[CryptoDropConfig] = None,
                 record_ops: bool = False,
                 progress: Optional[ProgressFn] = None,
                 journal=None,
                 use_baseline_store: bool = True) -> CampaignResult:
    """Run every sample through a revert cycle on a shared machine.

    ``journal`` (a path or :class:`~repro.sandbox.journal.CampaignJournal`)
    makes the sweep crash-resumable: each completed result is appended
    durably, and a rerun against the same journal executes only the
    samples missing from it, splicing journalled results back in order.

    ``use_baseline_store`` (default on) digests the corpus once into a
    shared :class:`~repro.corpus.baselines.BaselineStore` so every
    sample's engine resolves pristine-content baselines without
    re-digesting; detection results are bit-identical either way.
    """
    from .journal import CampaignJournal, coerce_journal
    corpus = corpus or generate()
    journal = coerce_journal(journal)
    done = journal.load() if journal is not None else {}
    # the campaign's own session captures parent-side events (store
    # builds); per-sample sessions live inside each run's monitor
    session = TelemetrySession.from_config(config or CryptoDropConfig())
    store = store_for_config(corpus, config, telemetry=session) \
        if use_baseline_store else None
    machine = VirtualMachine(corpus, baseline_store=store)
    machine.snapshot()
    campaign = CampaignResult()
    total = len(samples)
    started = time.perf_counter()
    for index, sample in enumerate(samples):
        cached = (done.get(CampaignJournal.key_for(sample))
                  if journal is not None else None)
        if cached is not None:
            result = cached
        else:
            result = run_sample(machine, sample, config, record_ops)
            if journal is not None:
                journal.record(result)
        campaign.results.append(result)
        if progress is not None:
            progress(index + 1, total, result)
    elapsed = time.perf_counter() - started
    campaign.perf = {
        "wall_seconds": elapsed,
        "samples_per_second": total / elapsed if elapsed > 0 else 0.0,
        "workers": 1,
        "baseline_store": None if store is None else store.describe(),
    }
    if session is not None:
        campaign.telemetry = session.export()
    return campaign


def cull_haul(samples: Sequence, corpus: Optional[GeneratedCorpus] = None,
              config: Optional[CryptoDropConfig] = None) -> tuple:
    """The paper's culling pass: split a haul into (working, inert) by
    observed behaviour — a sample is kept iff it attacked user data or was
    detected; reverted between runs (§V-A)."""
    campaign = run_campaign(samples, corpus, config)
    working = []
    inert = []
    for sample, result in zip(samples, campaign.results):
        if result.detected or result.files_lost > 0 or result.new_files > 0:
            working.append((sample, result))
        else:
            inert.append((sample, result))
    return working, inert, campaign
