"""Campaign result journal — crash-safe sweep resume.

The paper's 492-sample sweep ran for 22 days; ours runs in minutes but
the failure mode is the same: losing a half-finished campaign to one
crash wastes every completed revert cycle.  :class:`CampaignJournal`
appends each completed :class:`~repro.sandbox.runner.SampleResult` to a
JSON-lines file the moment it exists, so an interrupted campaign —
serial or parallel — resumes by rerunning only the samples missing from
the journal.

The format is append-only and tolerant: a line half-written at the
moment of a crash is skipped on load (the sample simply reruns).
Results are keyed by ``(sample_name, seed)``, which is unique within a
cohort and stable across resumes.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from ..fs.paths import WinPath
from .runner import SampleResult

__all__ = ["CampaignJournal", "coerce_journal", "result_from_dict",
           "result_to_dict"]

#: journal key: unique, order-independent sample identity
JournalKey = Tuple[str, int]


def result_to_dict(result: SampleResult) -> dict:
    """JSON-safe encoding of one sample result (exact round trip)."""
    return {
        "sample_name": result.sample_name,
        "family": result.family,
        "behavior_class": result.behavior_class,
        "seed": result.seed,
        "detected": result.detected,
        "suspended": result.suspended,
        "files_lost": result.files_lost,
        "files_modified": result.files_modified,
        "files_missing": result.files_missing,
        "new_files": result.new_files,
        "union_fired": result.union_fired,
        "score": result.score,
        "threshold": result.threshold,
        "flags": sorted(result.flags),
        "sim_seconds": result.sim_seconds,
        "error": result.error,
        "completed": result.completed,
        "inert": result.inert,
        "touched_dirs": sorted(str(p) for p in result.touched_dirs),
        "extensions_accessed": sorted(result.extensions_accessed),
        "notes_written": result.notes_written,
        "files_attacked": result.files_attacked,
        "disposal": result.disposal,
        "traversal": result.traversal,
        "cipher": result.cipher,
        "indicator_points": dict(result.indicator_points),
    }


def result_from_dict(entry: dict) -> SampleResult:
    """Inverse of :func:`result_to_dict`."""
    return SampleResult(
        sample_name=entry["sample_name"],
        family=entry["family"],
        behavior_class=entry["behavior_class"],
        seed=entry["seed"],
        detected=entry["detected"],
        suspended=entry["suspended"],
        files_lost=entry["files_lost"],
        files_modified=entry["files_modified"],
        files_missing=entry["files_missing"],
        new_files=entry["new_files"],
        union_fired=entry["union_fired"],
        score=entry["score"],
        threshold=entry["threshold"],
        flags=set(entry["flags"]),
        sim_seconds=entry["sim_seconds"],
        error=entry["error"],
        completed=entry["completed"],
        inert=entry["inert"],
        touched_dirs={WinPath(p) for p in entry["touched_dirs"]},
        extensions_accessed=set(entry["extensions_accessed"]),
        notes_written=entry["notes_written"],
        files_attacked=entry["files_attacked"],
        disposal=entry["disposal"],
        traversal=entry["traversal"],
        cipher=entry["cipher"],
        indicator_points=dict(entry["indicator_points"]),
    )


class CampaignJournal:
    """Append-only JSONL journal of completed sample results."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    @staticmethod
    def key_for(obj) -> JournalKey:
        """Journal key of a profile, sample, or result."""
        profile = getattr(obj, "profile", obj)
        name = getattr(profile, "sample_name", None)
        if name is None:
            raise TypeError(f"cannot key {obj!r} for the journal")
        return (name, profile.seed)

    def load(self) -> Dict[JournalKey, SampleResult]:
        """All intact journalled results (truncated tail lines skipped)."""
        results: Dict[JournalKey, SampleResult] = {}
        if not os.path.exists(self.path):
            return results
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    result = result_from_dict(entry)
                except (ValueError, KeyError, TypeError):
                    # A crash mid-append leaves a torn final line; the
                    # sample it described simply reruns on resume.
                    continue
                results[(result.sample_name, result.seed)] = result
        return results

    def record(self, result: SampleResult) -> None:
        """Durably append one result (flushed before returning)."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        line = json.dumps(result_to_dict(result), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        if os.path.exists(self.path):
            os.remove(self.path)


def coerce_journal(journal) -> Optional[CampaignJournal]:
    """Accept a path, a :class:`CampaignJournal`, or None."""
    if journal is None or isinstance(journal, CampaignJournal):
        return journal
    return CampaignJournal(journal)
