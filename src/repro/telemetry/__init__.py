"""``repro.telemetry`` — structured detection telemetry.

Four pieces (see ``docs/observability.md`` for the operator view):

* :mod:`~repro.telemetry.events` — typed, timestamped events on a
  bounded ring-buffer bus with pluggable subscribers;
* :mod:`~repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms, checkpoint- and campaign-merge-able, absorbing the
  ``repro.perfstats`` counters behind a compatibility shim;
* :mod:`~repro.telemetry.export` — JSONL event logs and Prometheus text
  exposition;
* :mod:`~repro.telemetry.timeline` — per-process detection narratives
  rebuilt from the event stream.

:class:`TelemetrySession` bundles a bus and a registry with the hot
instruments pre-resolved, and is the single object instrumented code
holds.  The contract with the hot paths is: the engine/scoreboard/cache
keep a ``telemetry`` slot that is ``None`` when disabled, and every emit
point is behind one ``is None`` check — no event construction, no dict
lookups, no callable indirection on the disabled path.  The bench
harness gates that at <2% (``telemetry_overhead`` in ``BENCH_4.json``).
"""

from __future__ import annotations

from typing import Optional

from .events import (EVENT_TYPES, BaselineResolved, BreakerTripped,
                     CacheEvicted, DigestBatchFlushed, EventBus,
                     FaultInjected, IndicatorFired, LoadShed,
                     ProcessSuspended, ScoreDelta, ShardRestarted,
                     StoreBuilt, StoreOpened, StorePageIn,
                     StreamDigestFinalized, TelemetryEvent,
                     UnionBoost, event_from_dict, events_as_dicts)
from .export import (JsonlWriter, read_jsonl, render_prometheus,
                     validate_exposition, write_jsonl)
from .metrics import (BATCH_SIZE_BUCKETS, FILES_LOST_BUCKETS,
                      OP_WALL_US_BUCKETS, QUEUE_DEPTH_BUCKETS,
                      SCORE_BUCKETS,
                      Counter, Gauge, Histogram, MetricsRegistry,
                      collect_perfstats, engine_snapshot, ingest_snapshot,
                      merge_metric_states)
from .timeline import (DetectionTimeline, TimelineEntry, build_timeline,
                       indicator_totals, merge_indicator_totals,
                       timelines_by_process)

__all__ = [
    "TelemetrySession",
    # events
    "TelemetryEvent", "IndicatorFired", "ScoreDelta", "UnionBoost",
    "ProcessSuspended", "BaselineResolved", "CacheEvicted",
    "DigestBatchFlushed", "StreamDigestFinalized",
    "FaultInjected", "StoreBuilt", "StoreOpened", "StorePageIn",
    "LoadShed", "BreakerTripped", "ShardRestarted", "EventBus",
    "EVENT_TYPES", "event_from_dict", "events_as_dicts",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "BATCH_SIZE_BUCKETS", "FILES_LOST_BUCKETS", "SCORE_BUCKETS",
    "OP_WALL_US_BUCKETS", "QUEUE_DEPTH_BUCKETS",
    "collect_perfstats", "engine_snapshot", "ingest_snapshot",
    "merge_metric_states",
    # export
    "JsonlWriter", "write_jsonl", "read_jsonl", "render_prometheus",
    "validate_exposition",
    # timeline
    "TimelineEntry", "DetectionTimeline", "build_timeline",
    "timelines_by_process", "indicator_totals", "merge_indicator_totals",
]


class TelemetrySession:
    """One run's telemetry: an event bus plus a metrics registry.

    The hot instruments are resolved once at construction and held as
    attributes, so emit points pay one attribute access, not a registry
    lookup.  Everything instrumented code needs hangs off this object:

    ``session.bus.emit(...)`` for events, ``session.indicator_hits.inc``
    etc. for metrics, ``session.export()`` for the merged snapshot that
    rides on ``SampleResult.telemetry`` and folds into campaign totals.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.bus = EventBus(capacity=capacity)
        self.registry = MetricsRegistry()
        r = self.registry
        self.indicator_hits = r.counter(
            "cryptodrop_indicator_hits_total",
            "indicator hits folded into the scoreboard, per indicator")
        self.union_boosts = r.counter(
            "cryptodrop_union_boosts_total",
            "union indications fired (all three primary flags present)")
        self.suspensions = r.counter(
            "cryptodrop_suspensions_total",
            "detection verdicts, labeled by policy action")
        self.score_at_suspension = r.histogram(
            "cryptodrop_score_at_suspension", SCORE_BUCKETS,
            "reputation score at the moment of the verdict")
        self.files_lost = r.histogram(
            "cryptodrop_detection_files_lost", FILES_LOST_BUCKETS,
            "files lost before suspension (detection latency, paper Fig. 3)")
        self.op_wall_us = r.histogram(
            "cryptodrop_op_wall_us", OP_WALL_US_BUCKETS,
            "measured post_operation wall time, microseconds, per op kind")
        self.baseline_resolutions = r.counter(
            "cryptodrop_baseline_resolutions_total",
            "inspections by digest source (lru/store/live/deferred)")
        self.cache_evictions = r.counter(
            "cryptodrop_cache_evictions_total",
            "digest-LRU evictions")
        self.digest_batches = r.counter(
            "cryptodrop_digest_batches_total",
            "InspectionScheduler flushes that drained pending digests")
        self.digest_batch_size = r.histogram(
            "cryptodrop_digest_batch_size", BATCH_SIZE_BUCKETS,
            "pending inspections drained per scheduler flush")
        self.scheduler_pending_bytes = r.gauge(
            "cryptodrop_scheduler_pending_bytes",
            "content bytes retained by deferred (pending) inspections")
        self.incremental_digest_bytes = r.counter(
            "cryptodrop_incremental_digest_bytes_total",
            "close-path content bytes whose digest was finalised from an "
            "incremental per-handle stream instead of a whole-file read")
        self.stream_fallbacks = r.counter(
            "cryptodrop_stream_digest_fallback_total",
            "streaming digests abandoned for the whole-content path, "
            "per reason (nonsequential/handle_interleave/truncate/...)")
        self.faults = r.counter(
            "cryptodrop_faults_injected_total",
            "injected faults, per fault kind")
        self.load_sheds = r.counter(
            "cryptodrop_load_shed_total",
            "ingest records shed under overload, per tenant")
        self.breaker_trips = r.counter(
            "cryptodrop_breaker_trips_total",
            "circuit-breaker opens on transient inspection failures, "
            "per tenant")
        self.shard_restarts = r.counter(
            "cryptodrop_shard_restarts_total",
            "watchdog-driven shard restarts, per tenant and reason")
        self.retry_backoff = r.counter(
            "cryptodrop_retry_backoff_total",
            "delayed (exponential-backoff) retry resubmissions in the "
            "parallel campaign dispatcher")
        self.store_page_ins = r.counter(
            "cryptodrop_store_page_ins_total",
            "baseline-store records deserialised from disk on first "
            "touch (mmap backend)")
        self.store_resident = r.gauge(
            "cryptodrop_store_resident_entries",
            "baseline-store entries resident in memory (hot-entry LRU "
            "occupancy for the mmap backend, all entries for dict)")

    @classmethod
    def from_config(cls, config) -> Optional["TelemetrySession"]:
        """A session when the config asks for one, else ``None``.

        ``None`` *is* the disabled fast path — instrumented code guards
        every emit point with ``if telemetry is not None``.
        """
        if not getattr(config, "telemetry_enabled", False):
            return None
        return cls(capacity=getattr(config, "telemetry_events", 4096))

    # -- convenience observations --------------------------------------------

    def observe_files_lost(self, n: int) -> None:
        """Record detection latency; called post-assessment by the runner
        (damage is only measurable after the run)."""
        self.files_lost.observe(n)

    def timeline(self, root_pid: Optional[int] = None) -> DetectionTimeline:
        return build_timeline(self.bus.events(), root_pid=root_pid)

    def render_prometheus(self) -> str:
        return render_prometheus(self.registry)

    # -- result / campaign plumbing ------------------------------------------

    def export(self) -> dict:
        """JSON-safe snapshot: ring events + bus stats + metric state.

        This is the payload stored on ``SampleResult.telemetry`` and
        merged campaign-wide by :func:`merge_telemetry_dicts` — the same
        shape whether it came from a live session or a pickled worker.
        """
        return {
            "events": events_as_dicts(self.bus.events()),
            "bus": self.bus.stats(),
            "counts_by_kind": self.bus.counts_by_kind(),
            "metrics": self.registry.checkpoint(),
        }


def merge_telemetry_dicts(snapshots) -> dict:
    """Fold per-sample/per-worker :meth:`TelemetrySession.export` dicts
    into one campaign-wide view (the telemetry analogue of
    ``perfstats.merge_perf_dicts``).

    Metric states add; bus counters add; per-kind counts add.  Ring
    events are *not* concatenated — a campaign keeps per-sample event
    logs where it wants them and aggregates numbers here.
    """
    merged = {"bus": {"capacity": 0, "buffered": 0, "emitted": 0,
                      "dropped": 0},
              "counts_by_kind": {}, "metrics": {}, "samples": 0}
    registry = MetricsRegistry()
    for snap in snapshots:
        if not snap:
            continue
        merged["samples"] += 1
        bus = snap.get("bus", {})
        for key in ("buffered", "emitted", "dropped"):
            merged["bus"][key] += bus.get(key, 0)
        merged["bus"]["capacity"] = max(merged["bus"]["capacity"],
                                        bus.get("capacity", 0))
        for kind, n in snap.get("counts_by_kind", {}).items():
            merged["counts_by_kind"][kind] = \
                merged["counts_by_kind"].get(kind, 0) + n
        registry.merge(snap.get("metrics", {}))
    merged["metrics"] = registry.checkpoint()
    return merged


__all__.append("merge_telemetry_dicts")
