"""Low-overhead metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric side of the telemetry subsystem — where the
event bus answers *what happened when*, the registry answers *how much,
how often, how distributed*.  It follows the Prometheus data model
(metric name + label set + samples) because that is what the text-format
exporter in :mod:`repro.telemetry.export` renders, but it has no network
or wire dependencies of its own.

Two kinds of state live here:

* **live instruments** — counters and histograms incremented at emit
  points (indicator hits, union boosts, suspensions, per-OpKind wall
  time).  These are lifetime counters: engine checkpoints carry them and
  restore re-seeds them, the same way the digest cache's counters travel
  (buffered *events* never checkpoint — see ``AnalysisEngine.checkpoint``).
* **snapshots** — the existing :mod:`repro.perfstats` counters, absorbed
  behind a compatibility shim: :func:`collect_perfstats` is the canonical
  implementation of ``repro.perfstats.collect`` (which now delegates
  here), and :func:`engine_snapshot` mirrors the same counters into
  registry gauges so one Prometheus scrape carries both worlds.

Bucket layouts are fixed (not configurable per-run) so campaign-wide
merges are always bucket-compatible.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from ..perfstats import PerfStats

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "FILES_LOST_BUCKETS", "SCORE_BUCKETS", "OP_WALL_US_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "collect_perfstats", "engine_snapshot", "ingest_snapshot",
    "merge_metric_states",
]

#: detection latency measured in files lost before suspension (paper
#: Fig. 3's x-axis: the median working-sample loss is ~10 files)
FILES_LOST_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 5, 8, 13, 21, 34, 55)
#: reputation score at the moment of suspension (threshold 200 default,
#: union threshold 180)
SCORE_BUCKETS: Tuple[float, ...] = (150, 180, 200, 220, 250, 300, 400, 600)
#: measured post_operation wall time per operation, microseconds
OP_WALL_US_BUCKETS: Tuple[float, ...] = (5, 10, 25, 50, 100, 250, 1000,
                                         5000, 20000)
#: pending inspections drained per InspectionScheduler flush
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: bounded ingest-queue occupancy at admission time (repro.ingest)
QUEUE_DEPTH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter series (one value per label set)."""

    metric_type = "counter"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._series.items())

    # -- checkpoint ----------------------------------------------------------

    def state(self) -> list:
        return [[list(map(list, key)), value]
                for key, value in self.series()]

    def load(self, state: list) -> None:
        self._series = {tuple(tuple(pair) for pair in key): float(value)
                        for key, value in state}


class Gauge(Counter):
    """Point-in-time value series; same storage, set instead of inc."""

    metric_type = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: str) -> None:
        self._series[_label_key(labels)] = value


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)   # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Fixed-bucket histogram series (cumulative buckets at render time).

    ``bounds`` are upper bucket edges; an implicit ``+Inf`` bucket always
    exists.  Counts are stored per-bucket (not cumulative) so merging two
    histograms is element-wise addition; the Prometheus renderer emits
    the cumulative form the exposition format requires.
    """

    metric_type = "histogram"
    __slots__ = ("name", "help", "bounds", "_series")

    def __init__(self, name: str, bounds: Tuple[float, ...],
                 help: str = "") -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.bounds))
        series.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        series.sum += value
        series.count += 1

    def series(self) -> List[Tuple[LabelKey, _HistogramSeries]]:
        return sorted(self._series.items(), key=lambda kv: kv[0])

    def count(self, **labels: str) -> int:
        series = self._series.get(_label_key(labels))
        return 0 if series is None else series.count

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    # -- checkpoint ----------------------------------------------------------

    def state(self) -> list:
        return [[list(map(list, key)),
                 {"buckets": list(s.bucket_counts), "sum": s.sum,
                  "count": s.count}]
                for key, s in self.series()]

    def load(self, state: list) -> None:
        self._series = {}
        for key, payload in state:
            series = _HistogramSeries(len(self.bounds))
            series.bucket_counts = [int(n) for n in payload["buckets"]]
            series.sum = float(payload["sum"])
            series.count = int(payload["count"])
            self._series[tuple(tuple(pair) for pair in key)] = series


class MetricsRegistry:
    """Named metric instruments, get-or-create, render- and merge-able."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def _register(self, cls, name: str, help: str, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args, help=help) if args \
                else cls(name, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{metric.metric_type}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, bounds: Tuple[float, ...],
                  help: str = "") -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{metric.metric_type}")
        elif metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"metric {name!r} bucket bounds differ")
        return metric

    def get(self, name: str):
        return self._metrics.get(name)

    def metrics(self) -> List[object]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # -- checkpoint / merge ---------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-serialisable lifetime state of every instrument.

        This is what engine checkpoints embed: counters and histogram
        tallies travel, buffered events never do.
        """
        out = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"type": metric.metric_type, "help": metric.help,
                     "state": metric.state()}
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            out[name] = entry
        return out

    def restore(self, state: dict) -> None:
        """Load a :meth:`checkpoint` snapshot, replacing current values."""
        for name, entry in state.items():
            kind = entry["type"]
            if kind == "histogram":
                metric = self.histogram(name, tuple(entry["bounds"]),
                                        help=entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, help=entry.get("help", ""))
            else:
                metric = self.counter(name, help=entry.get("help", ""))
            metric.load(entry["state"])

    def merge(self, state: dict) -> None:
        """Fold another registry's :meth:`checkpoint` into this one.

        Counters and histogram tallies add; gauges take the incoming
        value (last write wins — campaign merges only use gauges for
        configuration-like values where any sample's reading is valid).
        """
        for name, entry in state.items():
            kind = entry["type"]
            if kind == "histogram":
                metric = self.histogram(name, tuple(entry["bounds"]),
                                        help=entry.get("help", ""))
                for key, payload in entry["state"]:
                    label_key = tuple(tuple(pair) for pair in key)
                    series = metric._series.get(label_key)
                    if series is None:
                        series = metric._series[label_key] = \
                            _HistogramSeries(len(metric.bounds))
                    for i, n in enumerate(payload["buckets"]):
                        series.bucket_counts[i] += int(n)
                    series.sum += float(payload["sum"])
                    series.count += int(payload["count"])
            elif kind == "gauge":
                metric = self.gauge(name, help=entry.get("help", ""))
                for key, value in entry["state"]:
                    metric._series[tuple(tuple(pair) for pair in key)] = \
                        float(value)
            else:
                metric = self.counter(name, help=entry.get("help", ""))
                for key, value in entry["state"]:
                    label_key = tuple(tuple(pair) for pair in key)
                    metric._series[label_key] = \
                        metric._series.get(label_key, 0.0) + float(value)


def merge_metric_states(states: Iterable[dict]) -> MetricsRegistry:
    """One registry holding the sum of many :meth:`checkpoint` payloads."""
    merged = MetricsRegistry()
    for state in states:
        if state:
            merged.merge(state)
    return merged


# ---------------------------------------------------------------------------
# perfstats absorption
# ---------------------------------------------------------------------------

def collect_perfstats(engine) -> PerfStats:
    """Snapshot the engine's hot-path counters into a :class:`PerfStats`.

    Canonical implementation behind the ``repro.perfstats.collect``
    compatibility shim — accepts an ``AnalysisEngine`` or a
    ``CryptoDropMonitor`` (anything with an ``engine`` attribute is
    unwrapped), exactly as the pre-telemetry collector did, so
    ``BENCH_*.json`` schemas and every existing caller keep working.
    """
    engine = getattr(engine, "engine", engine)
    cache_stats = engine.cache.digest_cache.stats()
    return PerfStats(
        digest_cache_hits=cache_stats["hits"],
        digest_cache_misses=cache_stats["misses"],
        digest_cache_evictions=cache_stats["evictions"],
        digest_cache_entries=cache_stats["entries"],
        digest_cache_capacity=cache_stats["capacity"],
        store_hits=cache_stats["store_hits"],
        store_misses=cache_stats["store_misses"],
        deferred_digests=cache_stats["deferred"],
        bytes_digested=cache_stats["bytes_digested"],
        bytes_closed=engine.bytes_closed,
        bytes_inspected=engine.bytes_inspected,
        tracked_files=len(engine.cache),
        detections=len(engine.detections),
        op_counts=dict(engine.op_counts),
        op_wall_us=dict(engine.op_wall_us),
    )


def engine_snapshot(engine,
                    registry: Optional[MetricsRegistry] = None
                    ) -> MetricsRegistry:
    """Mirror the perfstats counters into registry gauges/counters.

    Lets one Prometheus exposition carry both the live telemetry
    instruments and the engine's operational counters.  Idempotent over a
    registry: gauges are set, not accumulated.
    """
    stats = collect_perfstats(engine)
    registry = registry if registry is not None else MetricsRegistry()
    cache = registry.gauge("cryptodrop_digest_cache",
                           "digest LRU traffic and occupancy")
    cache.set(stats.digest_cache_hits, event="hits")
    cache.set(stats.digest_cache_misses, event="misses")
    cache.set(stats.digest_cache_evictions, event="evictions")
    cache.set(stats.digest_cache_entries, event="entries")
    cache.set(stats.digest_cache_capacity, event="capacity")
    store = registry.gauge("cryptodrop_baseline_store_lookups",
                           "corpus BaselineStore resolution traffic")
    store.set(stats.store_hits, result="hit")
    store.set(stats.store_misses, result="miss")
    registry.gauge("cryptodrop_deferred_digests",
                   "inspections whose digest was deferred (lazy close)"
                   ).set(stats.deferred_digests)
    volume = registry.gauge("cryptodrop_bytes",
                            "content bytes through the inspection paths")
    volume.set(stats.bytes_digested, path="digested")
    volume.set(stats.bytes_closed, path="closed")
    volume.set(stats.bytes_inspected, path="inspected")
    registry.gauge("cryptodrop_tracked_files",
                   "baselines currently tracked").set(stats.tracked_files)
    registry.gauge("cryptodrop_detections",
                   "threshold crossings recorded").set(stats.detections)
    ops = registry.gauge("cryptodrop_ops_seen",
                         "operations handled, per kind")
    for op_kind, count in sorted(stats.op_counts.items()):
        ops.set(count, kind=op_kind)
    wall = registry.gauge("cryptodrop_op_wall_us_sum",
                          "measured post_operation wall time per kind, "
                          "microseconds")
    for op_kind, total_us in sorted(stats.op_wall_us.items()):
        wall.set(round(total_us, 3), kind=op_kind)
    eng = getattr(engine, "engine", engine)
    if callable(getattr(eng, "stream_stats", None)):
        streaming = eng.stream_stats()
        streams = registry.gauge(
            "cryptodrop_stream_digests",
            "incremental close-path digest stream lifecycle")
        streams.set(streaming["started"], event="started")
        streams.set(streaming["finalized"], event="finalized")
        streams.set(streaming["in_flight"], event="in_flight")
        volume.set(streaming["bytes_streamed"], path="streamed")
        fallbacks = registry.gauge(
            "cryptodrop_stream_digest_fallbacks",
            "streams abandoned for the whole-content path, per reason")
        for reason, count in sorted(streaming["fallbacks"].items()):
            fallbacks.set(count, reason=reason)
    baseline_store = getattr(getattr(eng, "cache", None),
                             "baseline_store", None)
    if baseline_store is not None and \
            callable(getattr(baseline_store, "page_stats", None)):
        paging = baseline_store.page_stats()
        registry.gauge("cryptodrop_store_page_ins",
                       "baseline-store records deserialised from disk "
                       "(mmap backend; 0 for resident dict storage)"
                       ).set(paging.get("page_ins", 0))
        registry.gauge("cryptodrop_store_resident_entries",
                       "baseline-store entries resident in memory"
                       ).set(paging.get("resident", 0),
                             storage=paging.get("storage", "dict"))
    scheduler = getattr(eng, "scheduler", None)
    if scheduler is not None:
        registry.gauge(
            "cryptodrop_scheduler_pending_bytes",
            "content bytes retained by deferred (pending) inspections"
            ).set(scheduler.pending_bytes)
    return registry


#: breaker states as gauge values (closed is healthy, open is tripped)
_BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


def ingest_snapshot(manager,
                    registry: Optional[MetricsRegistry] = None
                    ) -> MetricsRegistry:
    """Mirror an ingest session's per-tenant counters into gauges.

    The ingest analogue of :func:`engine_snapshot`: accepts an
    :class:`~repro.ingest.EndpointSessionManager` (anything exposing its
    ``stats()`` shape) and sets tenant-labelled gauges for queue
    occupancy, shed/blocked admission outcomes, applied events, restart
    counts, and breaker state, so one Prometheus exposition carries the
    whole resilience picture.  Idempotent over a registry.
    """
    stats = manager.stats() if callable(getattr(manager, "stats", None)) \
        else manager
    registry = registry if registry is not None else MetricsRegistry()
    registry.gauge("cryptodrop_ingest_ticks",
                   "scheduler ticks run by the session manager"
                   ).set(stats.get("ticks", 0))
    depth = registry.gauge("cryptodrop_ingest_queue_depth",
                           "bounded ingest-queue occupancy, per tenant")
    applied = registry.gauge("cryptodrop_ingest_events_applied",
                             "endpoint events applied to the detector, "
                             "per tenant")
    shed = registry.gauge("cryptodrop_ingest_shed_events",
                          "events shed under overload, per tenant")
    blocked = registry.gauge("cryptodrop_ingest_blocked_admissions",
                             "admissions refused by backpressure, "
                             "per tenant")
    restarts = registry.gauge("cryptodrop_ingest_shard_restarts",
                              "watchdog restarts, per tenant")
    breaker = registry.gauge("cryptodrop_ingest_breaker_state",
                             "circuit-breaker state per tenant "
                             "(0=closed, 1=half_open, 2=open)")
    for tenant, shard in sorted(stats.get("tenants", {}).items()):
        queue = shard.get("queue", {})
        depth.set(queue.get("depth", 0), tenant=tenant)
        applied.set(shard.get("applied", 0), tenant=tenant)
        shed.set(queue.get("shed", 0), tenant=tenant)
        blocked.set(queue.get("blocked", 0), tenant=tenant)
        restarts.set(shard.get("restarts", 0), tenant=tenant)
        state = (shard.get("breaker") or {}).get("state", "closed")
        breaker.set(_BREAKER_STATE_VALUES.get(state, 0), tenant=tenant)
    return registry
