"""Typed detection-telemetry events and the bounded event bus.

CryptoDrop's value proposition is *early* warning, so the interesting
questions about a run are temporal: when did each indicator fire, how did
the reputation score climb toward the union boost, which close actually
resolved its baseline from the corpus store.  Final verdicts cannot answer
those; a structured event stream can.

Design constraints, in order:

1. **Disabled means free.**  Telemetry defaults off and every emit point
   in the hot paths is guarded by a single ``is None`` check on the
   engine's session slot — no event object is ever constructed, no
   timestamp read, no callable invoked.  The bench harness gates this at
   <2% on the close-heavy workload (``telemetry_overhead`` in
   ``BENCH_4.json``).
2. **Bounded memory.**  :class:`EventBus` is a ring buffer: a monitor
   left attached for days keeps the newest ``capacity`` events and counts
   what it dropped, rather than growing without limit.  Subscribers see
   every event at emit time regardless of ring evictions, which is how
   the JSONL exporter archives unbounded streams.
3. **Replayable.**  Every event serialises to a flat JSON-safe dict via
   :meth:`TelemetryEvent.as_dict` and round-trips through
   :func:`event_from_dict`, so an archived incident feeds the timeline
   builder exactly like a live bus does.

Timebase: ``timestamp_us`` is the *simulated* VFS clock (the same
timebase as :class:`~repro.core.scoring.ScoreEvent`), so events line up
with score journals and detection records, and replays are deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Dict, Iterable, List, Optional, Type

__all__ = [
    "TelemetryEvent", "IndicatorFired", "ScoreDelta", "UnionBoost",
    "ProcessSuspended", "BaselineResolved", "CacheEvicted",
    "DigestBatchFlushed", "StreamDigestFinalized",
    "FaultInjected", "StoreBuilt", "StoreOpened", "StorePageIn",
    "LoadShed", "BreakerTripped", "ShardRestarted", "EventBus",
    "EVENT_TYPES", "event_from_dict", "events_as_dicts",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base of all telemetry events: a kind tag plus a timestamp."""

    #: class-level event-kind tag, stable across versions (wire format)
    kind: ClassVar[str] = ""

    timestamp_us: float

    def as_dict(self) -> dict:
        """Flat JSON-safe encoding, ``kind`` included."""
        out = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class IndicatorFired(TelemetryEvent):
    """One indicator hit, before scoreboard folding (engine ``_apply``)."""

    kind: ClassVar[str] = "indicator_fired"

    root_pid: int = 0
    indicator: str = ""
    points: float = 0.0
    path: str = ""
    detail: str = ""


@dataclass(frozen=True)
class ScoreDelta(TelemetryEvent):
    """One scoreboard mutation with the resulting cumulative score."""

    kind: ClassVar[str] = "score_delta"

    root_pid: int = 0
    indicator: str = ""
    points: float = 0.0
    score_after: float = 0.0
    path: str = ""


@dataclass(frozen=True)
class UnionBoost(TelemetryEvent):
    """Union indication fired: bonus applied, threshold lowered (§V-B2)."""

    kind: ClassVar[str] = "union_boost"

    root_pid: int = 0
    bonus: float = 0.0
    score_after: float = 0.0
    threshold_after: float = 0.0
    path: str = ""


@dataclass(frozen=True)
class ProcessSuspended(TelemetryEvent):
    """The detection verdict: threshold crossed, policy consulted."""

    kind: ClassVar[str] = "process_suspended"

    root_pid: int = 0
    process_name: str = ""
    score: float = 0.0
    threshold: float = 0.0
    union_fired: bool = False
    suspended: bool = True
    trigger_op: str = ""
    trigger_path: str = ""


@dataclass(frozen=True)
class BaselineResolved(TelemetryEvent):
    """One inspection resolved, tagged by where the digest came from.

    ``source`` is one of ``lru`` (digest-cache hit), ``store`` (corpus
    BaselineStore hit), ``live`` (digested now), or ``deferred`` (lazy
    close path: type-only, digest postponed).
    """

    kind: ClassVar[str] = "baseline_resolved"

    source: str = ""
    size: int = 0
    path: str = ""


@dataclass(frozen=True)
class CacheEvicted(TelemetryEvent):
    """The digest LRU pushed out its least-recently-used entry."""

    kind: ClassVar[str] = "cache_evicted"

    entries: int = 0
    capacity: int = 0


@dataclass(frozen=True)
class DigestBatchFlushed(TelemetryEvent):
    """The InspectionScheduler materialised a pending-digest batch.

    ``pending`` is how many deferred inspections the flush drained;
    ``live`` how many actually reached the batched digest kernel (the
    rest resolved from the LRU or the corpus store); ``bytes_live`` the
    content bytes the kernel digested.
    """

    kind: ClassVar[str] = "digest_batch_flushed"

    pending: int = 0
    live: int = 0
    bytes_live: int = 0


@dataclass(frozen=True)
class StreamDigestFinalized(TelemetryEvent):
    """A close served its similarity digest from an incremental
    per-handle stream (O(tail) finalize — the content was never re-read).

    ``chunks`` is how many write chunks the stream consumed; closes that
    instead fell back to the whole-content path are visible through the
    ``cryptodrop_stream_digest_fallback_total`` counter, per reason.
    """

    kind: ClassVar[str] = "stream_digest_finalized"

    path: str = ""
    size: int = 0
    features: int = 0
    chunks: int = 0


@dataclass(frozen=True)
class FaultInjected(TelemetryEvent):
    """The fault layer misbehaved on purpose (``repro.faults``)."""

    kind: ClassVar[str] = "fault_injected"

    fault: str = ""
    op_index: int = 0
    op_kind: str = ""
    path: str = ""


@dataclass(frozen=True)
class StoreBuilt(TelemetryEvent):
    """A corpus BaselineStore finished digesting (once per campaign)."""

    kind: ClassVar[str] = "store_built"

    entries: int = 0
    total_bytes: int = 0
    build_seconds: float = 0.0
    backend: str = ""


@dataclass(frozen=True)
class StoreOpened(TelemetryEvent):
    """A persistent baseline store was opened from disk (``repro.store``).

    ``open_seconds`` is the header-parse + mmap cost — O(1) in entry
    count, which is the format's headline property; nothing else is
    read until lookups page records in (see :class:`StorePageIn`).
    """

    kind: ClassVar[str] = "store_opened"

    entries: int = 0
    total_bytes: int = 0
    path: str = ""
    open_seconds: float = 0.0
    hot_entries: int = 0


@dataclass(frozen=True)
class StorePageIn(TelemetryEvent):
    """The mmap store deserialised one record on first touch.

    ``resident`` is the hot-entry LRU occupancy after the page-in —
    bounded by the ``store_hot_entries`` knob, never the corpus size.
    """

    kind: ClassVar[str] = "store_page_in"

    size: int = 0
    resident: int = 0


@dataclass(frozen=True)
class LoadShed(TelemetryEvent):
    """The ingest queue shed one event under overload (sampling mode).

    Every shed decision is observable: the shard drops the event *and*
    emits exactly one of these, tenant-tagged, so degraded-mode
    detection is never silent (``docs/robustness.md`` §4).
    """

    kind: ClassVar[str] = "load_shed"

    tenant: str = ""
    seq: int = 0
    op_kind: str = ""
    queue_depth: int = 0


@dataclass(frozen=True)
class BreakerTripped(TelemetryEvent):
    """A per-stream circuit breaker opened after repeated transient
    inspection failures; ``cooldown_ticks`` is the jittered exponential
    backoff before the next half-open probe."""

    kind: ClassVar[str] = "breaker_tripped"

    tenant: str = ""
    failures: int = 0
    trips: int = 0
    cooldown_ticks: int = 0


@dataclass(frozen=True)
class ShardRestarted(TelemetryEvent):
    """The watchdog restarted a wedged/killed shard from its checkpoint.

    ``replayed`` is the journal-tail length re-applied to bring the
    restored monitor back to the kill point; ``recovery_ticks`` how many
    scheduler ticks the shard was down before the watchdog acted.
    """

    kind: ClassVar[str] = "shard_restarted"

    tenant: str = ""
    reason: str = ""
    replayed: int = 0
    recovery_ticks: int = 0
    restarts: int = 0


EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (IndicatorFired, ScoreDelta, UnionBoost, ProcessSuspended,
                BaselineResolved, CacheEvicted, DigestBatchFlushed,
                StreamDigestFinalized, FaultInjected, StoreBuilt,
                StoreOpened, StorePageIn,
                LoadShed, BreakerTripped, ShardRestarted)
}


def event_from_dict(entry: dict) -> TelemetryEvent:
    """Inverse of :meth:`TelemetryEvent.as_dict`."""
    kind = entry.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown telemetry event kind {kind!r}")
    kwargs = {f.name: entry[f.name] for f in fields(cls) if f.name in entry}
    return cls(**kwargs)


class EventBus:
    """Bounded ring buffer of telemetry events with pluggable subscribers.

    The ring keeps the newest ``capacity`` events for post-hoc timeline
    building; ``dropped`` counts ring evictions so consumers know when a
    stream was truncated.  Subscribers (e.g. the JSONL writer) are called
    synchronously at emit time with every event, before any ring
    eviction, so they observe the complete stream.

    ``clock_us`` is the bus's notion of "now" on the simulated timebase:
    the engine refreshes it from each operation's timestamp, so emitters
    without operation context (the digest cache, the baseline store)
    still stamp events consistently.
    """

    __slots__ = ("capacity", "emitted", "dropped", "clock_us",
                 "_ring", "_subscribers")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, int(capacity))
        self.emitted = 0
        self.dropped = 0
        self.clock_us = 0.0
        self._ring: "deque[TelemetryEvent]" = deque(maxlen=self.capacity)
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, event: TelemetryEvent) -> None:
        self.emitted += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, fn: Callable[[TelemetryEvent], None]
                  ) -> Callable[[], None]:
        """Register ``fn`` for every future event; returns an unsubscribe."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self._subscribers:
                self._subscribers.remove(fn)
        return unsubscribe

    def events(self, kind: Optional[str] = None) -> List[TelemetryEvent]:
        """Ring contents in emit order, optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop ring contents; lifetime counters survive."""
        self._ring.clear()

    def stats(self) -> dict:
        return {"capacity": self.capacity, "buffered": len(self._ring),
                "emitted": self.emitted, "dropped": self.dropped}


def events_as_dicts(events: Iterable[TelemetryEvent]) -> List[dict]:
    """Serialise an event sequence (helper shared by exporters/results)."""
    return [event.as_dict() for event in events]
