"""Per-process detection narratives rebuilt from the telemetry stream.

The event bus records *everything that happened*; this module answers the
analyst's question — *how did this process get caught?* — by folding the
stream into a :class:`DetectionTimeline`: the ordered indicator hits with
their score contributions, the union transition, and the suspension
verdict, for one process family.

It is also the one home for indicator attribution arithmetic.  Three
shapes of score journal exist in the repo (``ScoreEvent`` rows on the
scoreboard, ``(timestamp, score, indicator)`` trajectory tuples on
``BenignResult``, and ``ScoreDelta`` telemetry events) and the examples
used to re-derive per-indicator totals from each shape independently;
:func:`indicator_totals` accepts all three so that bookkeeping lives in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .events import (ProcessSuspended, ScoreDelta, TelemetryEvent,
                     UnionBoost)

__all__ = ["TimelineEntry", "DetectionTimeline", "build_timeline",
           "timelines_by_process", "indicator_totals",
           "merge_indicator_totals"]


@dataclass(frozen=True)
class TimelineEntry:
    """One step of a process's score trajectory."""

    timestamp_us: float
    indicator: str
    points: float
    score_after: float
    path: str = ""

    @property
    def is_union(self) -> bool:
        return self.indicator == "union"


@dataclass
class DetectionTimeline:
    """The detection narrative for one process family."""

    root_pid: int
    process_name: str = ""
    entries: List[TimelineEntry] = field(default_factory=list)
    union: Optional[UnionBoost] = None
    suspension: Optional[ProcessSuspended] = None
    #: filled in post-assessment by the caller (damage is only known
    #: after the run); None until then
    files_lost: Optional[int] = None

    @property
    def detected(self) -> bool:
        return self.suspension is not None

    @property
    def final_score(self) -> float:
        if self.suspension is not None:
            return self.suspension.score
        return self.entries[-1].score_after if self.entries else 0.0

    @property
    def union_fired(self) -> bool:
        return self.union is not None

    def files_touched(self) -> List[str]:
        """Unique scoring paths in first-hit order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            if entry.path and entry.path not in seen:
                seen[entry.path] = None
        return list(seen)

    def score_trajectory(self) -> List[tuple]:
        """``(timestamp_us, cumulative_score)`` pairs, emit order."""
        return [(e.timestamp_us, e.score_after) for e in self.entries]

    def indicator_totals(self) -> Dict[str, float]:
        return indicator_totals(self.entries)

    def render(self, max_rows: int = 0) -> str:
        """Human-readable narrative (the ``detection_timeline`` example)."""
        name = self.process_name or f"pid {self.root_pid}"
        lines = [f"detection timeline — {name} (root pid {self.root_pid})"]
        entries = self.entries
        elided = 0
        if max_rows and len(entries) > max_rows:
            head = max_rows // 2
            tail = max_rows - head
            elided = len(entries) - max_rows
            entries = entries[:head] + entries[-tail:]
        cut = len(entries) - (max_rows - max_rows // 2) if elided else -1
        for i, e in enumerate(entries):
            if elided and i == cut:
                lines.append(f"  ... {elided} events elided ...")
            marker = "*" if e.is_union else " "
            lines.append(
                f" {marker}t={e.timestamp_us/1e6:10.3f}s "
                f"{e.indicator:<12} {e.points:+7.1f} -> {e.score_after:7.1f}"
                f"  {e.path}")
        if self.union is not None:
            lines.append(
                f"  union indication: +{self.union.bonus:.0f} bonus, "
                f"threshold lowered to {self.union.threshold_after:.0f}")
        if self.suspension is not None:
            s = self.suspension
            verb = "suspended" if s.suspended else "flagged (alert-only)"
            lines.append(
                f"  {verb} at score {s.score:.1f} >= "
                f"threshold {s.threshold:.0f} on {s.trigger_op} "
                f"{s.trigger_path}")
            if self.files_lost is not None:
                lines.append(f"  files lost before suspension: "
                             f"{self.files_lost}")
        else:
            lines.append(f"  no detection (final score "
                         f"{self.final_score:.1f})")
        totals = self.indicator_totals()
        if totals:
            ranked = sorted(totals.items(), key=lambda kv: -kv[1])
            lines.append("  attribution: " + ", ".join(
                f"{ind}={pts:.0f}" for ind, pts in ranked))
        return "\n".join(lines)


def build_timeline(events: Iterable[TelemetryEvent],
                   root_pid: Optional[int] = None) -> DetectionTimeline:
    """Fold an event stream into one process's timeline.

    With ``root_pid=None`` the subject is picked automatically: the first
    suspended process, else the process with the highest final score —
    which in a single-sample run is the sample itself.
    """
    per_pid = timelines_by_process(events)
    if not per_pid:
        return DetectionTimeline(root_pid=root_pid or 0)
    if root_pid is not None:
        return per_pid.get(root_pid, DetectionTimeline(root_pid=root_pid))
    for timeline in per_pid.values():
        if timeline.detected:
            return timeline
    return max(per_pid.values(), key=lambda t: t.final_score)


def timelines_by_process(events: Iterable[TelemetryEvent]
                         ) -> Dict[int, DetectionTimeline]:
    """All per-process timelines present in an event stream."""
    out: Dict[int, DetectionTimeline] = {}

    def timeline(pid: int) -> DetectionTimeline:
        t = out.get(pid)
        if t is None:
            t = out[pid] = DetectionTimeline(root_pid=pid)
        return t

    for event in events:
        if isinstance(event, ScoreDelta):
            timeline(event.root_pid).entries.append(TimelineEntry(
                event.timestamp_us, event.indicator, event.points,
                event.score_after, event.path))
        elif isinstance(event, UnionBoost):
            t = timeline(event.root_pid)
            t.union = event
            t.entries.append(TimelineEntry(
                event.timestamp_us, "union", event.bonus,
                event.score_after, event.path))
        elif isinstance(event, ProcessSuspended):
            t = timeline(event.root_pid)
            if t.suspension is None:
                t.suspension = event
            if event.process_name and not t.process_name:
                t.process_name = event.process_name
    return out


def indicator_totals(history) -> Dict[str, float]:
    """Total reputation points per indicator, from any journal shape.

    Accepts ``ScoreEvent`` rows / :class:`TimelineEntry` / ``ScoreDelta``
    events (anything with ``indicator`` and ``points``), or the
    ``BenignResult.trajectory`` tuple shape ``(timestamp_us, score_after,
    indicator)`` where per-event points are recovered from consecutive
    cumulative scores (legacy 2-tuples lack the indicator and are
    skipped).
    """
    totals: Dict[str, float] = {}
    previous_score = 0.0
    for entry in history:
        if isinstance(entry, tuple):
            if len(entry) < 3:
                previous_score = entry[1] if len(entry) > 1 else 0.0
                continue
            indicator = entry[2]
            points = entry[1] - previous_score
            previous_score = entry[1]
        else:
            indicator = entry.indicator
            points = entry.points
        if not indicator:
            continue
        totals[indicator] = totals.get(indicator, 0.0) + points
    return totals


def merge_indicator_totals(totals: Iterable[Dict[str, float]]
                           ) -> Dict[str, float]:
    """Fold many per-sample attribution dicts into one (campaign view)."""
    merged: Dict[str, float] = {}
    for one in totals:
        for indicator, points in one.items():
            merged[indicator] = merged.get(indicator, 0.0) + points
    return merged
