"""Telemetry exporters: JSONL event logs and Prometheus text format.

Two consumers, two formats:

* **JSONL** for the event stream — one event per line, append-friendly,
  replayable through :func:`read_jsonl` / ``event_from_dict`` so an
  archived incident feeds the timeline builder exactly like a live bus.
  :class:`JsonlWriter` doubles as a bus subscriber, which is how streams
  larger than the ring buffer are archived without loss.
* **Prometheus text exposition** for the metrics registry — the format
  every scraping stack speaks.  :func:`render_prometheus` emits the
  0.0.4 text format (HELP/TYPE headers, cumulative ``_bucket`` series
  with ``le`` labels, ``_sum``/``_count``); :func:`validate_exposition`
  is a small structural parser used by the tests so "parses as valid
  exposition" is checked in-repo, without a prometheus client dep.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Iterable, List, Optional, Union

from .events import TelemetryEvent, event_from_dict
from .metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "JsonlWriter", "write_jsonl", "read_jsonl",
    "render_prometheus", "validate_exposition",
]


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------

class JsonlWriter:
    """Append events to a JSONL file; usable as an ``EventBus`` subscriber.

    The file handle opens lazily on the first event and is line-buffered
    flushed per event, so a crashed run still leaves a readable log (the
    same durability posture as ``sandbox.journal``).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.written = 0
        self._fh: Optional[IO[str]] = None

    def __call__(self, event: TelemetryEvent) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
        self._fh.flush()
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_jsonl(events: Iterable[TelemetryEvent],
                path: Union[str, Path]) -> int:
    """Write a finished event sequence in one pass; returns lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
            n += 1
    return n


def read_jsonl(path: Union[str, Path]) -> List[TelemetryEvent]:
    """Load an archived event log back into typed events."""
    events: List[TelemetryEvent] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ---------------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")

def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels_text(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every registry instrument as text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.metric_type}")
        if isinstance(metric, Histogram):
            for key, series in metric.series():
                cumulative = 0
                for bound, n in zip(metric.bounds + (math.inf,),
                                    series.bucket_counts):
                    cumulative += n
                    pairs = key + (("le", _format_value(bound)),)
                    lines.append(f"{metric.name}_bucket"
                                 f"{_labels_text(pairs)} {cumulative}")
                lines.append(f"{metric.name}_sum{_labels_text(key)} "
                             f"{_format_value(series.sum)}")
                lines.append(f"{metric.name}_count{_labels_text(key)} "
                             f"{series.count}")
        elif isinstance(metric, Counter):   # Gauge subclasses Counter
            for key, value in metric.series():
                lines.append(f"{metric.name}{_labels_text(key)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text: str) -> List[str]:
    """Structurally check Prometheus text format; returns problems found.

    Covers what the tests (and a scraper) care about: declared TYPEs,
    samples only for declared metrics, parseable label blocks and float
    values, histogram ``le`` buckets cumulative and ``_count`` equal to
    the ``+Inf`` bucket.
    """
    problems: List[str] = []
    declared: dict = {}
    bucket_state: dict = {}
    counts: dict = {}

    def base_name(sample: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample.endswith(suffix) and sample[:-len(suffix)] in declared \
                    and declared[sample[:-len(suffix)]] == "histogram":
                return sample[:-len(suffix)]
        return sample

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "untyped"):
                problems.append(f"line {lineno}: malformed TYPE line")
            else:
                declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {lineno}: unknown comment form")
            continue
        # sample line: name{labels} value
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            problems.append(f"line {lineno}: no value")
            continue
        if value_part not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_part)
            except ValueError:
                problems.append(f"line {lineno}: bad value {value_part!r}")
                continue
        labels = {}
        if "{" in name_part:
            if not name_part.endswith("}"):
                problems.append(f"line {lineno}: unterminated label block")
                continue
            name, _, label_body = name_part.partition("{")
            for chunk in label_body[:-1].split(","):
                if not chunk:
                    continue
                lname, eq, lvalue = chunk.partition("=")
                if eq != "=" or not (lvalue.startswith('"')
                                     and lvalue.endswith('"')):
                    problems.append(f"line {lineno}: bad label {chunk!r}")
                    break
                labels[lname] = lvalue[1:-1]
        else:
            name = name_part
        base = base_name(name)
        if base not in declared:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE")
            continue
        if declared[base] == "histogram":
            series_key = (base, tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le")))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(f"line {lineno}: bucket without le")
                    continue
                cumulative = float("inf") if labels["le"] == "+Inf" \
                    else float(value_part)
                prev = bucket_state.get(series_key)
                observed = float(value_part)
                if prev is not None and observed < prev:
                    problems.append(
                        f"line {lineno}: non-cumulative histogram buckets")
                bucket_state[series_key] = observed
                if labels["le"] == "+Inf":
                    counts.setdefault(series_key, {})["inf"] = observed
            elif name.endswith("_count"):
                counts.setdefault(series_key, {})["count"] = \
                    float(value_part)
    for series_key, seen in counts.items():
        if "inf" in seen and "count" in seen and seen["inf"] != seen["count"]:
            problems.append(
                f"{series_key[0]}: _count != +Inf bucket")
    return problems
