"""Windows-semantics virtual paths.

The CryptoDrop paper targets Windows, where paths are case-insensitive but
case-preserving, use backslash separators, and are rooted at a drive letter.
``WinPath`` reproduces exactly the semantics the detector and the workload
simulators need, without depending on the host operating system:

* parsing of both ``\\`` and ``/`` separators,
* case-insensitive equality/hashing with case preservation for display,
* prefix tests (``is_within``) used to scope the protected documents tree,
* cheap parent/name/suffix accessors.

Paths are immutable value objects.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = ["WinPath", "DOCUMENTS", "TEMP", "SYSTEM32", "APPDATA"]


def _split(raw: str) -> Tuple[str, Tuple[str, ...]]:
    """Split ``raw`` into (drive, parts). Accepts / or \\ separators."""
    text = raw.replace("/", "\\")
    drive = "C:"
    if len(text) >= 2 and text[1] == ":":
        drive = text[0].upper() + ":"
        text = text[2:]
    parts = tuple(piece for piece in text.split("\\") if piece not in ("", "."))
    for piece in parts:
        if piece == "..":
            raise ValueError(f"relative traversal not supported: {raw!r}")
    return drive, parts


class WinPath:
    """An absolute, normalised, case-insensitive Windows path."""

    __slots__ = ("drive", "parts", "_key")

    def __init__(self, raw: "WinPath | str") -> None:
        if isinstance(raw, WinPath):
            self.drive = raw.drive
            self.parts = raw.parts
            self._key = raw._key
            return
        drive, parts = _split(raw)
        self.drive = drive
        self.parts = parts
        self._key = (drive.lower(), tuple(p.lower() for p in parts))

    # -- construction -----------------------------------------------------

    @classmethod
    def root(cls, drive: str = "C:") -> "WinPath":
        return cls(drive + "\\")

    def joinpath(self, *names: str) -> "WinPath":
        child = WinPath.__new__(WinPath)
        extra = []
        for name in names:
            extra.extend(piece for piece in name.replace("/", "\\").split("\\") if piece)
        child.drive = self.drive
        child.parts = self.parts + tuple(extra)
        child._key = (self._key[0], self._key[1] + tuple(p.lower() for p in extra))
        return child

    def __truediv__(self, name: str) -> "WinPath":
        return self.joinpath(name)

    def with_name(self, name: str) -> "WinPath":
        if not self.parts:
            raise ValueError("root path has no name")
        return self.parent / name

    def with_suffix(self, suffix: str) -> "WinPath":
        stem = self.stem
        return self.with_name(stem + suffix)

    # -- accessors --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.parts[-1] if self.parts else ""

    @property
    def stem(self) -> str:
        name = self.name
        dot = name.rfind(".")
        return name if dot <= 0 else name[:dot]

    @property
    def suffix(self) -> str:
        """Extension including the dot, lower-cased (``.pdf``)."""
        name = self.name
        dot = name.rfind(".")
        return "" if dot <= 0 else name[dot:].lower()

    @property
    def parent(self) -> "WinPath":
        parent = WinPath.__new__(WinPath)
        parent.drive = self.drive
        parent.parts = self.parts[:-1]
        parent._key = (self._key[0], self._key[1][:-1])
        return parent

    @property
    def depth(self) -> int:
        return len(self.parts)

    def ancestors(self) -> Iterable["WinPath"]:
        """Yield every ancestor, nearest first, ending at the drive root."""
        node = self
        while node.parts:
            node = node.parent
            yield node

    def is_within(self, other: "WinPath") -> bool:
        """True if self equals ``other`` or lies underneath it."""
        odrive, oparts = other._key
        sdrive, sparts = self._key
        return sdrive == odrive and sparts[: len(oparts)] == oparts

    def relative_parts(self, ancestor: "WinPath") -> Tuple[str, ...]:
        if not self.is_within(ancestor):
            raise ValueError(f"{self} is not within {ancestor}")
        return self.parts[len(ancestor.parts):]

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WinPath) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __lt__(self, other: "WinPath") -> bool:
        return self._key < other._key

    def __str__(self) -> str:
        return self.drive + "\\" + "\\".join(self.parts)

    def __repr__(self) -> str:
        return f"WinPath({str(self)!r})"


#: Well-known locations used throughout the reproduction.
DOCUMENTS = WinPath(r"C:\Users\victim\Documents")
TEMP = WinPath(r"C:\Users\victim\AppData\Local\Temp")
APPDATA = WinPath(r"C:\Users\victim\AppData\Roaming")
SYSTEM32 = WinPath(r"C:\Windows\System32")
