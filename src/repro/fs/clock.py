"""Simulated clock.

Every filesystem operation advances a deterministic virtual clock by a
modelled base latency plus whatever extra latency the attached filter
drivers (i.e. CryptoDrop's analysis engine) charge.  This gives the
reproduction a replayable notion of time for:

* file timestamps,
* detection-latency reporting,
* the §V-H performance table (added latency per operation class).

Real wall-clock time is never consulted, so runs are bit-for-bit
deterministic.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SimClock", "BASE_LATENCY_US"]

#: Modelled base device latency, microseconds, per operation kind. Values are
#: loosely calibrated to a 2010s-era SATA SSD behind NTFS; only relative
#: ordering matters to the experiments.
BASE_LATENCY_US: Dict[str, float] = {
    "open": 18.0,
    "create": 35.0,
    "read": 22.0,
    "write": 40.0,
    "close": 8.0,
    "rename": 55.0,
    "delete": 30.0,
    "stat": 4.0,
    "list": 12.0,
    "other": 10.0,
}


class SimClock:
    """Monotonic virtual clock measured in microseconds since boot."""

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        return self._now_us

    @property
    def now_s(self) -> float:
        return self._now_us / 1e6

    def advance_us(self, amount_us: float) -> float:
        if amount_us < 0:
            raise ValueError("clock cannot move backwards")
        self._now_us += amount_us
        return self._now_us

    def charge(self, op_kind: str, extra_us: float = 0.0) -> float:
        """Advance by the base latency for ``op_kind`` plus ``extra_us``.

        Returns the new time.  Unknown kinds are charged the ``other`` rate
        so a forgotten entry can never freeze time.
        """
        base = BASE_LATENCY_US.get(op_kind, BASE_LATENCY_US["other"])
        return self.advance_us(base + extra_us)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now_us:.1f}us)"
