"""Filter-driver stack.

A faithful, simplified model of the Windows Filter Manager: an ordered list
of :class:`FilterDriver` instances, each seeing every operation twice —

* **pre-operation**: may return :data:`Decision.DENY` (the single operation
  fails with :class:`OperationDenied`) or :data:`Decision.SUSPEND` (the
  calling process family is paused, the in-flight operation aborted).
  The paper notes the ordering of other installed filters "does not affect
  our system"; we preserve registration order for determinism.
* **post-operation**: observes the completed operation with its results;
  may *also* request suspension (CryptoDrop suspends after observing a write
  that pushes the reputation score past threshold).

Filters additionally report how much latency they charged per operation so
the §V-H performance experiment can attribute overhead.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .events import Decision, FsOperation

__all__ = ["FilterDriver", "FilterStack", "PostVerdict"]


class PostVerdict:
    """Result of a post-operation callback."""

    __slots__ = ("suspend", "reason")

    def __init__(self, suspend: bool = False, reason: str = "") -> None:
        self.suspend = suspend
        self.reason = reason

    ALLOW: "PostVerdict"


PostVerdict.ALLOW = PostVerdict()


class FilterDriver:
    """Base class; concrete filters override any subset of the hooks.

    ``added_latency_us`` lets a filter model its own processing cost; the
    VFS charges it to the simulated clock and records it for performance
    accounting.
    """

    name = "filter"

    def pre_operation(self, op: FsOperation) -> Decision:
        return Decision.ALLOW

    def post_operation(self, op: FsOperation) -> PostVerdict:
        return PostVerdict.ALLOW

    def added_latency_us(self, op: FsOperation) -> float:
        return 0.0


class FilterStack:
    """Ordered collection of filter drivers attached to one VFS."""

    def __init__(self) -> None:
        self._filters: List[FilterDriver] = []
        #: accumulated (filter name, op kind) -> [count, total extra us]
        self.latency_ledger: dict = {}

    def attach(self, filt: FilterDriver) -> None:
        if filt in self._filters:
            raise ValueError(f"filter {filt.name} already attached")
        self._filters.append(filt)

    def detach(self, filt: FilterDriver) -> None:
        self._filters.remove(filt)

    def __iter__(self):
        return iter(self._filters)

    def __len__(self) -> int:
        return len(self._filters)

    # -- dispatch ------------------------------------------------------------

    def run_pre(self, op: FsOperation) -> Tuple[Decision, Optional[FilterDriver], float]:
        """Run pre-op hooks in order.

        Returns (decision, deciding filter, extra latency charged).  The
        first non-ALLOW decision wins and later filters are not consulted,
        matching minifilter short-circuiting.
        """
        extra_us = 0.0
        # Iterate over a snapshot: a hook may attach/detach filters (the
        # fault supervisor swaps a killed monitor mid-run) and the change
        # must only affect subsequent operations.
        for filt in list(self._filters):
            decision = filt.pre_operation(op)
            charged = filt.added_latency_us(op)
            extra_us += charged
            self._ledger(filt, op, charged)
            if decision is not Decision.ALLOW:
                return decision, filt, extra_us
        return Decision.ALLOW, None, extra_us

    def run_post(self, op: FsOperation) -> Tuple[PostVerdict, Optional[FilterDriver], float]:
        """Run post-op hooks; the first suspend verdict wins."""
        extra_us = 0.0
        verdict: PostVerdict = PostVerdict.ALLOW
        decider: Optional[FilterDriver] = None
        for filt in list(self._filters):
            result = filt.post_operation(op)
            charged = filt.added_latency_us(op)
            extra_us += charged
            self._ledger(filt, op, charged)
            if result.suspend and not verdict.suspend:
                verdict = result
                decider = filt
        return verdict, decider, extra_us

    def _ledger(self, filt: FilterDriver, op: FsOperation, charged: float) -> None:
        key = (filt.name, op.kind.latency_key)
        bucket = self.latency_ledger.setdefault(key, [0, 0.0])
        bucket[0] += 1
        bucket[1] += charged
