"""Baseline capture and damage assessment.

The paper's metric is *files lost before detection*: after each run they
"verified the SHA-256 hashes of the documents to ensure they were present
and unmodified" (§V-A).  :class:`BaselineIndex` captures the pristine
corpus, and :func:`assess_damage` classifies every baseline file after a
run as intact, modified, or missing.  New files (ransom notes, Class-C
ciphertext files) are reported separately.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .paths import WinPath
from .vfs import VirtualFileSystem

__all__ = ["BaselineIndex", "DamageReport", "assess_damage"]


class BaselineIndex:
    """SHA-256 map of every file under a protected root at capture time."""

    def __init__(self, vfs: VirtualFileSystem, root: WinPath) -> None:
        self.root = root
        self.hashes: Dict[WinPath, str] = {}
        self.sizes: Dict[WinPath, int] = {}
        for path, node in vfs.peek_walk_files(root):
            self.hashes[path] = hashlib.sha256(bytes(node.data)).hexdigest()
            self.sizes[path] = node.size

    def __len__(self) -> int:
        return len(self.hashes)

    def __contains__(self, path: WinPath) -> bool:
        return path in self.hashes


@dataclass
class DamageReport:
    """Outcome of one run, relative to a :class:`BaselineIndex`."""

    intact: int = 0
    modified: List[WinPath] = field(default_factory=list)
    missing: List[WinPath] = field(default_factory=list)
    new_files: List[WinPath] = field(default_factory=list)

    @property
    def files_lost(self) -> int:
        """The paper's headline metric: baseline files no longer pristine."""
        return len(self.modified) + len(self.missing)

    @property
    def any_damage(self) -> bool:
        return self.files_lost > 0

    def summary(self) -> str:
        return (f"{self.files_lost} lost "
                f"({len(self.modified)} modified, {len(self.missing)} missing), "
                f"{len(self.new_files)} new, {self.intact} intact")


def assess_damage(vfs: VirtualFileSystem, baseline: BaselineIndex,
                  candidates: Optional[Set[WinPath]] = None) -> DamageReport:
    """Compare the tree against ``baseline``.

    ``candidates`` narrows hash verification to paths known to have been
    touched (the VFS journal provides this), which keeps per-sample
    assessment proportional to the attack size rather than the corpus size.
    Existence checks always cover the full baseline so deletions outside the
    candidate set cannot hide.
    """
    report = DamageReport()
    current: Dict[WinPath, bytes] = {}
    for path, node in vfs.peek_walk_files(baseline.root):
        current[path] = node.data  # bytearray reference; hashed lazily
    for path, expected in baseline.hashes.items():
        data = current.get(path)
        if data is None:
            report.missing.append(path)
            continue
        must_hash = candidates is None or path in candidates
        if not must_hash and len(data) == baseline.sizes[path]:
            report.intact += 1
            continue
        if hashlib.sha256(bytes(data)).hexdigest() == expected:
            report.intact += 1
        else:
            report.modified.append(path)
    for path in current:
        if path not in baseline.hashes:
            report.new_files.append(path)
    report.modified.sort()
    report.missing.sort()
    report.new_files.sort()
    return report
