"""Operation recorder — a passive filter for experiment instrumentation.

The experiments need the raw operation stream (Fig. 4's directory-access
trees, Fig. 5's extension frequencies) without perturbing detection, so
the recorder is a filter driver that charges no latency and never vetoes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from .events import FsOperation, OpKind
from .filters import FilterDriver, PostVerdict
from .paths import WinPath

__all__ = ["OpRecord", "OperationRecorder"]


@dataclass(frozen=True)
class OpRecord:
    """A lightweight copy of one completed operation."""

    kind: OpKind
    pid: int
    path: WinPath
    dest_path: Optional[WinPath]
    size: int
    timestamp_us: float


class OperationRecorder(FilterDriver):
    """Record completed operations, optionally filtered by a predicate."""

    name = "recorder"

    def __init__(self, predicate: Optional[Callable[[FsOperation], bool]] = None,
                 kinds: Optional[Set[OpKind]] = None) -> None:
        self.predicate = predicate
        self.kinds = kinds
        self.records: List[OpRecord] = []

    def post_operation(self, op: FsOperation) -> PostVerdict:
        if self.kinds is not None and op.kind not in self.kinds:
            return PostVerdict.ALLOW
        if self.predicate is not None and not self.predicate(op):
            return PostVerdict.ALLOW
        self.records.append(OpRecord(op.kind, op.pid, op.path, op.dest_path,
                                     op.size, op.timestamp_us))
        return PostVerdict.ALLOW

    def clear(self) -> None:
        self.records.clear()

    # -- analysis helpers --------------------------------------------------

    def touched_directories(self, pid: Optional[int] = None,
                            kinds: Tuple[OpKind, ...] = (OpKind.READ,
                                                         OpKind.WRITE)) -> Set[WinPath]:
        """Directories where a matching op touched a file (Fig. 4)."""
        dirs: Set[WinPath] = set()
        for rec in self.records:
            if pid is not None and rec.pid != pid:
                continue
            if rec.kind in kinds:
                dirs.add(rec.path.parent)
        return dirs

    def accessed_extensions(self, pid: Optional[int] = None,
                            kinds: Tuple[OpKind, ...] = (OpKind.READ,
                                                         OpKind.WRITE,
                                                         OpKind.OPEN)) -> Set[str]:
        """Distinct file extensions touched (Fig. 5 counts one per sample)."""
        exts: Set[str] = set()
        for rec in self.records:
            if pid is not None and rec.pid != pid:
                continue
            if rec.kind in kinds and rec.path.suffix:
                exts.add(rec.path.suffix)
        return exts
