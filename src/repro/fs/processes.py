"""Process table.

The virtual machine schedules workloads (ransomware, benign apps) as
processes.  CryptoDrop can suspend "the suspicious process (or family of
processes)" (paper §IV), so the table tracks parentage and exposes
family-rooted aggregation: a family is the tree rooted at the outermost
ancestor that is not a system process.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Optional

from .errors import ProcessSuspended

__all__ = ["ProcessState", "Process", "ProcessTable"]


class ProcessState(enum.Enum):
    """Lifecycle states a process moves through."""
    RUNNING = "running"
    SUSPENDED = "suspended"
    EXITED = "exited"


class Process:
    """One scheduled program instance."""

    __slots__ = ("pid", "name", "image_path", "parent_pid", "state",
                 "started_us", "suspend_reason", "is_system")

    def __init__(self, pid: int, name: str, image_path: str = "",
                 parent_pid: Optional[int] = None, started_us: float = 0.0,
                 is_system: bool = False) -> None:
        self.pid = pid
        self.name = name
        self.image_path = image_path
        self.parent_pid = parent_pid
        self.state = ProcessState.RUNNING
        self.started_us = started_us
        self.suspend_reason = ""
        self.is_system = is_system

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, {self.state.value})"


class ProcessTable:
    """Registry of live and exited processes."""

    def __init__(self) -> None:
        self._pids = itertools.count(1000, 4)  # Windows-style spaced pids
        self._procs: Dict[int, Process] = {}

    def spawn(self, name: str, image_path: str = "",
              parent_pid: Optional[int] = None, started_us: float = 0.0,
              is_system: bool = False) -> Process:
        if parent_pid is not None and parent_pid not in self._procs:
            raise KeyError(f"no such parent pid {parent_pid}")
        proc = Process(next(self._pids), name, image_path, parent_pid,
                       started_us, is_system)
        self._procs[proc.pid] = proc
        return proc

    def get(self, pid: int) -> Process:
        return self._procs[pid]

    def __contains__(self, pid: int) -> bool:
        return pid in self._procs

    def __iter__(self) -> Iterator[Process]:
        return iter(self._procs.values())

    # -- family tracking ---------------------------------------------------

    def family_root(self, pid: int) -> int:
        """Outermost non-system ancestor of ``pid`` (possibly itself)."""
        proc = self._procs[pid]
        root = proc
        while proc.parent_pid is not None and proc.parent_pid in self._procs:
            parent = self._procs[proc.parent_pid]
            if parent.is_system:
                break
            root = parent
            proc = parent
        return root.pid

    def family_members(self, pid: int) -> List[int]:
        root = self.family_root(pid)
        return [p.pid for p in self._procs.values()
                if self.family_root(p.pid) == root]

    # -- state transitions ---------------------------------------------------

    def suspend_family(self, pid: int, reason: str) -> List[int]:
        """Suspend ``pid`` and every process in its family; return pids."""
        members = self.family_members(pid)
        for member in members:
            proc = self._procs[member]
            if proc.state is ProcessState.RUNNING:
                proc.state = ProcessState.SUSPENDED
                proc.suspend_reason = reason
        return members

    def resume_family(self, pid: int) -> None:
        for member in self.family_members(pid):
            proc = self._procs[member]
            if proc.state is ProcessState.SUSPENDED:
                proc.state = ProcessState.RUNNING
                proc.suspend_reason = ""

    def suspended_pids(self) -> List[int]:
        """Pids currently suspended (shard checkpoints diff this set to
        tell pre-checkpoint verdicts from ones in a lost journal tail)."""
        return [p.pid for p in self._procs.values()
                if p.state is ProcessState.SUSPENDED]

    def exit(self, pid: int) -> None:
        self._procs[pid].state = ProcessState.EXITED

    def check_runnable(self, pid: int) -> None:
        """Raise :class:`ProcessSuspended` if ``pid`` may not run."""
        proc = self._procs[pid]
        if proc.state is ProcessState.SUSPENDED:
            raise ProcessSuspended(pid, proc.suspend_reason)
        if proc.state is ProcessState.EXITED:
            raise ProcessSuspended(pid, "process has exited")
