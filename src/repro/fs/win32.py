"""Win32 file-API shim over the virtual filesystem.

§V-E closes with the observation that CryptoDrop "is well-positioned to
stop ransomware which manipulates the filesystem using high-level APIs".
This adapter exposes that high-level surface — ``CreateFile`` with real
creation dispositions, ``ReadFile``/``WriteFile``/``SetFilePointer``,
``MoveFileEx``, ``DeleteFile`` — so workloads can be written against
Windows semantics verbatim.  Every call lowers onto the ordinary VFS
operations and therefore flows through the filter stack like any other
I/O; the shim adds no side channel.

Only the parameters the reproduction's workloads need are implemented;
unsupported flag combinations raise ``ValueError`` rather than guessing.
"""

from __future__ import annotations

from typing import Optional

from .errors import FileExists, FileNotFound
from .handles import Handle
from .paths import WinPath
from .vfs import VirtualFileSystem

__all__ = [
    "Win32Api",
    "GENERIC_READ", "GENERIC_WRITE",
    "CREATE_NEW", "CREATE_ALWAYS", "OPEN_EXISTING", "OPEN_ALWAYS",
    "TRUNCATE_EXISTING",
    "FILE_BEGIN", "FILE_CURRENT", "FILE_END",
    "MOVEFILE_REPLACE_EXISTING",
]

# dwDesiredAccess
GENERIC_READ = 0x80000000
GENERIC_WRITE = 0x40000000

# dwCreationDisposition
CREATE_NEW = 1
CREATE_ALWAYS = 2
OPEN_EXISTING = 3
OPEN_ALWAYS = 4
TRUNCATE_EXISTING = 5

# SetFilePointer origins
FILE_BEGIN = 0
FILE_CURRENT = 1
FILE_END = 2

# MoveFileEx flags
MOVEFILE_REPLACE_EXISTING = 0x1


class Win32Api:
    """Stateful Win32-style facade bound to one process."""

    def __init__(self, vfs: VirtualFileSystem, pid: int) -> None:
        self.vfs = vfs
        self.pid = pid

    # ------------------------------------------------------------------
    # CreateFile and friends
    # ------------------------------------------------------------------

    def CreateFile(self, path: "WinPath | str", desired_access: int,
                   creation_disposition: int) -> Handle:
        """Open/create per the Windows disposition table."""
        path = WinPath(path)
        readable = bool(desired_access & GENERIC_READ)
        writable = bool(desired_access & GENERIC_WRITE)
        if not (readable or writable):
            raise ValueError("desired_access must include read or write")
        mode = ("r" if readable else "") + ("w" if writable else "")
        exists = self.vfs.exists(path)

        if creation_disposition == CREATE_NEW:
            if exists:
                raise FileExists(str(path))
            return self.vfs.open(self.pid, path, mode, create=True)
        if creation_disposition == CREATE_ALWAYS:
            if not writable:
                raise ValueError("CREATE_ALWAYS requires GENERIC_WRITE")
            return self.vfs.open(self.pid, path, mode, create=not exists,
                                 truncate=exists)
        if creation_disposition == OPEN_EXISTING:
            if not exists:
                raise FileNotFound(str(path))
            return self.vfs.open(self.pid, path, mode)
        if creation_disposition == OPEN_ALWAYS:
            return self.vfs.open(self.pid, path, mode, create=not exists)
        if creation_disposition == TRUNCATE_EXISTING:
            if not exists:
                raise FileNotFound(str(path))
            if not writable:
                raise ValueError("TRUNCATE_EXISTING requires GENERIC_WRITE")
            return self.vfs.open(self.pid, path, mode, truncate=True)
        raise ValueError(f"unknown creation disposition "
                         f"{creation_disposition}")

    def ReadFile(self, handle: Handle,
                 n_bytes: Optional[int] = None) -> bytes:
        """Read from the current file pointer."""
        return self.vfs.read(self.pid, handle, n_bytes)

    def WriteFile(self, handle: Handle, data: bytes) -> int:
        """Write at the current file pointer; returns bytes written."""
        return self.vfs.write(self.pid, handle, data)

    def SetFilePointer(self, handle: Handle, distance: int,
                       move_method: int = FILE_BEGIN) -> int:
        """Reposition the file pointer; returns the new position."""
        if move_method == FILE_BEGIN:
            position = distance
        elif move_method == FILE_CURRENT:
            position = handle.pos + distance
        elif move_method == FILE_END:
            position = handle.node.size + distance
        else:
            raise ValueError(f"unknown move method {move_method}")
        if position < 0:
            raise ValueError("negative file pointer")
        self.vfs.seek(self.pid, handle, position)
        return position

    def SetEndOfFile(self, handle: Handle) -> None:
        """Truncate the file at the current pointer."""
        self.vfs.truncate_handle(self.pid, handle, handle.pos)

    def CloseHandle(self, handle: Handle) -> None:
        self.vfs.close(self.pid, handle)

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def MoveFileEx(self, src: "WinPath | str", dst: "WinPath | str",
                   flags: int = 0) -> None:
        self.vfs.rename(self.pid, WinPath(src), WinPath(dst),
                        overwrite=bool(flags & MOVEFILE_REPLACE_EXISTING))

    def DeleteFile(self, path: "WinPath | str") -> None:
        self.vfs.delete(self.pid, WinPath(path))

    def CreateDirectory(self, path: "WinPath | str") -> None:
        self.vfs.mkdir(self.pid, WinPath(path))

    def FindFiles(self, directory: "WinPath | str") -> list:
        """FindFirstFile/FindNextFile, collapsed to one call."""
        return self.vfs.listdir(self.pid, WinPath(directory))

    def GetFileSize(self, path: "WinPath | str") -> int:
        return self.vfs.stat(self.pid, WinPath(path)).size

    def GetFileAttributes(self, path: "WinPath | str"):
        return self.vfs.peek_stat(WinPath(path)).attrs

    def PathFileExists(self, path: "WinPath | str") -> bool:
        return self.vfs.exists(WinPath(path))
