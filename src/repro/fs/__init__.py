"""Virtual Windows filesystem substrate.

This package replaces the paper's NTFS + kernel minifilter stack with a
deterministic in-memory equivalent: a case-insensitive filesystem whose
every operation flows through an interposable filter-driver stack, plus the
surrounding machinery CryptoDrop and the experiments need — processes with
suspension, a simulated clock, volume shadow copies, and journal-based
snapshot/revert with SHA-256 damage assessment.
"""

from .clock import BASE_LATENCY_US, SimClock
from .errors import (AccessDenied, DirectoryNotEmpty, FileExists,
                     FileNotFound, FsError, HandleClosed, InvalidHandle,
                     IsADirectory, NotADirectory, OperationDenied,
                     ProcessSuspended, is_transient)
from .events import Decision, FsOperation, OpKind
from .filters import FilterDriver, FilterStack, PostVerdict
from .handles import Handle, HandleTable
from .nodes import DirNode, FileAttributes, FileNode
from .paths import APPDATA, DOCUMENTS, SYSTEM32, TEMP, WinPath
from .processes import Process, ProcessState, ProcessTable
from .recorder import OpRecord, OperationRecorder
from .shadow import ShadowCopy, ShadowCopyService
from .snapshot import BaselineIndex, DamageReport, assess_damage
from .vfs import SYSTEM_PID, StatResult, VirtualFileSystem
from .win32 import Win32Api

__all__ = [
    "APPDATA", "BASE_LATENCY_US", "AccessDenied", "BaselineIndex",
    "DamageReport", "Decision", "DirNode", "DirectoryNotEmpty", "DOCUMENTS",
    "FileAttributes", "FileExists", "FileNode", "FileNotFound",
    "FilterDriver", "FilterStack", "FsError", "FsOperation", "Handle",
    "HandleClosed", "HandleTable", "InvalidHandle", "IsADirectory",
    "NotADirectory", "OpKind", "OpRecord", "OperationRecorder", "OperationDenied", "PostVerdict", "Process",
    "ProcessState", "ProcessSuspended", "ProcessTable", "ShadowCopy",
    "ShadowCopyService", "SimClock", "StatResult", "SYSTEM32", "SYSTEM_PID",
    "TEMP", "VirtualFileSystem", "Win32Api", "WinPath", "assess_damage",
    "is_transient",
]
