"""Filesystem nodes.

Files and directories are in-memory nodes with *stable node ids*.  Node ids
are the backbone of CryptoDrop's Class B/C state tracking: when ransomware
moves a file out of the documents tree, rewrites it, and moves it back under
a new name (Class B), the id is how "the state of the file [is] carefully
tracked each time a file is moved" (paper §III).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from .errors import FileNotFound

__all__ = ["FileAttributes", "FileNode", "DirNode", "NodeIdAllocator"]


class NodeIdAllocator:
    """Monotonic node-id source, one per filesystem instance."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next_id(self) -> int:
        return next(self._counter)


class FileAttributes:
    """Subset of Windows file attributes relevant to the paper.

    ``read_only`` matters: the 2008 GPcode sample in §V-C failed to delete
    read-only files, so some corpus files carry the flag.
    """

    __slots__ = ("read_only", "hidden", "system")

    def __init__(self, read_only: bool = False, hidden: bool = False,
                 system: bool = False) -> None:
        self.read_only = read_only
        self.hidden = hidden
        self.system = system

    def copy(self) -> "FileAttributes":
        return FileAttributes(self.read_only, self.hidden, self.system)

    def __repr__(self) -> str:
        flags = [name for name in ("read_only", "hidden", "system")
                 if getattr(self, name)]
        return f"FileAttributes({', '.join(flags) or 'none'})"


class FileNode:
    """A regular file: a byte buffer plus attributes and timestamps."""

    __slots__ = ("node_id", "data", "attrs", "created_us", "modified_us")

    def __init__(self, node_id: int, data: bytes = b"",
                 attrs: Optional[FileAttributes] = None,
                 created_us: float = 0.0) -> None:
        self.node_id = node_id
        self.data = bytearray(data)
        self.attrs = attrs or FileAttributes()
        self.created_us = created_us
        self.modified_us = created_us

    @property
    def size(self) -> int:
        return len(self.data)

    def read_bytes(self, offset: int = 0, size: Optional[int] = None) -> bytes:
        if size is None:
            return bytes(self.data[offset:])
        return bytes(self.data[offset:offset + size])

    def write_bytes(self, offset: int, payload: bytes, now_us: float) -> int:
        end = offset + len(payload)
        if offset > len(self.data):
            # Sparse extension, zero-filled (NTFS semantics).
            self.data.extend(b"\x00" * (offset - len(self.data)))
        self.data[offset:end] = payload
        self.modified_us = now_us
        return len(payload)

    def truncate(self, size: int, now_us: float) -> None:
        del self.data[size:]
        self.modified_us = now_us

    def __repr__(self) -> str:
        return f"FileNode(id={self.node_id}, size={self.size})"


class DirNode:
    """A directory: a case-insensitive, case-preserving child map."""

    __slots__ = ("node_id", "children", "_display", "created_us")

    def __init__(self, node_id: int, created_us: float = 0.0) -> None:
        self.node_id = node_id
        #: casefolded name -> node
        self.children: Dict[str, object] = {}
        #: casefolded name -> display name
        self._display: Dict[str, str] = {}
        self.created_us = created_us

    def get(self, name: str):
        return self.children.get(name.lower())

    def require(self, name: str):
        node = self.get(name)
        if node is None:
            raise FileNotFound(name)
        return node

    def put(self, name: str, node) -> None:
        key = name.lower()
        self.children[key] = node
        self._display[key] = name

    def remove(self, name: str) -> None:
        key = name.lower()
        if key not in self.children:
            raise FileNotFound(name)
        del self.children[key]
        del self._display[key]

    def display_name(self, name: str) -> str:
        return self._display.get(name.lower(), name)

    def names(self) -> Iterator[str]:
        """Display names in deterministic (casefolded) order."""
        for key in sorted(self.children):
            yield self._display[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.children

    def __len__(self) -> int:
        return len(self.children)

    def __repr__(self) -> str:
        return f"DirNode(id={self.node_id}, entries={len(self.children)})"
