"""Volume Shadow Copy service model.

TeslaCrypt "disables and removes the Windows volume shadow copies" before
encrypting (paper §III).  CryptoDrop deliberately *ignores* these operations
because they do not alter user data — but the reproduction still models the
service so that (a) family simulators can perform their real pre-encryption
ritual and (b) tests can assert the detector is genuinely indifferent to it.

A shadow copy here is a full out-of-band snapshot of the protected tree's
file contents, addressable for restore; ``vssadmin delete shadows /all`` is
:meth:`ShadowCopyService.delete_all`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from .paths import WinPath
from .vfs import VirtualFileSystem

__all__ = ["ShadowCopy", "ShadowCopyService"]


class ShadowCopy:
    """One point-in-time copy of a directory tree."""

    __slots__ = ("shadow_id", "root", "created_us", "files")

    def __init__(self, shadow_id: int, root: WinPath, created_us: float,
                 files: Dict[WinPath, bytes]) -> None:
        self.shadow_id = shadow_id
        self.root = root
        self.created_us = created_us
        self.files = files

    def __len__(self) -> int:
        return len(self.files)


class ShadowCopyService:
    """The VSS writer/provider pair, reduced to what the paper exercises."""

    def __init__(self, vfs: VirtualFileSystem) -> None:
        self._vfs = vfs
        self._ids = itertools.count(1)
        self._copies: Dict[int, ShadowCopy] = {}
        self.enabled = True
        #: audit log of (timestamp_us, pid, action) for tests/forensics
        self.audit: List[Tuple[float, int, str]] = []

    def create(self, pid: int, root: WinPath) -> ShadowCopy:
        if not self.enabled:
            raise RuntimeError("shadow copy service disabled")
        files = {path: bytes(node.data)
                 for path, node in self._vfs.peek_walk_files(root)}
        copy = ShadowCopy(next(self._ids), root, self._vfs.clock.now_us, files)
        self._copies[copy.shadow_id] = copy
        self.audit.append((self._vfs.clock.now_us, pid, "create"))
        return copy

    def list_copies(self) -> List[ShadowCopy]:
        return sorted(self._copies.values(), key=lambda c: c.shadow_id)

    def delete_all(self, pid: int) -> int:
        """``vssadmin delete shadows /all /quiet``; returns count removed."""
        removed = len(self._copies)
        self._copies.clear()
        self.audit.append((self._vfs.clock.now_us, pid, "delete_all"))
        return removed

    def disable(self, pid: int) -> None:
        self.enabled = False
        self.audit.append((self._vfs.clock.now_us, pid, "disable"))

    def restore_file(self, path: WinPath,
                     shadow_id: Optional[int] = None) -> Optional[bytes]:
        """Fetch ``path`` from the newest (or named) shadow copy, if any."""
        copies = self.list_copies()
        if shadow_id is not None:
            copies = [c for c in copies if c.shadow_id == shadow_id]
        for copy in reversed(copies):
            if path in copy.files:
                return copy.files[path]
        return None
