"""Filesystem operation records.

Every call into the VFS is reified as an :class:`FsOperation` and published
through the filter-driver stack both *before* the operation executes
(pre-operation callback, which may veto or suspend) and *after* it completes
(post-operation callback, carrying results such as the bytes transferred).

This mirrors the Windows minifilter model the paper instruments: CryptoDrop
receives "Notifications, File Data, Context" and returns "Allow/Disallow
Decisions" (paper Fig. 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .paths import WinPath

__all__ = ["OpKind", "FsOperation", "Decision"]


class OpKind(enum.Enum):
    """The operation vocabulary observed by filter drivers."""

    CREATE = "create"          # create a new file (open for write, new node)
    OPEN = "open"              # open an existing file
    READ = "read"
    WRITE = "write"
    CLOSE = "close"
    RENAME = "rename"          # rename/move, possibly across directories
    DELETE = "delete"
    TRUNCATE = "truncate"
    SET_ATTR = "set_attr"
    LIST_DIR = "list"
    STAT = "stat"
    MKDIR = "mkdir"

    @property
    def latency_key(self) -> str:
        # resolved via a per-member attribute installed below: this runs
        # three times per simulated operation, so it must not rebuild a
        # mapping (or even hash an enum member) on each call
        return self._latency_key


for _kind, _key in {
        OpKind.CREATE: "create",
        OpKind.OPEN: "open",
        OpKind.READ: "read",
        OpKind.WRITE: "write",
        OpKind.CLOSE: "close",
        OpKind.RENAME: "rename",
        OpKind.DELETE: "delete",
        OpKind.TRUNCATE: "write",
        OpKind.SET_ATTR: "other",
        OpKind.LIST_DIR: "list",
        OpKind.STAT: "stat",
        OpKind.MKDIR: "create",
}.items():
    _kind._latency_key = _key
del _kind, _key


class Decision(enum.Enum):
    """Pre-operation verdict returned by a filter driver."""

    ALLOW = "allow"
    DENY = "deny"            # fail this one operation
    SUSPEND = "suspend"      # pause the calling process (CryptoDrop verdict)


@dataclass
class FsOperation:
    """One filesystem operation as seen by the filter stack.

    ``data`` carries the payload for writes (pre + post) and the returned
    bytes for reads (post only).  ``node_id`` is the stable identity of the
    file being operated on (None for operations on paths that do not resolve
    to an existing file, e.g. CREATE pre-op).  ``dest_path`` is set for
    RENAME.  ``wrote_since_open``/``read_since_open`` are filled on CLOSE so
    the analysis engine knows whether the closing handle dirtied the file.
    """

    kind: OpKind
    pid: int
    path: WinPath
    timestamp_us: float = 0.0
    node_id: Optional[int] = None
    handle_id: Optional[int] = None
    data: Optional[bytes] = None
    offset: int = 0
    size: int = 0
    dest_path: Optional[WinPath] = None
    dest_existed: bool = False
    dest_node_id: Optional[int] = None
    wrote_since_open: bool = False
    read_since_open: bool = False
    truncate: bool = False
    new_size: Optional[int] = None
    succeeded: bool = True
    detail: str = ""
    #: extra per-filter scratch (engine attaches measurements here)
    context: dict = field(default_factory=dict)

    def short(self) -> str:
        extra = ""
        if self.kind is OpKind.RENAME and self.dest_path is not None:
            extra = f" -> {self.dest_path}"
        if self.kind in (OpKind.READ, OpKind.WRITE):
            extra = f" [{self.size}B @ {self.offset}]"
        return f"{self.kind.value} pid={self.pid} {self.path}{extra}"
