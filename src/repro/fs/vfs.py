"""The virtual filesystem.

An in-memory, Windows-semantics filesystem with a minifilter-style
interception point.  This is the substrate replacing the paper's NTFS +
kernel driver: every operation issued by a process

1. checks the process is runnable (suspended processes cannot issue I/O),
2. is published to the filter stack's pre-operation hooks (deny / suspend),
3. executes against the node tree (journalled for snapshot/revert),
4. is published to the post-operation hooks with its results,
5. advances the simulated clock by base latency + filter-charged latency.

Out-of-band ``peek_*`` accessors read the tree *without* generating events
or advancing time.  They model CryptoDrop's privileged kernel-side reads
("CryptoDrop switches context and reads the file using the kernel code",
paper §V-H) and are also used by the sandbox's snapshot verifier.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .clock import SimClock
from .errors import (AccessDenied, DirectoryNotEmpty, FileExists,
                     FileNotFound, FsError, IsADirectory, NotADirectory,
                     OperationDenied, ProcessSuspended)
from .events import Decision, FsOperation, OpKind
from .filters import FilterStack
from .handles import Handle, HandleTable
from .nodes import DirNode, FileAttributes, FileNode, NodeIdAllocator
from .paths import WinPath
from .processes import ProcessTable

__all__ = ["VirtualFileSystem", "StatResult"]

#: pid used for out-of-band system activity (never filtered).
SYSTEM_PID = 4


class StatResult:
    """Metadata snapshot for one node."""

    __slots__ = ("node_id", "is_dir", "size", "attrs", "created_us",
                 "modified_us")

    def __init__(self, node_id: int, is_dir: bool, size: int,
                 attrs: FileAttributes, created_us: float,
                 modified_us: float) -> None:
        self.node_id = node_id
        self.is_dir = is_dir
        self.size = size
        self.attrs = attrs
        self.created_us = created_us
        self.modified_us = modified_us


class _Journal:
    """Undo journal enabling cheap snapshot/revert.

    Structural changes append inverse records; the first data mutation of
    each file after a mark saves a full pre-image.  Reverting replays the
    structural records in reverse and restores saved pre-images, touching
    only what actually changed — reverting a 5,099-file corpus after a
    ransomware run that encrypted 30 files costs ~30 buffer restores.
    """

    def __init__(self) -> None:
        self.active = False
        self.records: List[Tuple] = []
        self.pre_images: Dict[int, Tuple[bytes, float]] = {}
        self.touched_paths: set = set()

    def mark(self) -> None:
        self.active = True
        self.records.clear()
        self.pre_images.clear()
        self.touched_paths.clear()

    def note_data(self, node: FileNode) -> None:
        if self.active and node.node_id not in self.pre_images:
            self.pre_images[node.node_id] = (bytes(node.data), node.modified_us)

    def note(self, record: Tuple) -> None:
        if self.active:
            self.records.append(record)

    def note_path(self, path: WinPath) -> None:
        if self.active:
            self.touched_paths.add(path)


class VirtualFileSystem:
    """In-memory Windows-like filesystem with filter interposition."""

    def __init__(self, clock: Optional[SimClock] = None,
                 processes: Optional[ProcessTable] = None) -> None:
        self.clock = clock or SimClock()
        self.processes = processes or ProcessTable()
        self.filters = FilterStack()
        self.handles = HandleTable()
        self._ids = NodeIdAllocator()
        self._roots: Dict[str, DirNode] = {
            "c:": DirNode(self._ids.next_id()),
        }
        self._journal = _Journal()
        #: called with (pid, reason) whenever a filter suspends a process
        self.on_suspend: Optional[Callable[[int, str], None]] = None

    # ------------------------------------------------------------------
    # resolution helpers (no events)
    # ------------------------------------------------------------------

    def _root_for(self, path: WinPath) -> DirNode:
        key = path.drive.lower()
        root = self._roots.get(key)
        if root is None:
            root = DirNode(self._ids.next_id())
            self._roots[key] = root
        return root

    def _resolve(self, path: WinPath):
        node = self._root_for(path)
        for part in path.parts:
            if not isinstance(node, DirNode):
                raise NotADirectory(str(path))
            child = node.get(part)
            if child is None:
                raise FileNotFound(str(path))
            node = child
        return node

    def _resolve_dir(self, path: WinPath) -> DirNode:
        node = self._resolve(path)
        if not isinstance(node, DirNode):
            raise NotADirectory(str(path))
        return node

    def _resolve_file(self, path: WinPath) -> FileNode:
        node = self._resolve(path)
        if isinstance(node, DirNode):
            raise IsADirectory(str(path))
        return node

    # ------------------------------------------------------------------
    # filter dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, op: FsOperation, action: Callable[[], None]) -> FsOperation:
        """Run ``op`` through pre-hooks, ``action``, then post-hooks."""
        if op.pid != SYSTEM_PID:
            self.processes.check_runnable(op.pid)
        op.timestamp_us = self.clock.now_us
        decision, decider, pre_extra = self.filters.run_pre(op)
        if decision is Decision.DENY:
            self.clock.charge(op.kind.latency_key, pre_extra)
            name = decider.name if decider else "filter"
            raise OperationDenied(f"{name} denied {op.short()}")
        if decision is Decision.SUSPEND:
            self.clock.charge(op.kind.latency_key, pre_extra)
            self._suspend(op.pid, f"{decider.name if decider else 'filter'}"
                                  f" pre-op on {op.short()}")
        action()
        op.succeeded = True
        verdict, decider, post_extra = self.filters.run_post(op)
        self.clock.charge(op.kind.latency_key, pre_extra + post_extra)
        if verdict.suspend:
            self._suspend(op.pid, verdict.reason or
                          (decider.name if decider else "filter"))
        return op

    def _suspend(self, pid: int, reason: str) -> None:
        self.processes.suspend_family(pid, reason)
        if self.on_suspend is not None:
            self.on_suspend(pid, reason)
        raise ProcessSuspended(pid, reason)

    # ------------------------------------------------------------------
    # directory operations
    # ------------------------------------------------------------------

    def mkdir(self, pid: int, path: WinPath, parents: bool = False,
              exist_ok: bool = False) -> None:
        try:
            existing = self._resolve(path)
        except FileNotFound:
            existing = None
        except NotADirectory:
            raise
        if existing is not None:
            if isinstance(existing, DirNode) and exist_ok:
                return
            raise FileExists(str(path))
        if parents and path.parts:
            for ancestor in reversed(list(path.ancestors())):
                if ancestor.parts:
                    self.mkdir(pid, ancestor, exist_ok=True)
        parent = self._resolve_dir(path.parent)
        op = FsOperation(OpKind.MKDIR, pid, path)

        def action() -> None:
            node = DirNode(self._ids.next_id(), self.clock.now_us)
            parent.put(path.name, node)
            self._journal.note(("mkdir", parent, path.name))

        self._dispatch(op, action)

    def listdir(self, pid: int, path: WinPath) -> List[str]:
        directory = self._resolve_dir(path)
        names: List[str] = []
        op = FsOperation(OpKind.LIST_DIR, pid, path, node_id=directory.node_id)

        def action() -> None:
            names.extend(directory.names())

        self._dispatch(op, action)
        return names

    def walk(self, pid: int, root: WinPath) -> Iterator[Tuple[WinPath, List[str], List[str]]]:
        """Depth-first traversal emitting LIST events, like FindFirstFile."""
        stack = [root]
        while stack:
            current = stack.pop()
            directory = self._resolve_dir(current)
            dirnames: List[str] = []
            filenames: List[str] = []
            for name in self.listdir(pid, current):
                child = directory.get(name)
                (dirnames if isinstance(child, DirNode) else filenames).append(name)
            yield current, dirnames, filenames
            for name in reversed(dirnames):
                stack.append(current / name)

    # ------------------------------------------------------------------
    # file lifecycle
    # ------------------------------------------------------------------

    def open(self, pid: int, path: WinPath, mode: str = "r",
             create: bool = False, truncate: bool = False,
             attrs: Optional[FileAttributes] = None) -> Handle:
        """Open a file. ``mode`` is any combination of ``r`` and ``w``."""
        readable = "r" in mode
        writable = "w" in mode or "a" in mode
        if not (readable or writable):
            raise ValueError(f"bad mode {mode!r}")
        existing: Optional[FileNode]
        try:
            node = self._resolve(path)
            if isinstance(node, DirNode):
                raise IsADirectory(str(path))
            existing = node
        except FileNotFound:
            existing = None
        if existing is None and not create:
            raise FileNotFound(str(path))
        if existing is not None and existing.attrs.read_only and (writable and (truncate or "w" in mode)):
            # NTFS refuses GENERIC_WRITE on read-only files.
            raise AccessDenied(f"read-only: {path}")

        handle_box: List[Handle] = []
        if existing is None:
            parent = self._resolve_dir(path.parent)
            op = FsOperation(OpKind.CREATE, pid, path)

            def action() -> None:
                node = FileNode(self._ids.next_id(), b"", attrs,
                                self.clock.now_us)
                parent.put(path.name, node)
                self._journal.note(("create", parent, path.name))
                self._journal.note_path(path)
                op.node_id = node.node_id
                handle_box.append(self.handles.allocate(
                    pid, node, path, readable, writable, self.clock.now_us))
        else:
            node = existing
            op = FsOperation(OpKind.OPEN, pid, path, node_id=node.node_id,
                             size=node.size, truncate=truncate)

            def action() -> None:
                if truncate and node.size:
                    self._journal.note_data(node)
                    self._journal.note_path(path)
                    node.truncate(0, self.clock.now_us)
                handle_box.append(self.handles.allocate(
                    pid, node, path, readable, writable, self.clock.now_us))

        op_done = self._dispatch(op, action)
        handle = handle_box[0]
        op_done.handle_id = handle.handle_id
        if "a" in mode:
            handle.pos = handle.node.size
        return handle

    def read(self, pid: int, handle: Handle, size: Optional[int] = None) -> bytes:
        handle = self.handles.require(handle, pid)
        if not handle.readable:
            raise AccessDenied(f"handle #{handle.handle_id} not readable")
        node = handle.node
        out: List[bytes] = []
        offset = handle.pos
        op = FsOperation(OpKind.READ, pid, handle.path, node_id=node.node_id,
                         handle_id=handle.handle_id, offset=offset)

        def action() -> None:
            payload = node.read_bytes(offset, size)
            # A pre-op filter may schedule a short read (fault injection):
            # only a prefix of the payload reaches the caller, and the
            # post-op hooks observe exactly the delivered bytes.
            factor = op.context.get("fault_read_factor")
            if factor is not None and len(payload) > 1:
                payload = payload[:max(1, int(len(payload) * factor))]
            out.append(payload)
            op.data = payload
            op.size = len(payload)
            handle.pos = offset + len(payload)
            handle.did_read = True

        self._dispatch(op, action)
        return out[0]

    def write(self, pid: int, handle: Handle, payload: bytes) -> int:
        handle = self.handles.require(handle, pid)
        if not handle.writable:
            raise AccessDenied(f"handle #{handle.handle_id} not writable")
        node = handle.node
        offset = handle.pos
        op = FsOperation(OpKind.WRITE, pid, handle.path, node_id=node.node_id,
                         handle_id=handle.handle_id, data=bytes(payload),
                         offset=offset, size=len(payload))

        def action() -> None:
            self._journal.note_data(node)
            self._journal.note_path(handle.path)
            node.write_bytes(offset, payload, self.clock.now_us)
            handle.pos = offset + len(payload)
            handle.did_write = True

        self._dispatch(op, action)
        return len(payload)

    def seek(self, pid: int, handle: Handle, pos: int) -> None:
        handle = self.handles.require(handle, pid)
        if pos < 0:
            raise ValueError("negative seek")
        handle.pos = pos

    def truncate_handle(self, pid: int, handle: Handle, size: int) -> None:
        handle = self.handles.require(handle, pid)
        if not handle.writable:
            raise AccessDenied(f"handle #{handle.handle_id} not writable")
        node = handle.node
        op = FsOperation(OpKind.TRUNCATE, pid, handle.path,
                         node_id=node.node_id, handle_id=handle.handle_id,
                         new_size=size)

        def action() -> None:
            self._journal.note_data(node)
            self._journal.note_path(handle.path)
            node.truncate(size, self.clock.now_us)
            handle.did_write = True

        self._dispatch(op, action)

    def close(self, pid: int, handle: Handle) -> None:
        handle = self.handles.require(handle, pid)
        node = handle.node
        op = FsOperation(OpKind.CLOSE, pid, handle.path, node_id=node.node_id,
                         handle_id=handle.handle_id, size=node.size,
                         wrote_since_open=handle.did_write,
                         read_since_open=handle.did_read)

        def action() -> None:
            self.handles.release(handle)

        self._dispatch(op, action)

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def rename(self, pid: int, src: WinPath, dst: WinPath,
               overwrite: bool = True) -> None:
        """Move/rename ``src`` to ``dst``, optionally replacing a file."""
        node = self._resolve(src)
        src_parent = self._resolve_dir(src.parent)
        dst_parent = self._resolve_dir(dst.parent)
        clobbered = dst_parent.get(dst.name) if src != dst else None
        if clobbered is not None:
            if isinstance(clobbered, DirNode):
                raise FileExists(f"directory in the way: {dst}")
            if not overwrite:
                raise FileExists(str(dst))
            if clobbered.attrs.read_only:
                raise AccessDenied(f"read-only: {dst}")
        node_id = node.node_id if isinstance(node, FileNode) else None
        op = FsOperation(
            OpKind.RENAME, pid, src, node_id=node_id, dest_path=dst,
            dest_existed=clobbered is not None,
            dest_node_id=clobbered.node_id if clobbered is not None else None,
            size=node.size if isinstance(node, FileNode) else 0)

        def action() -> None:
            src_display = src_parent.display_name(src.name)
            self._journal.note(("rename", src_parent, src_display,
                                dst_parent, dst.name, clobbered))
            self._journal.note_path(src)
            self._journal.note_path(dst)
            src_parent.remove(src.name)
            dst_parent.put(dst.name, node)
            if node_id is not None:
                self.handles.repath_node(node_id, dst)

        self._dispatch(op, action)

    def delete(self, pid: int, path: WinPath) -> None:
        node = self._resolve(path)
        parent = self._resolve_dir(path.parent)
        if isinstance(node, DirNode):
            if len(node):
                raise DirectoryNotEmpty(str(path))
            op = FsOperation(OpKind.DELETE, pid, path, node_id=None,
                             detail="rmdir")
        else:
            if node.attrs.read_only:
                raise AccessDenied(f"read-only: {path}")
            op = FsOperation(OpKind.DELETE, pid, path, node_id=node.node_id,
                             size=node.size)

        def action() -> None:
            display = parent.display_name(path.name)
            self._journal.note(("delete", parent, display, node))
            self._journal.note_path(path)
            parent.remove(path.name)

        self._dispatch(op, action)

    def set_attributes(self, pid: int, path: WinPath,
                       read_only: Optional[bool] = None,
                       hidden: Optional[bool] = None) -> None:
        node = self._resolve_file(path)
        op = FsOperation(OpKind.SET_ATTR, pid, path, node_id=node.node_id)

        def action() -> None:
            self._journal.note(("attrs", node, node.attrs.copy()))
            if read_only is not None:
                node.attrs.read_only = read_only
            if hidden is not None:
                node.attrs.hidden = hidden

        self._dispatch(op, action)

    def stat(self, pid: int, path: WinPath) -> StatResult:
        node = self._resolve(path)
        result_box: List[StatResult] = []
        op = FsOperation(OpKind.STAT, pid, path,
                         node_id=getattr(node, "node_id", None))

        def action() -> None:
            result_box.append(self.peek_stat(path))

        self._dispatch(op, action)
        return result_box[0]

    # ------------------------------------------------------------------
    # convenience wrappers (each expands into open/IO/close events)
    # ------------------------------------------------------------------

    def read_file(self, pid: int, path: WinPath,
                  chunk_size: Optional[int] = None) -> bytes:
        handle = self.open(pid, path, "r")
        try:
            if chunk_size is None:
                return self.read(pid, handle)
            pieces: List[bytes] = []
            while True:
                piece = self.read(pid, handle, chunk_size)
                if not piece:
                    return b"".join(pieces)
                pieces.append(piece)
        finally:
            if not handle.closed:
                self.close(pid, handle)

    def write_file(self, pid: int, path: WinPath, payload: bytes,
                   chunk_size: Optional[int] = None,
                   attrs: Optional[FileAttributes] = None) -> None:
        handle = self.open(pid, path, "w", create=True, truncate=True,
                           attrs=attrs)
        try:
            if chunk_size is None:
                self.write(pid, handle, payload)
            else:
                for start in range(0, len(payload), chunk_size):
                    self.write(pid, handle, payload[start:start + chunk_size])
        finally:
            if not handle.closed:
                self.close(pid, handle)

    def exists(self, path: WinPath) -> bool:
        try:
            self._resolve(path)
            return True
        except FsError:
            return False

    def is_dir(self, path: WinPath) -> bool:
        try:
            return isinstance(self._resolve(path), DirNode)
        except FsError:
            return False

    # ------------------------------------------------------------------
    # out-of-band (kernel-side) accessors: no events, no clock
    # ------------------------------------------------------------------

    def peek_read(self, path: WinPath) -> bytes:
        return self._resolve_file(path).read_bytes()

    def peek_node(self, path: WinPath) -> FileNode:
        return self._resolve_file(path)

    def peek_stat(self, path: WinPath) -> StatResult:
        node = self._resolve(path)
        if isinstance(node, DirNode):
            return StatResult(node.node_id, True, len(node), FileAttributes(),
                              node.created_us, node.created_us)
        return StatResult(node.node_id, False, node.size, node.attrs.copy(),
                          node.created_us, node.modified_us)

    def peek_walk_files(self, root: WinPath) -> Iterator[Tuple[WinPath, FileNode]]:
        """Yield (path, node) for every file under ``root``; no events."""
        stack = [(root, self._resolve_dir(root))]
        while stack:
            current, directory = stack.pop()
            for name in sorted(directory.children):
                child = directory.children[name]
                display = directory.display_name(name)
                if isinstance(child, DirNode):
                    stack.append((current / display, child))
                else:
                    yield current / display, child

    def peek_write(self, path: WinPath, payload: bytes,
                   attrs: Optional[FileAttributes] = None,
                   parents: bool = False) -> int:
        """Plant a file without events (corpus construction). Returns node id."""
        if parents:
            self._ensure_dirs(path.parent)
        parent = self._resolve_dir(path.parent)
        existing = parent.get(path.name)
        if isinstance(existing, DirNode):
            raise IsADirectory(str(path))
        if existing is not None:
            self._journal.note_data(existing)
            existing.data[:] = payload
            return existing.node_id
        node = FileNode(self._ids.next_id(), payload, attrs, self.clock.now_us)
        parent.put(path.name, node)
        self._journal.note(("create", parent, path.name))
        return node.node_id

    def _ensure_dirs(self, path: WinPath) -> None:
        node = self._root_for(path)
        for part in path.parts:
            child = node.get(part)
            if child is None:
                child = DirNode(self._ids.next_id(), self.clock.now_us)
                node.put(part, child)
                self._journal.note(("mkdir-peek", node, part))
            if not isinstance(child, DirNode):
                raise NotADirectory(str(path))
            node = child

    # ------------------------------------------------------------------
    # snapshot / revert
    # ------------------------------------------------------------------

    def snapshot_mark(self) -> None:
        """Begin journalling; a later :meth:`revert` returns to this point."""
        self._journal.mark()

    @property
    def touched_since_mark(self) -> set:
        return set(self._journal.touched_paths)

    def revert(self) -> None:
        """Restore the tree to the last :meth:`snapshot_mark`."""
        if not self._journal.active:
            raise RuntimeError("no snapshot mark set")
        for record in reversed(self._journal.records):
            tag = record[0]
            if tag in ("create",):
                _, parent, name = record
                if name in parent:
                    parent.remove(name)
            elif tag in ("mkdir", "mkdir-peek"):
                _, parent, name = record
                if name in parent:
                    parent.remove(name)
            elif tag == "delete":
                _, parent, name, node = record
                parent.put(name, node)
            elif tag == "rename":
                _, src_parent, src_name, dst_parent, dst_name, clobbered = record
                node = dst_parent.get(dst_name)
                if node is not None:
                    dst_parent.remove(dst_name)
                    src_parent.put(src_name, node)
                if clobbered is not None:
                    dst_parent.put(dst_name, clobbered)
            elif tag == "attrs":
                _, node, old_attrs = record
                node.attrs = old_attrs
        # Restore data pre-images for every surviving node.
        alive = {}
        for root in self._roots.values():
            stack = [root]
            while stack:
                directory = stack.pop()
                for child in directory.children.values():
                    if isinstance(child, DirNode):
                        stack.append(child)
                    else:
                        alive[child.node_id] = child
        for node_id, (data, modified_us) in self._journal.pre_images.items():
            node = alive.get(node_id)
            if node is not None:
                node.data[:] = data
                node.modified_us = modified_us
        self._journal.mark()
