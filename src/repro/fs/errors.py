"""Filesystem error hierarchy.

All virtual-filesystem failures derive from :class:`FsError` so that
workload simulators can catch filesystem trouble without masking detector
signals such as :class:`ProcessSuspended`, which deliberately derives from
``BaseException``'s ``Exception`` branch but *not* from ``FsError``.
"""

from __future__ import annotations

__all__ = [
    "FsError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "AccessDenied",
    "HandleClosed",
    "InvalidHandle",
    "OperationDenied",
    "ProcessSuspended",
]


class FsError(Exception):
    """Base class for all virtual filesystem errors."""


class FileNotFound(FsError):
    """The named file or directory does not exist."""


class FileExists(FsError):
    """Creation failed because the target already exists."""


class NotADirectory(FsError):
    """A path component that must be a directory is a file."""


class IsADirectory(FsError):
    """A file operation was attempted on a directory."""


class DirectoryNotEmpty(FsError):
    """A non-recursive remove hit a populated directory."""


class AccessDenied(FsError):
    """The file attributes (e.g. read-only) forbid the operation."""


class HandleClosed(FsError):
    """I/O was attempted through a handle that was already closed."""


class InvalidHandle(FsError):
    """The handle does not belong to the calling process."""


class OperationDenied(FsError):
    """A filter driver vetoed the operation (without suspending)."""


class ProcessSuspended(Exception):
    """Raised into a workload when a filter suspends its process.

    Deliberately *not* an :class:`FsError`: ransomware simulators catch
    ``FsError`` to skip problem files (exactly as real samples tolerate
    locked files), but suspension must unwind the whole program, just as a
    suspended Windows process stops scheduling.
    """

    def __init__(self, pid: int, reason: str = "") -> None:
        super().__init__(f"process {pid} suspended: {reason}")
        self.pid = pid
        self.reason = reason
