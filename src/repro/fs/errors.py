"""Filesystem error hierarchy.

All virtual-filesystem failures derive from :class:`FsError` so that
workload simulators can catch filesystem trouble without masking detector
signals such as :class:`ProcessSuspended`, which deliberately derives from
``BaseException``'s ``Exception`` branch but *not* from ``FsError``.
"""

from __future__ import annotations

__all__ = [
    "FsError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "AccessDenied",
    "HandleClosed",
    "InvalidHandle",
    "OperationDenied",
    "ProcessSuspended",
    "is_transient",
]


class FsError(Exception):
    """Base class for all virtual filesystem errors.

    ``transient`` classifies the failure the way an EINTR/EAGAIN-aware
    retry loop would: transient errors (a locked file, a sharing
    violation) are expected to succeed if the same operation is simply
    retried later, while permanent errors (missing file, bad handle)
    will fail identically forever.  Retry machinery — the ingest circuit
    breaker, the campaign dispatcher — keys off :func:`is_transient`
    rather than per-site ``isinstance`` checks.
    """

    #: retrying the same operation later may succeed (EINTR/EAGAIN-style)
    transient = False


class FileNotFound(FsError):
    """The named file or directory does not exist."""


class FileExists(FsError):
    """Creation failed because the target already exists."""


class NotADirectory(FsError):
    """A path component that must be a directory is a file."""


class IsADirectory(FsError):
    """A file operation was attempted on a directory."""


class DirectoryNotEmpty(FsError):
    """A non-recursive remove hit a populated directory."""


class AccessDenied(FsError):
    """The file attributes (e.g. read-only) forbid the operation."""


class HandleClosed(FsError):
    """I/O was attempted through a handle that was already closed."""


class InvalidHandle(FsError):
    """The handle does not belong to the calling process."""


class OperationDenied(FsError):
    """A filter driver vetoed the operation (without suspending).

    Models ``ERROR_SHARING_VIOLATION`` / ``ERROR_ACCESS_DENIED`` from a
    locked file: the canonical *transient* failure — nothing about the
    operation itself is wrong, so a later retry is expected to succeed.
    """

    transient = True


class ProcessSuspended(Exception):
    """Raised into a workload when a filter suspends its process.

    Deliberately *not* an :class:`FsError`: ransomware simulators catch
    ``FsError`` to skip problem files (exactly as real samples tolerate
    locked files), but suspension must unwind the whole program, just as a
    suspended Windows process stops scheduling.
    """

    def __init__(self, pid: int, reason: str = "") -> None:
        super().__init__(f"process {pid} suspended: {reason}")
        self.pid = pid
        self.reason = reason


def is_transient(exc: BaseException) -> bool:
    """True when retrying the failed operation later may succeed.

    The single retry/breaker predicate: any exception carrying a truthy
    ``transient`` attribute (``OperationDenied``, or a fault-layer error
    that marks itself retryable) is transient; everything else —
    permanent ``FsError`` subclasses, ``ProcessSuspended``, arbitrary
    workload exceptions — is permanent and must not be retried.
    """
    return bool(getattr(exc, "transient", False))
