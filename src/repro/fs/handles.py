"""Open-handle table.

Handles bind a (process, file node) pair with a cursor and access-mode
flags.  CLOSE events report whether the handle read or wrote during its
lifetime — the trigger for CryptoDrop's close-time full-file inspection.
Renames performed while a handle is open update the handle's recorded path,
because the analysis engine keys per-file state by node id but reports
human-readable paths.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from .errors import HandleClosed, InvalidHandle
from .nodes import FileNode
from .paths import WinPath

__all__ = ["Handle", "HandleTable"]


class Handle:
    """One open file description."""

    __slots__ = ("handle_id", "pid", "node", "path", "readable", "writable",
                 "pos", "did_read", "did_write", "closed", "opened_us")

    def __init__(self, handle_id: int, pid: int, node: FileNode, path: WinPath,
                 readable: bool, writable: bool, opened_us: float) -> None:
        self.handle_id = handle_id
        self.pid = pid
        self.node = node
        self.path = path
        self.readable = readable
        self.writable = writable
        self.pos = 0
        self.did_read = False
        self.did_write = False
        self.closed = False
        self.opened_us = opened_us

    def __repr__(self) -> str:
        mode = ("r" if self.readable else "") + ("w" if self.writable else "")
        state = "closed" if self.closed else f"pos={self.pos}"
        return f"Handle(#{self.handle_id} pid={self.pid} {mode} {self.path} {state})"


class HandleTable:
    """All open handles for one filesystem instance."""

    def __init__(self) -> None:
        self._ids = itertools.count(4)  # Windows HANDLEs start small and even
        self._open: Dict[int, Handle] = {}

    def allocate(self, pid: int, node: FileNode, path: WinPath,
                 readable: bool, writable: bool, now_us: float) -> Handle:
        handle = Handle(next(self._ids), pid, node, path, readable, writable,
                        now_us)
        self._open[handle.handle_id] = handle
        return handle

    def require(self, handle: Handle, pid: int) -> Handle:
        if handle.closed or handle.handle_id not in self._open:
            raise HandleClosed(f"handle #{handle.handle_id}")
        if handle.pid != pid:
            raise InvalidHandle(
                f"handle #{handle.handle_id} belongs to pid {handle.pid}, "
                f"not {pid}")
        return handle

    def release(self, handle: Handle) -> None:
        handle.closed = True
        self._open.pop(handle.handle_id, None)

    def open_handles(self) -> Iterator[Handle]:
        return iter(self._open.values())

    def handles_for_node(self, node_id: int) -> Iterator[Handle]:
        for handle in self._open.values():
            if handle.node.node_id == node_id:
                yield handle

    def repath_node(self, node_id: int, new_path: WinPath) -> None:
        """After a rename, update the recorded path on live handles."""
        for handle in self.handles_for_node(node_id):
            handle.path = new_path

    def open_count(self, pid: Optional[int] = None) -> int:
        if pid is None:
            return len(self._open)
        return sum(1 for h in self._open.values() if h.pid == pid)
