"""Hot-path performance counters for the analysis engine.

The ISSUE-2 benchmark harness (``make bench``) needs one structured view
of everything the engine measures about its own cost: digest-cache
traffic, the bytes it actually digested versus the bytes that passed
through write-then-close inspections, and measured wall time per
operation kind.  :func:`collect` snapshots those counters from a live
:class:`~repro.core.engine.AnalysisEngine` (or a
:class:`~repro.core.monitor.CryptoDropMonitor` wrapping one) into a
:class:`PerfStats` that serialises cleanly into ``BENCH_2.json``.

The headline invariant this module exists to verify is the
**single-digest close path**: on a steady-state close-heavy workload,
``bytes_digested`` stays at or below ``bytes_closed`` because each closed
version is digested at most once (and repeat content not at all, thanks
to the digest LRU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = ["PerfStats", "collect", "merge_perf_dicts"]


@dataclass
class PerfStats:
    """One snapshot of the engine's hot-path counters."""

    #: digest LRU traffic (see repro.core.filestate.DigestCache)
    digest_cache_hits: int = 0
    digest_cache_misses: int = 0
    digest_cache_evictions: int = 0
    digest_cache_entries: int = 0
    digest_cache_capacity: int = 0
    #: lookups resolved from the shared corpus BaselineStore
    store_hits: int = 0
    #: lookups that probed an attached store and fell through
    store_misses: int = 0
    #: inspections whose digest was deferred (lazy close path)
    deferred_digests: int = 0
    #: content bytes the similarity backend actually digested
    bytes_digested: int = 0
    #: content bytes of every write-then-close inspection
    bytes_closed: int = 0
    #: content bytes of every inspection (baselines + closes)
    bytes_inspected: int = 0
    tracked_files: int = 0
    detections: int = 0
    #: operations handled, per kind
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: measured post_operation wall time per kind, microseconds
    op_wall_us: Dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Digest-cache hit rate in [0, 1]; 0.0 before any lookup."""
        total = self.digest_cache_hits + self.digest_cache_misses
        return self.digest_cache_hits / total if total else 0.0

    @property
    def single_digest_holds(self) -> bool:
        """True when the close path digested no more than it closed.

        Baseline captures also digest, so this is only meaningful on
        workloads whose steady state is rewrite-then-close of content the
        cache has already seen — exactly what the close-heavy bench runs.
        """
        return self.bytes_digested <= self.bytes_closed

    def as_dict(self) -> dict:
        return {
            "digest_cache": {
                "hits": self.digest_cache_hits,
                "misses": self.digest_cache_misses,
                "evictions": self.digest_cache_evictions,
                "entries": self.digest_cache_entries,
                "capacity": self.digest_cache_capacity,
                "hit_rate": self.hit_rate,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
            },
            "deferred_digests": self.deferred_digests,
            "bytes_digested": self.bytes_digested,
            "bytes_closed": self.bytes_closed,
            "bytes_inspected": self.bytes_inspected,
            "single_digest_holds": self.single_digest_holds,
            "tracked_files": self.tracked_files,
            "detections": self.detections,
            "op_counts": dict(self.op_counts),
            "op_wall_us": {k: round(v, 3)
                           for k, v in self.op_wall_us.items()},
        }


def collect(engine) -> PerfStats:
    """Snapshot :class:`PerfStats` from an engine or monitor.

    Accepts either an :class:`~repro.core.engine.AnalysisEngine` or a
    :class:`~repro.core.monitor.CryptoDropMonitor` (anything with an
    ``engine`` attribute is unwrapped first).

    Compatibility shim: the collection logic now lives in
    :func:`repro.telemetry.metrics.collect_perfstats` (the metrics
    registry absorbed these counters); this entry point and the
    :class:`PerfStats` schema are stable.  The import is deferred because
    ``telemetry.metrics`` imports :class:`PerfStats` from here.
    """
    from .telemetry.metrics import collect_perfstats
    return collect_perfstats(engine)


def merge_perf_dicts(dicts: Iterable[dict]) -> dict:
    """Sum per-sample :meth:`PerfStats.as_dict` payloads into one view.

    Counters add across samples; ``capacity`` takes the maximum (it is a
    configuration value, not traffic), the hit rate is recomputed from
    the summed traffic, and the single-digest invariant holds only if it
    held for every contributing sample.
    """
    dicts = [d for d in dicts if d]
    cache = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0,
             "capacity": 0, "store_hits": 0, "store_misses": 0}
    merged = {
        "samples": len(dicts),
        "digest_cache": cache,
        "deferred_digests": 0,
        "bytes_digested": 0,
        "bytes_closed": 0,
        "bytes_inspected": 0,
        "single_digest_holds": True,
        "tracked_files": 0,
        "detections": 0,
        "op_counts": {},
        "op_wall_us": {},
    }
    for entry in dicts:
        sub = entry.get("digest_cache", {})
        for key in ("hits", "misses", "evictions", "entries",
                    "store_hits", "store_misses"):
            cache[key] += int(sub.get(key, 0))
        cache["capacity"] = max(cache["capacity"],
                                int(sub.get("capacity", 0)))
        for key in ("deferred_digests", "bytes_digested", "bytes_closed",
                    "bytes_inspected", "tracked_files", "detections"):
            merged[key] += int(entry.get(key, 0))
        merged["single_digest_holds"] &= bool(
            entry.get("single_digest_holds", True))
        for kind, count in entry.get("op_counts", {}).items():
            merged["op_counts"][kind] = \
                merged["op_counts"].get(kind, 0) + count
        for kind, wall in entry.get("op_wall_us", {}).items():
            merged["op_wall_us"][kind] = round(
                merged["op_wall_us"].get(kind, 0.0) + wall, 3)
    total = cache["hits"] + cache["misses"]
    cache["hit_rate"] = cache["hits"] / total if total else 0.0
    return merged
