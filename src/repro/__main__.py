"""Command-line front end: ``python -m repro <experiment>``.

Regenerates any of the paper's tables/figures from the terminal::

    python -m repro table1 --scale small
    python -m repro fig6
    python -m repro all --scale full

Scales: ``tiny`` (seconds), ``small`` (default, tens of seconds),
``full`` (the paper's 492 samples × 5,099 files; minutes).
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (FULL, SMALL, TINY, campaign_at_scale,
                          run_ctb_small_file_rerun, run_dynamic_scoring,
                          run_fig3, run_fig4, run_fig5, run_fig6,
                          run_indicator_ablation, run_performance,
                          run_scripts_experiment, run_sensitivity,
                          run_table1, run_union_effect)

_SCALES = {"tiny": TINY, "small": SMALL, "full": FULL}


def _with_campaign(runner):
    def wrapped(scale):
        return runner(scale, campaign=campaign_at_scale(scale))
    return wrapped


_EXPERIMENTS = {
    "table1": _with_campaign(run_table1),
    "fig3": _with_campaign(run_fig3),
    "fig4": lambda scale: run_fig4(scale),
    "fig5": _with_campaign(run_fig5),
    "fig6": lambda scale: run_fig6(scale, suite="five"),
    "fig6-all": lambda scale: run_fig6(scale, suite="all"),
    "union": _with_campaign(run_union_effect),
    "ctb-rerun": lambda scale: run_ctb_small_file_rerun(scale),
    "scripts": lambda scale: run_scripts_experiment(scale),
    "performance": lambda _scale: run_performance(),
    "ablation": lambda _scale: run_indicator_ablation(),
    "dynamic-scoring": lambda scale: run_dynamic_scoring(scale),
    "sensitivity": lambda scale: run_sensitivity(scale),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the CryptoDrop paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--scale", choices=sorted(_SCALES),
                        default="small",
                        help="corpus/cohort size (default: small)")
    args = parser.parse_args(argv)
    scale = _SCALES[args.scale]

    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        started = time.time()
        result = _EXPERIMENTS[name](scale)
        print(result.render())
        print(f"\n[{name} completed in {time.time() - started:.1f}s "
              f"at scale {scale.name}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
