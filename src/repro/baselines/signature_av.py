"""Signature-based anti-virus baseline.

The paper's foil: "The ease with which ransomware can be written and
obfuscated limits the effectiveness of traditional signature-based
detection schemes" (§III), demonstrated concretely in §V-E — PoshCoder
was detected by only **8 of 57** VirusTotal engines, and adding a single
character to the script dropped **two** of those eight.

:class:`SignatureEngine` models one vendor: it knows a set of byte
signatures (either a full-image hash or a substring pattern extracted
from known samples) and flags an image iff a signature matches.
:class:`MultiEngineAV` assembles a VirusTotal-style panel of 57 engines
with heterogeneous coverage, trained on a supplied set of known samples.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Set

__all__ = ["MultiEngineAV", "ScanReport", "SignatureEngine", "mutate_one_byte"]


@dataclass
class ScanReport:
    """VirusTotal-style result: which engines flagged the image."""

    detections: List[str] = field(default_factory=list)
    total_engines: int = 0

    @property
    def count(self) -> int:
        return len(self.detections)

    def __str__(self) -> str:
        return f"{self.count}/{self.total_engines}"


class SignatureEngine:
    """One AV vendor's signature matcher.

    ``style`` is ``"hash"`` (exact SHA-256 of the whole image — brittle,
    any byte flip evades) or ``"pattern"`` (a byte substring lifted from a
    known sample — survives mutation anywhere else).
    """

    def __init__(self, name: str, style: str = "pattern",
                 pattern_len: int = 24) -> None:
        if style not in ("hash", "pattern"):
            raise ValueError(f"bad engine style {style!r}")
        self.name = name
        self.style = style
        self.pattern_len = pattern_len
        self._hashes: Set[str] = set()
        self._patterns: Set[bytes] = set()

    def learn(self, image: bytes, rng: random.Random) -> None:
        """Add a signature derived from a known-malicious image.

        Pattern engines reject low-information slices (zero padding,
        generic PE header bytes) the way real signature QA does — a
        signature that matches every binary on earth is useless."""
        if self.style == "hash":
            self._hashes.add(hashlib.sha256(image).hexdigest())
            return
        if len(image) <= self.pattern_len:
            self._patterns.add(bytes(image))
            return
        for _attempt in range(8):
            offset = rng.randrange(0, len(image) - self.pattern_len)
            pattern = bytes(image[offset:offset + self.pattern_len])
            if len(set(pattern)) >= self.pattern_len // 3:
                self._patterns.add(pattern)
                return

    def scan(self, image: bytes) -> bool:
        if self.style == "hash":
            return hashlib.sha256(image).hexdigest() in self._hashes
        return any(pattern in image for pattern in self._patterns)

    @property
    def signature_count(self) -> int:
        return len(self._hashes) + len(self._patterns)


class MultiEngineAV:
    """A 57-engine VirusTotal panel with heterogeneous coverage.

    Each engine learns signatures for a random subset of the training
    samples (``coverage`` fraction), mirroring how real vendors lag each
    other on fresh families.  Polymorphic families (whose per-variant
    images share no bytes) defeat pattern engines trained on *other*
    variants, and script samples are only covered by the minority of
    engines configured to inspect scripts at all.
    """

    N_ENGINES = 57

    def __init__(self, seed: int = 0x57A7) -> None:
        self._rng = random.Random(seed)
        self.engines: List[SignatureEngine] = []
        for index in range(self.N_ENGINES):
            style = "hash" if index % 4 == 0 else "pattern"
            self.engines.append(SignatureEngine(f"engine{index:02d}", style))
        #: engines willing to sign script text at all (§V-E: 8 of 57);
        #: composed of six pattern matchers and two hash matchers, so a
        #: one-character change blinds exactly the hash-based pair
        pattern_engines = [e for e in self.engines if e.style == "pattern"]
        hash_engines = [e for e in self.engines if e.style == "hash"]
        chosen = (self._rng.sample(pattern_engines, 6)
                  + self._rng.sample(hash_engines, 2))
        self.script_capable = {e.name for e in chosen}
        #: per-engine training coverage
        self._coverage = {e.name: 0.55 + 0.4 * self._rng.random()
                          for e in self.engines}

    def train(self, samples: Iterable) -> None:
        """Learn signatures from known samples (RansomwareSample objects
        or raw (name, image) pairs)."""
        for sample in samples:
            if isinstance(sample, tuple):
                name, image = sample
                is_script = name.endswith(".ps1")
            else:
                name = sample.name
                image = sample.image_bytes
                is_script = name.endswith(".ps1")
            for engine in self.engines:
                if is_script:
                    # the script-capable minority all know this sample —
                    # it has been on VirusTotal for a while (§V-E)
                    if engine.name in self.script_capable:
                        engine.learn(image, self._rng)
                    continue
                if self._rng.random() > self._coverage[engine.name]:
                    continue
                engine.learn(image, self._rng)

    def scan(self, image: bytes, is_script: bool = False) -> ScanReport:
        report = ScanReport(total_engines=len(self.engines))
        for engine in self.engines:
            if is_script and engine.name not in self.script_capable:
                continue
            if engine.scan(image):
                report.detections.append(engine.name)
        return report

    def scan_sample(self, sample) -> ScanReport:
        return self.scan(sample.image_bytes, sample.name.endswith(".ps1"))


def mutate_one_byte(image: bytes, position: int = -1) -> bytes:
    """The §V-E experiment: add/alter a single character."""
    if not image:
        return b"#"
    if position < 0:
        return image + b"#"
    out = bytearray(image)
    out[position % len(out)] ^= 0x20
    return bytes(out)
