"""Comparison baselines: signature AV, Tripwire integrity monitoring,
and ablated CryptoDrop configurations."""

from .signature_av import (MultiEngineAV, ScanReport, SignatureEngine,
                           mutate_one_byte)
from .single_indicator import (ablation_suite, ctph_backend, entropy_only,
                               no_union, secondary_only, similarity_only,
                               type_change_only)
from .tripwire import IntegrityAlert, TripwireMonitor

__all__ = [
    "IntegrityAlert", "MultiEngineAV", "ScanReport", "SignatureEngine",
    "TripwireMonitor", "ablation_suite", "ctph_backend", "entropy_only",
    "mutate_one_byte", "no_union", "secondary_only", "similarity_only",
    "type_change_only",
]
