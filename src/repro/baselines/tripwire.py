"""Tripwire-style file integrity monitor baseline.

§II: "file integrity monitors such as Tripwire alert the administrator
when system-critical files are modified.  These monitors are based on
simple hash comparisons and fail to distinguish between legitimate file
accesses and malicious modifications ... this type of integrity
monitoring is likely to be noisy and frustrate the user."

The baseline demonstrates both failure modes the paper names:

* **no early warning** — it only notices damage at its next scheduled
  check, after the data is already transformed; it cannot suspend the
  writer;
* **noise** — every legitimate save raises exactly the same alert as an
  encryption.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from ..fs.paths import WinPath
from ..fs.vfs import VirtualFileSystem

__all__ = ["IntegrityAlert", "TripwireMonitor"]


@dataclass(frozen=True)
class IntegrityAlert:
    path: WinPath
    kind: str          # "modified" | "missing" | "new"
    check_index: int


@dataclass
class TripwireMonitor:
    """Hash-database integrity checker over a protected root."""

    vfs: VirtualFileSystem
    root: WinPath
    baseline: Dict[WinPath, str] = field(default_factory=dict)
    alerts: List[IntegrityAlert] = field(default_factory=list)
    checks_run: int = 0

    def initialize(self) -> int:
        """Record the trusted state; returns number of files enrolled."""
        self.baseline = {
            path: hashlib.sha256(bytes(node.data)).hexdigest()
            for path, node in self.vfs.peek_walk_files(self.root)
        }
        return len(self.baseline)

    def check(self) -> List[IntegrityAlert]:
        """One scheduled integrity sweep; returns this sweep's alerts."""
        if not self.baseline:
            raise RuntimeError("initialize() must run before check()")
        index = self.checks_run
        self.checks_run += 1
        fresh: List[IntegrityAlert] = []
        current = {path: node
                   for path, node in self.vfs.peek_walk_files(self.root)}
        for path, expected in self.baseline.items():
            node = current.get(path)
            if node is None:
                fresh.append(IntegrityAlert(path, "missing", index))
            elif hashlib.sha256(bytes(node.data)).hexdigest() != expected:
                fresh.append(IntegrityAlert(path, "modified", index))
        for path in current:
            if path not in self.baseline:
                fresh.append(IntegrityAlert(path, "new", index))
        self.alerts.extend(fresh)
        return fresh

    @property
    def alert_count(self) -> int:
        return len(self.alerts)

    def alerted_paths(self) -> List[WinPath]:
        return sorted({alert.path for alert in self.alerts})
