"""Single-indicator and ablated CryptoDrop configurations.

§III argues each indicator "provides value in isolation" but that the
*union* is what buys fast detection with low false positives.  These
factory functions produce the configurations the ablation experiments
sweep: one indicator at a time, union disabled, secondary indicators
only, and the CTPH similarity backend.
"""

from __future__ import annotations

from typing import Dict

from ..core.config import CryptoDropConfig, default_config

__all__ = ["entropy_only", "type_change_only", "similarity_only",
           "secondary_only", "no_union", "ctph_backend",
           "ablation_suite"]


def _only(**enabled) -> CryptoDropConfig:
    flags = dict(enable_entropy=False, enable_type_change=False,
                 enable_similarity=False, enable_deletion=False,
                 enable_funneling=False, enable_union=False)
    flags.update(enabled)
    return default_config(**flags)


def entropy_only() -> CryptoDropConfig:
    """Only the read/write entropy delta scores."""
    return _only(enable_entropy=True)


def type_change_only() -> CryptoDropConfig:
    """Only magic-number type changes score."""
    return _only(enable_type_change=True)


def similarity_only() -> CryptoDropConfig:
    """Only similarity collapses score."""
    return _only(enable_similarity=True)


def secondary_only() -> CryptoDropConfig:
    """Only the secondary indicators (deletion + funneling) score."""
    return _only(enable_deletion=True, enable_funneling=True)


def no_union() -> CryptoDropConfig:
    """All five indicators, but no union acceleration."""
    return default_config(enable_union=False)


def ctph_backend() -> CryptoDropConfig:
    """Full detector with the ssdeep/CTPH similarity backend."""
    return default_config(similarity_backend="ctph")


def ablation_suite() -> Dict[str, CryptoDropConfig]:
    """Every configuration the ablation benches evaluate."""
    return {
        "full": default_config(),
        "entropy_only": entropy_only(),
        "type_change_only": type_change_only(),
        "similarity_only": similarity_only(),
        "secondary_only": secondary_only(),
        "no_union": no_union(),
        "ctph_backend": ctph_backend(),
    }
