"""CryptoDrop — the paper's primary contribution.

A data-centric ransomware early-warning system: indicator measurement over
a filtered stream of filesystem operations, a per-process reputation
scoreboard with union indication, and policy-mediated process suspension.
"""

from .config import CryptoDropConfig, LatencyModel, default_config
from .detection import (AlertPolicy, AllowPolicy, CallbackPolicy, Detection,
                        SuspendPolicy)
from .engine import AnalysisEngine
from .filestate import FileStateCache, TrackedFile
from .indicators import (PRIMARY, SECONDARY, IndicatorHit,
                         ProcessDeletionState, ProcessEntropyState,
                         ProcessFunnelState, similarity_collapsed,
                         similarity_score, type_changed)
from .monitor import CryptoDropMonitor
from .scoring import ProcessScore, Scoreboard, ScoreEvent

__all__ = [
    "AlertPolicy", "AllowPolicy", "AnalysisEngine", "CallbackPolicy",
    "CryptoDropConfig", "CryptoDropMonitor", "Detection", "FileStateCache",
    "IndicatorHit", "LatencyModel", "PRIMARY", "ProcessDeletionState",
    "ProcessEntropyState", "ProcessFunnelState", "ProcessScore",
    "SECONDARY", "Scoreboard", "ScoreEvent", "SuspendPolicy",
    "TrackedFile", "default_config", "similarity_collapsed",
    "similarity_score", "type_changed",
]
