"""CryptoDrop public facade.

:class:`CryptoDropMonitor` is what downstream users instantiate: it wires
an :class:`~repro.core.engine.AnalysisEngine` into a virtual filesystem's
filter stack, exposes detections and scores, and detaches cleanly.

>>> from repro.fs import VirtualFileSystem, DOCUMENTS
>>> from repro.core import CryptoDropMonitor
>>> vfs = VirtualFileSystem()
>>> vfs.mkdir(vfs.processes.spawn("setup").pid, DOCUMENTS, parents=True)
>>> monitor = CryptoDropMonitor(vfs)
>>> monitor.attach()
>>> # ... run workloads ...
>>> monitor.detach()
"""

from __future__ import annotations

from typing import List, Optional

from ..fs.vfs import VirtualFileSystem
from ..telemetry import TelemetrySession
from .config import CryptoDropConfig
from .detection import AlertPolicy, Detection, SuspendPolicy
from .engine import AnalysisEngine
from .scoring import ProcessScore

__all__ = ["CryptoDropMonitor"]


class CryptoDropMonitor:
    """Attach/detach lifecycle and reporting around the analysis engine."""

    def __init__(self, vfs: VirtualFileSystem,
                 config: Optional[CryptoDropConfig] = None,
                 policy: Optional[AlertPolicy] = None,
                 baseline_store=None, telemetry=None) -> None:
        self.vfs = vfs
        self.config = config or CryptoDropConfig()
        #: pass an explicit :class:`~repro.telemetry.TelemetrySession` to
        #: share one bus across monitors (e.g. trace replay into an
        #: existing sink); otherwise the config decides — disabled means
        #: ``None`` all the way down, the near-zero-cost path
        self.telemetry = telemetry if telemetry is not None \
            else TelemetrySession.from_config(self.config)
        self.engine = AnalysisEngine(vfs, self.config,
                                     policy or SuspendPolicy(),
                                     baseline_store=baseline_store,
                                     telemetry=self.telemetry)
        self._attached = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "CryptoDropMonitor":
        if self._attached:
            raise RuntimeError("monitor already attached")
        self.vfs.filters.attach(self.engine)
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.vfs.filters.detach(self.engine)
            self._attached = False

    def close(self) -> None:
        """Graceful shutdown: drain deferred digests, then detach.

        The lazy close path may still hold verdict-relevant pending
        inspections when the monitor goes away; :meth:`detach` alone
        would silently drop them, so a checkpoint taken after a bare
        detach could disagree with an eager run.  ``close()`` (and the
        context-manager exit, which routes through it) flushes the
        scheduler first so the final state is complete.  Idempotent.
        """
        if self.engine.scheduler is not None:
            self.engine.scheduler.close()
        self.detach()

    def __enter__(self) -> "CryptoDropMonitor":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def attached(self) -> bool:
        return self._attached

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-serialisable snapshot of the engine's scoring state."""
        return self.engine.checkpoint()

    @classmethod
    def from_checkpoint(cls, vfs: VirtualFileSystem, state: dict,
                        config: Optional[CryptoDropConfig] = None,
                        policy: Optional[AlertPolicy] = None,
                        baseline_store=None,
                        telemetry=None) -> "CryptoDropMonitor":
        """A new (detached) monitor resumed from a :meth:`checkpoint`.

        The restored monitor scores exactly as the checkpointed one would
        have: same reputations, same union flags, same baselines.  Attach
        it to the same VFS (node ids must match) to continue a run.  A
        checkpoint taken with a corpus BaselineStore attached records the
        store's descriptor; restoring with a *different* store attached is
        rejected (the baselines would not match the referenced corpus).
        """
        monitor = cls(vfs, config, policy, baseline_store=baseline_store,
                      telemetry=telemetry)
        monitor.engine.restore(state)
        return monitor

    # -- results ---------------------------------------------------------------

    @property
    def detections(self) -> List[Detection]:
        return self.engine.detections

    @property
    def detected(self) -> bool:
        return bool(self.engine.detections)

    def suspended_detections(self) -> List[Detection]:
        return [d for d in self.engine.detections if d.suspended]

    def score_rows(self) -> List[ProcessScore]:
        return self.engine.scoreboard.rows()

    def score_of(self, pid: int) -> float:
        return self.engine.score_of(pid)

    def union_count(self) -> int:
        return self.engine.scoreboard.union_count()

    # -- telemetry -------------------------------------------------------------

    def timeline(self, root_pid: Optional[int] = None):
        """The per-process :class:`~repro.telemetry.DetectionTimeline`
        rebuilt from this session's event stream (telemetry must be on)."""
        if self.telemetry is None:
            raise RuntimeError(
                "telemetry is disabled for this monitor — construct with "
                "CryptoDropConfig(telemetry_enabled=True) or pass a "
                "TelemetrySession")
        return self.telemetry.timeline(root_pid=root_pid)

    def telemetry_export(self) -> Optional[dict]:
        """The session's telemetry snapshot (events + metric state), or
        None when disabled — the payload ``SampleResult.telemetry``
        carries."""
        return None if self.telemetry is None else self.telemetry.export()

    def export_report(self) -> dict:
        """JSON-serialisable forensic report of the session.

        Contains every detection, every process's score trajectory, and
        the engine's operational counters — what an incident responder
        would pull off the machine after an alert.
        """
        return {
            "config": {
                "non_union_threshold": self.config.non_union_threshold,
                "union_threshold": self.config.union_threshold,
                "union_bonus": self.config.union_bonus,
                "entropy_delta": self.config.entropy_delta,
                "similarity_backend": self.config.similarity_backend,
                "indicators": self.config.indicators_enabled(),
            },
            "detections": [
                {
                    "process": d.process_name,
                    "root_pid": d.root_pid,
                    "score": d.score,
                    "threshold": d.threshold,
                    "union": d.union_fired,
                    "flags": sorted(d.flags),
                    "timestamp_us": d.timestamp_us,
                    "trigger": f"{d.trigger_op} {d.trigger_path}",
                    "suspended": d.suspended,
                    "files_lost": d.files_lost,
                }
                for d in self.detections
            ],
            "processes": [
                {
                    "root_pid": row.root_pid,
                    "name": row.name,
                    "score": row.score,
                    "threshold": row.threshold,
                    "union": row.union_fired,
                    "flags": sorted(row.flags),
                    "events": [
                        {
                            "t_us": e.timestamp_us,
                            "indicator": e.indicator,
                            "points": e.points,
                            "score": e.score_after,
                            "path": e.path,
                            "detail": e.detail,
                        }
                        for e in row.history
                    ],
                }
                for row in self.score_rows()
            ],
            "stats": self.stats(),
        }

    def flush_inspections(self) -> int:
        """Force the deferred-digest scheduler to materialise its pending
        set now; returns how many records were drained (0 when batching
        is off or nothing is pending)."""
        if self.engine.scheduler is None:
            return 0
        return self.engine.scheduler.flush()

    def stats(self) -> dict:
        return {
            "ops_seen": dict(self.engine.op_counts),
            "bytes_inspected": self.engine.bytes_inspected,
            "bytes_closed": self.engine.bytes_closed,
            "tracked_files": len(self.engine.cache),
            "detections": len(self.engine.detections),
            "processes_scored": len(self.engine.scoreboard.rows()),
            "digest_cache": self.engine.cache.digest_cache.stats(),
            "scheduler": (None if self.engine.scheduler is None
                          else self.engine.scheduler.stats()),
            "streaming": self.engine.stream_stats(),
            "op_wall_us": dict(self.engine.op_wall_us),
        }
