"""The CryptoDrop analysis engine.

A filter driver (paper Fig. 2) that receives every filesystem operation
touching the protected documents tree and converts it into indicator
measurements, reputation points, and — past threshold — a suspension
verdict.

Division of labour across the two filter hooks:

* **pre-operation** — baseline capture.  The first time the engine sees a
  node about to be modified (open-for-truncate, write, rename, delete) it
  snapshots the *previous version*: magic type + similarity digest.  This
  must happen pre-op or a truncating open would destroy the evidence.
* **post-operation** — measurement and scoring.  Reads/writes feed the
  per-process entropy means; closes after writes trigger full-file
  inspection (type change + similarity); renames handle move tracking and
  Class-C linking; deletes feed the deletion counter.

The engine never blocks an operation outright — ransomware is free to run
until its reputation crosses threshold, at which point the process family
is suspended and the (policy-modelled) user is asked.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..entropy import corrected_entropy_from_counts
from ..fs.errors import FsError
from ..fs.events import Decision, FsOperation, OpKind
from ..fs.filters import FilterDriver, PostVerdict
from ..fs.vfs import SYSTEM_PID, VirtualFileSystem
from ..magic import identify
from ..simhash.sdhash import StreamingDigestState
from ..telemetry.events import (IndicatorFired, ProcessSuspended,
                                StreamDigestFinalized)
from .config import CryptoDropConfig
from .detection import AlertPolicy, Detection, SuspendPolicy
from .filestate import FileStateCache, TrackedFile
from .schedule import InspectionScheduler
from .indicators import (IndicatorHit, ProcessDeletionState,
                         ProcessEntropyState, ProcessFunnelState,
                         similarity_collapsed, similarity_score,
                         type_changed)
from .scoring import Scoreboard

__all__ = ["AnalysisEngine"]


class _ProcessState:
    """Per-process-family indicator accumulators."""

    __slots__ = ("entropy", "deletion", "funnel")

    def __init__(self, config: CryptoDropConfig) -> None:
        self.entropy = ProcessEntropyState(config.entropy_delta)
        self.deletion = ProcessDeletionState(config.deletion_allowance)
        self.funnel = ProcessFunnelState(config.funnel_spread)


class AnalysisEngine(FilterDriver):
    """CryptoDrop, as a filter driver over a virtual filesystem."""

    name = "cryptodrop"

    def __init__(self, vfs: VirtualFileSystem,
                 config: Optional[CryptoDropConfig] = None,
                 policy: Optional[AlertPolicy] = None,
                 baseline_store=None, telemetry=None) -> None:
        self.vfs = vfs
        self.config = config or CryptoDropConfig()
        self.policy = policy or SuspendPolicy()
        #: a ``repro.telemetry.TelemetrySession`` or None; every emit
        #: point below is guarded by one ``is None`` check so the
        #: disabled path constructs nothing
        self.telemetry = telemetry
        self.scoreboard = Scoreboard(self.config, telemetry=telemetry)
        self.cache = FileStateCache(self.config.similarity_backend,
                                    self.config.max_inspect_bytes,
                                    digests_enabled=self.config.enable_similarity,
                                    digest_cache_entries=self.config.digest_cache_entries,
                                    baseline_store=baseline_store,
                                    defer_digests=self.config.lazy_close_digests,
                                    telemetry=telemetry)
        #: deferred-digest batching: pending captures materialise through
        #: digest_many in one flush (bit-identical detection output — the
        #: scalar per-record path remains the reference with the knob off)
        self.scheduler: Optional[InspectionScheduler] = None
        if self.config.batch_digests:
            self.scheduler = InspectionScheduler(
                self.cache, telemetry=telemetry,
                pending_bytes_cap=self.config.scheduler_pending_bytes_cap)
            self.cache.scheduler = self.scheduler
        #: incremental close-path digests: append-only write streams feed
        #: a per-handle StreamingDigestState so finalising at close is
        #: O(tail) instead of O(file).  sdhash-only (the ctph backend has
        #: no incremental kernel); any non-append access falls back to the
        #: whole-content path, counted per reason in stream_fallbacks.
        self._streaming_digests = (self.config.streaming_digests
                                   and self.config.enable_similarity
                                   and self.config.similarity_backend
                                   == "sdhash")
        #: handle_id → (node_id, StreamingDigestState)
        self._streams: Dict[int, tuple] = {}
        #: node_id → owning handle_id — a write through any *other* handle
        #: means the stream no longer mirrors the file bytes
        self._stream_nodes: Dict[int, int] = {}
        self.streams_started = 0
        self.streams_finalized = 0
        self.bytes_streamed = 0
        self.stream_fallbacks: Dict[str, int] = {}
        self.detections: List[Detection] = []
        self._proc: Dict[int, _ProcessState] = {}
        self._whitelist: set = set()
        #: funneling memo: node_id → identified type name for offset-0
        #: reads of untracked nodes (invalidated on write/delete)
        self._read_type_memo: Dict[int, str] = {}
        #: per-handle running byte histogram: handle_id → [counts, total]
        #: — each write payload is bincounted exactly once, feeding both
        #: the per-op entropy mean and the handle's cumulative stream
        #: entropy; dropped when the handle closes
        self._write_hists: Dict[int, list] = {}
        self._pending_cost_us = 0.0
        self.op_counts: Dict[str, int] = {}
        self.bytes_inspected = 0
        #: content bytes of every write-then-close inspection (the
        #: single-digest invariant: cache.digest_cache.bytes_digested
        #: never exceeds this plus baseline-capture traffic)
        self.bytes_closed = 0
        #: measured post_operation wall time per op kind, microseconds
        self.op_wall_us: Dict[str, float] = {}
        self._hits_applied = 0

    # ------------------------------------------------------------------
    # filter driver interface
    # ------------------------------------------------------------------

    def added_latency_us(self, op: FsOperation) -> float:
        cost, self._pending_cost_us = self._pending_cost_us, 0.0
        return cost

    def pre_operation(self, op: FsOperation) -> Decision:
        if op.pid == SYSTEM_PID:
            return Decision.ALLOW
        # Baselines are captured at the last moment the previous version is
        # guaranteed intact: before destructive opens, first writes, moves,
        # and deletes.  Plain read-opens never trigger a digest, so purely
        # observational workloads (AV scanners, viewers) stay cheap.
        if (op.kind in (OpKind.WRITE, OpKind.TRUNCATE, OpKind.RENAME,
                        OpKind.DELETE)
                or (op.kind is OpKind.OPEN and op.truncate)):
            self._maybe_capture_baseline(op)
        if (op.kind is OpKind.RENAME and op.dest_existed
                and op.dest_node_id is not None
                and op.dest_node_id not in self.cache
                and op.dest_path is not None
                and self.config.is_protected(op.dest_path)):
            # A move is about to clobber a protected file: snapshot the
            # victim's last version now so the incoming content can be
            # linked against it (§V-B2's Class-C linking).
            try:
                content = self.vfs.peek_read(op.dest_path)
            except FsError:
                content = None
            if content is not None:
                self.cache.ensure_baseline(op.dest_node_id, op.dest_path,
                                           content)
                self.bytes_inspected += len(content)
                self._charge_inspection(len(content))
        return Decision.ALLOW

    def post_operation(self, op: FsOperation) -> PostVerdict:
        if op.pid == SYSTEM_PID:
            return PostVerdict.ALLOW
        if not self._relevant(op):
            return PostVerdict.ALLOW
        started = time.perf_counter_ns()
        kind = op.kind.value
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1
        if self.telemetry is not None:
            # keep the bus clock on the simulated timebase so emitters
            # without operation context (digest cache, baseline store)
            # stamp events consistently
            self.telemetry.bus.clock_us = op.timestamp_us
        handler = self._DISPATCH.get(op.kind)
        hits_before = self._hits_applied
        if handler is not None:
            handler(self, op)
        # Scores only move through Scoreboard.apply (called from _apply in
        # the handlers), so an op that applied no indicator hit cannot have
        # pushed any row over threshold — skip materialising its scoreboard
        # row entirely.  Hot loops of benign reads/writes never touch the
        # scoreboard at all.
        if self._hits_applied == hits_before:
            verdict = PostVerdict.ALLOW
        else:
            verdict = self._verdict(op)
        elapsed_us = (time.perf_counter_ns() - started) / 1000.0
        self.op_wall_us[kind] = self.op_wall_us.get(kind, 0.0) + elapsed_us
        if self.telemetry is not None:
            self.telemetry.op_wall_us.observe(elapsed_us, kind=kind)
        return verdict

    # ------------------------------------------------------------------
    # scope and baselines
    # ------------------------------------------------------------------

    def _relevant(self, op: FsOperation) -> bool:
        """Protected-path ops, plus any op on a node we already track
        (Class B files riding outside the documents tree)."""
        if self.config.is_protected(op.path):
            return True
        if op.dest_path is not None and self.config.is_protected(op.dest_path):
            return True
        return self.cache.is_tracked(op.node_id)

    def _maybe_capture_baseline(self, op: FsOperation) -> None:
        if op.node_id is None or op.node_id in self.cache:
            return
        if not self._relevant(op):
            return
        try:
            content = self.vfs.peek_read(op.path)
        except FsError:
            return
        self.cache.ensure_baseline(op.node_id, op.path, content)
        self.bytes_inspected += len(content)
        self._charge_inspection(len(content))

    # ------------------------------------------------------------------
    # per-operation measurement
    # ------------------------------------------------------------------

    def _on_create(self, op: FsOperation) -> None:
        if op.node_id is not None and self.config.is_protected(op.path):
            self.cache.track_new(op.node_id, op.path)
        self._pending_cost_us += self.config.latency.open_us

    def _on_open(self, op: FsOperation) -> None:
        self._pending_cost_us += self.config.latency.open_us
        if op.truncate and self._stream_nodes and op.node_id is not None:
            # another handle just truncated the node: its owner's stream
            # no longer spans the file from byte 0
            self._discard_node_stream(op.node_id, "truncate")

    def _on_read(self, op: FsOperation) -> None:
        self._pending_cost_us += self.config.latency.read_us
        if not op.data:
            return
        state = self._state(op.pid)
        if self.config.enable_entropy:
            state.entropy.on_read(op.data)
        if self.config.enable_funneling:
            record = self.cache.get(op.node_id) if op.node_id else None
            type_name = None
            if record is not None and record.base_type is not None:
                type_name = record.base_type.name
            elif op.offset == 0:
                # Untracked node: identify once per node, not per read —
                # sweeps that re-read the same unprotected file repeatedly
                # (viewers, AV-style scans) pay identify() exactly once.
                type_name = self._read_type_memo.get(op.node_id)
                if type_name is None:
                    type_name = identify(op.data).name
                    if op.node_id is not None:
                        self._read_type_memo[op.node_id] = type_name
            if type_name and state.funnel.on_read_type(type_name):
                self._apply(op, IndicatorHit(
                    "funneling", self.config.funnel_points,
                    detail=f"spread={state.funnel.spread}"))

    def _on_write(self, op: FsOperation) -> None:
        lat = self.config.latency
        self._pending_cost_us += (lat.write_base_us
                                  + lat.write_per_kb_us * op.size / 1024.0)
        if op.node_id is not None and self._read_type_memo:
            # the node's content is changing — its memoised type is stale
            self._read_type_memo.pop(op.node_id, None)
        if not op.data:
            return
        if self._streaming_digests:
            self._stream_feed(op)
        state = self._state(op.pid)
        if not self.config.enable_entropy:
            return
        # one bincount per payload: the chunk histogram feeds the per-op
        # weighted mean (bit-identical to hashing the raw bytes) and
        # accumulates into the handle's running stream histogram
        counts = np.bincount(np.frombuffer(op.data, dtype=np.uint8),
                             minlength=256)
        if op.handle_id is not None:
            hist = self._write_hists.get(op.handle_id)
            if hist is None:
                self._write_hists[op.handle_id] = [counts.copy(),
                                                   len(op.data)]
            else:
                hist[0] += counts
                hist[1] += len(op.data)
        delta = state.entropy.on_write_counts(counts, len(op.data))
        if delta is not None:
            self._apply(op, IndicatorHit(
                "entropy", self.config.entropy_points,
                primary_flag="entropy",
                detail=f"delta={delta:.3f}"))

    # -- streaming digest plumbing -------------------------------------

    def _stream_feed(self, op: FsOperation) -> None:
        """Route a write payload into its handle's incremental digest.

        A stream starts lazily at a handle's first offset-0 write (the
        VFS assigns handle ids after OPEN/CREATE dispatch, so opens can't
        start one) and stays valid only while this handle remains the
        node's sole writer and every write lands at the current end.
        Anything else drops the stream — close then takes the
        whole-content path, so correctness never depends on the pattern.
        """
        node_id, handle_id = op.node_id, op.handle_id
        if node_id is None or handle_id is None:
            return
        owner = self._stream_nodes.get(node_id)
        if owner is not None and owner != handle_id:
            self._drop_stream(owner, "handle_interleave")
            owner = None
        entry = self._streams.get(handle_id)
        if entry is None:
            if (owner is not None or op.offset != 0
                    or len(op.data) > self.config.max_inspect_bytes):
                return
            state = StreamingDigestState(
                self.config.stream_digest_min_bytes)
            state.update(op.data)
            self._streams[handle_id] = (node_id, state)
            self._stream_nodes[node_id] = handle_id
            self.streams_started += 1
            return
        s_node, state = entry
        if s_node != node_id:
            self._drop_stream(handle_id, "node_mismatch")
            return
        if op.offset != state.total:
            self._drop_stream(handle_id, "nonsequential")
            return
        if state.total + len(op.data) > self.config.max_inspect_bytes:
            # the close path won't digest oversize content anyway
            self._drop_stream(handle_id, "oversize")
            return
        state.update(op.data)

    def _drop_stream(self, handle_id: int,
                     reason: Optional[str] = None) -> Optional[
                         StreamingDigestState]:
        entry = self._streams.pop(handle_id, None)
        if entry is None:
            return None
        node_id, state = entry
        if self._stream_nodes.get(node_id) == handle_id:
            del self._stream_nodes[node_id]
        if reason is not None:
            self._count_stream_fallback(reason)
        return state

    def _discard_node_stream(self, node_id: Optional[int],
                             reason: Optional[str] = None) -> None:
        if node_id is None:
            return
        owner = self._stream_nodes.get(node_id)
        if owner is not None:
            self._drop_stream(owner, reason)

    def _count_stream_fallback(self, reason: str) -> None:
        self.stream_fallbacks[reason] = \
            self.stream_fallbacks.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.stream_fallbacks.inc(reason=reason)

    def _on_truncate(self, op: FsOperation) -> None:
        # stream invalidation only — TRUNCATE ops were previously
        # undispatched, and their baseline capture already happens pre-op
        if self._stream_nodes and op.node_id is not None:
            self._discard_node_stream(op.node_id, "truncate")

    def _on_close(self, op: FsOperation) -> None:
        lat = self.config.latency
        stream: Optional[StreamingDigestState] = None
        if op.handle_id is not None:
            if self._write_hists:
                self._write_hists.pop(op.handle_id, None)
            if self._streams:
                stream = self._drop_stream(op.handle_id)
        if not op.wrote_since_open or op.node_id is None:
            self._pending_cost_us += lat.other_us
            return
        self._pending_cost_us += (lat.close_base_us
                                  + lat.close_per_kb_us * op.size / 1024.0)
        try:
            content = self.vfs.peek_read(op.path)
        except FsError:
            return
        self.bytes_closed += len(content)
        record = self.cache.get(op.node_id)
        if record is None:
            if self.config.is_protected(op.path):
                record = self.cache.track_new(op.node_id, op.path)
            else:
                return
        if stream is not None:
            if not stream.streaming:
                # buffered refs only — the stream never did numpy work,
                # so the whole-content path costs the same (not a fallback)
                stream = None
            elif stream.total != len(content):
                # the file holds bytes this stream never saw (pre-existing
                # longer content, out-of-band writes): fall back
                self._count_stream_fallback("length_mismatch")
                stream = None
        self._inspect_version(op, record, content, stream=stream)

    def _on_rename(self, op: FsOperation) -> None:
        lat = self.config.latency
        self._pending_cost_us += (lat.rename_base_us
                                  + lat.rename_per_kb_us * op.size / 1024.0)
        if op.node_id is None or op.dest_path is None:
            return
        clobbered_id = op.dest_node_id if op.dest_existed else None
        if clobbered_id is not None and self._read_type_memo:
            self._read_type_memo.pop(clobbered_id, None)
        if clobbered_id is not None and self._stream_nodes:
            # the clobbered node leaves the namespace; its stream (if any)
            # can never reach a close-time inspection
            self._discard_node_stream(clobbered_id)
        clobbered_tracked = (clobbered_id is not None
                             and self.cache.is_tracked(clobbered_id))
        record = self.cache.on_rename(op.node_id, op.dest_path, clobbered_id)
        if clobbered_tracked and record is not None:
            # Move-over of a tracked file: the original content is gone —
            # the deletion indicator counts it, and the incoming bytes are
            # inspected against the inherited ("linked") baseline.
            self._count_deletion(op)
            try:
                content = self.vfs.peek_read(op.dest_path)
            except FsError:
                return
            self._inspect_version(op, record, content)
        elif (record is None and self.config.is_protected(op.dest_path)):
            # Untracked file moved into the documents tree: it becomes the
            # baseline for future comparisons.
            try:
                content = self.vfs.peek_read(op.dest_path)
            except FsError:
                return
            self.cache.ensure_baseline(op.node_id, op.dest_path, content)
            self.bytes_inspected += len(content)

    def _on_delete(self, op: FsOperation) -> None:
        self._pending_cost_us += self.config.latency.delete_us
        if op.node_id is not None and self._read_type_memo:
            self._read_type_memo.pop(op.node_id, None)
        if op.node_id is not None and self._stream_nodes:
            self._discard_node_stream(op.node_id)
        was_tracked = self.cache.is_tracked(op.node_id)
        self.cache.on_delete(op.node_id)
        if was_tracked or self.config.is_protected(op.path):
            self._count_deletion(op)

    # ------------------------------------------------------------------
    # inspection and scoring
    # ------------------------------------------------------------------

    def _inspect_version(self, op: FsOperation, record: TrackedFile,
                         content: bytes, stream=None) -> None:
        """Close/link-time comparison of the new version to the baseline.

        The single-digest close path: ``cache.inspect`` types and digests
        the content exactly once (through the corpus BaselineStore and
        the digest LRU), and that one :class:`InspectionResult` feeds both
        the similarity comparison and the baseline refresh below.  With
        lazy digests the digest is requested only when this close will
        actually compare against a digestable baseline; otherwise the new
        version's digest is deferred until something consumes it — except
        when a validated ``stream`` is in hand: finalising it now costs
        O(tail), so deferring (and later re-reading the whole file) would
        only waste the incremental work.
        """
        state = self._state(op.pid)
        comparing = (record.has_baseline and not record.born_empty
                     and self.config.enable_similarity)
        if comparing:
            # the baseline side must exist before we can know whether the
            # new version's digest will be consumed
            self.cache.materialise_baseline(record)
        want_digest = (stream is not None
                       or not self.config.lazy_close_digests
                       or (comparing
                           and (record.base_digest is not None
                                or record.base_ctph is not None)))
        inspection = self.cache.inspect(content, want_digest=want_digest,
                                        stream=stream)
        if stream is not None and stream.consumed:
            self.streams_finalized += 1
            self.bytes_streamed += len(content)
            if self.telemetry is not None:
                self.telemetry.incremental_digest_bytes.inc(len(content))
                self.telemetry.bus.emit(StreamDigestFinalized(
                    op.timestamp_us, path=str(op.path), size=len(content),
                    features=stream.n_features,
                    chunks=stream.chunks_consumed))
        new_type = inspection.file_type
        self.bytes_inspected += len(content)
        self._charge_inspection(len(content))
        if self.config.enable_funneling and new_type.name != "empty":
            state.funnel.on_write_type(new_type.name)
        if record.has_baseline and not record.born_empty:
            score = None
            if self.config.enable_similarity:
                score = similarity_score(record, content,
                                         self.config.similarity_backend,
                                         inspection=inspection)
            # §V-C dynamic scoring: when the similarity indicator cannot
            # speak (file below sdhash's floor), the remaining evidence
            # is weighted up so small-file sweeps convict sooner
            boost = 1.0
            if (self.config.dynamic_scoring
                    and self.config.enable_similarity and score is None):
                boost = self.config.dynamic_boost
            if (self.config.enable_type_change
                    and type_changed(record.base_type, new_type)):
                self._apply(op, IndicatorHit(
                    "type_change",
                    self.config.type_change_points * boost,
                    primary_flag="type_change",
                    detail=f"{record.base_type.name}->{new_type.name}"
                           + (" [boosted]" if boost > 1.0 else "")))
            if similarity_collapsed(score,
                                    self.config.similarity_trigger_max):
                self._apply(op, IndicatorHit(
                    "similarity", self.config.similarity_points,
                    primary_flag="similarity",
                    detail=f"score={score}"))
        self.cache.refresh_baseline(op.node_id, op.path
                                    if op.dest_path is None else op.dest_path,
                                    content, inspection=inspection)

    # Built once at class definition: op kind → unbound handler.  The
    # per-call dict the old post_operation rebuilt was ~7 dict inserts per
    # operation on the hottest path in the engine.
    _DISPATCH = {
        OpKind.CREATE: _on_create,
        OpKind.OPEN: _on_open,
        OpKind.READ: _on_read,
        OpKind.WRITE: _on_write,
        OpKind.TRUNCATE: _on_truncate,
        OpKind.CLOSE: _on_close,
        OpKind.RENAME: _on_rename,
        OpKind.DELETE: _on_delete,
    }

    def _count_deletion(self, op: FsOperation) -> None:
        if not self.config.enable_deletion:
            return
        state = self._state(op.pid)
        if state.deletion.on_delete():
            self._apply(op, IndicatorHit(
                "deletion", self.config.deletion_points,
                detail=f"count={state.deletion.count}"))

    def _apply(self, op: FsOperation, hit: IndicatorHit) -> None:
        self._hits_applied += 1
        root = self._root_pid(op.pid)
        name = self._proc_name(root)
        path = str(op.dest_path or op.path)
        if self.telemetry is not None:
            self.telemetry.indicator_hits.inc(indicator=hit.indicator)
            self.telemetry.bus.emit(IndicatorFired(
                op.timestamp_us, root_pid=root, indicator=hit.indicator,
                points=hit.points, path=path, detail=hit.detail))
        self.scoreboard.apply(root, hit, op.timestamp_us, path, name)

    def _verdict(self, op: FsOperation) -> PostVerdict:
        root = self._root_pid(op.pid)
        if root in self._whitelist:
            return PostVerdict.ALLOW
        row = self.scoreboard.row(root, self._proc_name(root))
        if row.detected or not row.over_threshold:
            return PostVerdict.ALLOW
        row.detected = True
        detection = Detection(
            root_pid=root, process_name=row.name, score=row.score,
            threshold=row.threshold, union_fired=row.union_fired,
            flags=set(row.flags), timestamp_us=op.timestamp_us,
            trigger_op=op.kind.value,
            trigger_path=str(op.dest_path or op.path),
            history_len=len(row.history))
        suspend = self.policy.decide(detection)
        detection.suspended = suspend
        self.detections.append(detection)
        if self.telemetry is not None:
            self.telemetry.suspensions.inc(
                action="suspend" if suspend else "alert_only")
            self.telemetry.score_at_suspension.observe(row.score)
            self.telemetry.bus.emit(ProcessSuspended(
                op.timestamp_us, root_pid=root, process_name=row.name,
                score=row.score, threshold=row.threshold,
                union_fired=row.union_fired, suspended=suspend,
                trigger_op=detection.trigger_op,
                trigger_path=detection.trigger_path))
        if not suspend:
            self._whitelist.add(root)
            return PostVerdict.ALLOW
        return PostVerdict(
            suspend=True,
            reason=f"cryptodrop: score {row.score:.0f} >= "
                   f"{row.threshold:.0f} ({'union' if row.union_fired else 'non-union'})")

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _root_pid(self, pid: int) -> int:
        if self.config.score_process_families and pid in self.vfs.processes:
            return self.vfs.processes.family_root(pid)
        return pid

    def _proc_name(self, pid: int) -> str:
        if pid in self.vfs.processes:
            return self.vfs.processes.get(pid).name
        return f"pid{pid}"

    def _state(self, pid: int) -> _ProcessState:
        root = self._root_pid(pid)
        state = self._proc.get(root)
        if state is None:
            state = _ProcessState(self.config)
            self._proc[root] = state
        return state

    def _charge_inspection(self, n_bytes: int) -> None:
        # digesting/identifying cost, folded into the op's charged latency
        self._pending_cost_us += 40.0 + 0.004 * n_bytes

    # ------------------------------------------------------------------
    # checkpoint / restore (crash-resilient service model)
    # ------------------------------------------------------------------

    CHECKPOINT_VERSION = 1

    def checkpoint(self) -> dict:
        """Serialise every piece of scoring state to a JSON-safe dict.

        Covers the scoreboard (scores, flags, union state, journals), the
        per-process indicator accumulators, the baseline cache (digests
        included), whitelisting, detections, and the operational counters
        — everything a restarted engine needs to keep scoring as if the
        crash never happened.
        """
        if self.scheduler is not None:
            # pending bytes never serialise: drain them as one batch
            # before the cache walks its records
            self.scheduler.flush()
        return {
            "version": self.CHECKPOINT_VERSION,
            "scoreboard": self.scoreboard.checkpoint(),
            "processes": {
                str(pid): {"entropy": state.entropy.state(),
                           "deletion": state.deletion.state(),
                           "funnel": state.funnel.state()}
                for pid, state in sorted(self._proc.items())},
            "cache": self.cache.checkpoint(),
            "whitelist": sorted(self._whitelist),
            "detections": [
                {"root_pid": d.root_pid, "process_name": d.process_name,
                 "score": d.score, "threshold": d.threshold,
                 "union_fired": d.union_fired, "flags": sorted(d.flags),
                 "timestamp_us": d.timestamp_us, "trigger_op": d.trigger_op,
                 "trigger_path": d.trigger_path, "suspended": d.suspended,
                 "files_lost": d.files_lost, "history_len": d.history_len}
                for d in self.detections],
            "op_counts": dict(self.op_counts),
            "bytes_inspected": self.bytes_inspected,
            "bytes_closed": self.bytes_closed,
            "op_wall_us": dict(self.op_wall_us),
            # lifetime streaming counters travel; in-flight streams do
            # not (their hashers cannot serialise exactly once restored
            # mid-campaign) — a restored engine simply starts no stream
            # mid-file, so those closes take the whole-content path with
            # identical detection output
            "streams": {"started": self.streams_started,
                        "finalized": self.streams_finalized,
                        "bytes_streamed": self.bytes_streamed,
                        "fallbacks": dict(self.stream_fallbacks)},
            # metrics-registry lifetime counters travel (like the digest
            # cache's counters do); buffered ring events never checkpoint
            "telemetry": (self.telemetry.registry.checkpoint()
                          if self.telemetry is not None else None),
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`checkpoint` snapshot into this (fresh) engine."""
        version = state.get("version")
        if version != self.CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version!r}")
        self.scoreboard.restore(state["scoreboard"])
        self._proc.clear()
        for pid_text, proc_state in state["processes"].items():
            proc = _ProcessState(self.config)
            proc.entropy.load(proc_state["entropy"])
            proc.deletion.load(proc_state["deletion"])
            proc.funnel.load(proc_state["funnel"])
            self._proc[int(pid_text)] = proc
        self.cache.restore(state["cache"])
        self._whitelist = set(state["whitelist"])
        self.detections = [
            Detection(root_pid=d["root_pid"],
                      process_name=d["process_name"], score=d["score"],
                      threshold=d["threshold"],
                      union_fired=d["union_fired"], flags=set(d["flags"]),
                      timestamp_us=d["timestamp_us"],
                      trigger_op=d["trigger_op"],
                      trigger_path=d["trigger_path"],
                      suspended=d["suspended"], files_lost=d["files_lost"],
                      history_len=d["history_len"])
            for d in state["detections"]]
        self.op_counts = dict(state["op_counts"])
        self.bytes_inspected = int(state["bytes_inspected"])
        # Absent in pre-existing checkpoints: default to zero rather than
        # rejecting the snapshot.
        self.bytes_closed = int(state.get("bytes_closed", 0))
        self.op_wall_us = dict(state.get("op_wall_us", {}))
        streams = state.get("streams", {})
        self.streams_started = int(streams.get("started", 0))
        self.streams_finalized = int(streams.get("finalized", 0))
        self.bytes_streamed = int(streams.get("bytes_streamed", 0))
        self.stream_fallbacks = dict(streams.get("fallbacks", {}))
        self._streams.clear()
        self._stream_nodes.clear()
        metric_state = state.get("telemetry")
        if metric_state and self.telemetry is not None:
            self.telemetry.registry.restore(metric_state)

    # -- introspection helpers (examples, tests, experiments) ----------------

    def score_of(self, pid: int) -> float:
        # No flush: scores update only inside post_operation, where any
        # comparison already materialised its digests synchronously
        # (materialise_baseline flushes).  A pending digest is by
        # construction one no comparison has demanded, so it cannot
        # influence any row — draining the scheduler here would digest
        # bytes the lazy reference path never touches.
        return self.scoreboard.row(self._root_pid(pid)).score

    def row_of(self, pid: int):
        # Same reasoning as score_of: pending digests are score-neutral.
        return self.scoreboard.row(self._root_pid(pid),
                                   self._proc_name(self._root_pid(pid)))

    def stream_stats(self) -> dict:
        """Incremental-digest observability: stream lifecycle counters
        plus the per-reason fallback tally (the rate operators watch)."""
        return {
            "enabled": self._streaming_digests,
            "started": self.streams_started,
            "finalized": self.streams_finalized,
            "bytes_streamed": self.bytes_streamed,
            "in_flight": len(self._streams),
            "fallbacks": dict(self.stream_fallbacks),
        }

    def store_stats(self) -> Optional[dict]:
        """Attached baseline store's storage/residency view, or ``None``.

        For the mmap backend this is the operator's memory story: how
        many records have been paged in from disk and how many sit in
        the bounded hot-entry LRU right now (``resident`` ≤
        ``hot_capacity``, never the corpus size).
        """
        store = self.cache.baseline_store
        if store is None:
            return None
        stats = store.page_stats()
        stats["entries"] = len(store)
        stats["fingerprint"] = store.fingerprint
        return stats

    def stream_entropy_of(self, handle_id: int) -> Optional[float]:
        """Corrected entropy of everything written through a live handle,
        served from its running histogram — no re-count of the stream."""
        hist = self._write_hists.get(handle_id)
        if hist is None:
            return None
        return corrected_entropy_from_counts(hist[0], hist[1])

    def entropy_state_of(self, pid: int) -> ProcessEntropyState:
        return self._state(pid).entropy

    def funnel_state_of(self, pid: int) -> ProcessFunnelState:
        return self._state(pid).funnel
