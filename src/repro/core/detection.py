"""Detections and alert policies.

When a process's reputation score crosses its threshold, CryptoDrop
"pauses disk accesses for the flagged process and requests permission from
the user to allow the process to continue" (§IV-A).  The reproduction
models that prompt as an :class:`AlertPolicy`:

* :class:`SuspendPolicy` — the default "drop it": every detection suspends.
* :class:`AllowPolicy` — the user always clicks allow (whitelists the
  process family; used to let 7-zip finish in the FP experiments).
* :class:`CallbackPolicy` — arbitrary decision logic, e.g. an interactive
  prompt in the live-monitor example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

__all__ = ["Detection", "AlertPolicy", "SuspendPolicy", "AllowPolicy",
           "CallbackPolicy"]


@dataclass
class Detection:
    """One threshold crossing."""

    root_pid: int
    process_name: str
    score: float
    threshold: float
    union_fired: bool
    flags: Set[str]
    timestamp_us: float
    trigger_op: str = ""
    trigger_path: str = ""
    suspended: bool = True
    #: filled in by the sandbox runner after damage assessment
    files_lost: Optional[int] = None
    history_len: int = 0

    def summary(self) -> str:
        verb = "suspended" if self.suspended else "allowed by user"
        union = " [union]" if self.union_fired else ""
        return (f"{self.process_name} (pid {self.root_pid}) {verb} at "
                f"score {self.score:.0f}/{self.threshold:.0f}{union} "
                f"on {self.trigger_op} {self.trigger_path}")


class AlertPolicy:
    """Decides what the 'user' answers when CryptoDrop raises an alert."""

    def decide(self, detection: Detection) -> bool:
        """Return True to suspend ("drop it"), False to allow."""
        raise NotImplementedError


class SuspendPolicy(AlertPolicy):
    """Always drop it (the experimental default)."""

    def decide(self, detection: Detection) -> bool:
        return True


class AllowPolicy(AlertPolicy):
    """Always allow; detections are still recorded."""

    def decide(self, detection: Detection) -> bool:
        return False


@dataclass
class CallbackPolicy(AlertPolicy):
    """Delegate to a callable; records every consultation."""

    callback: Callable[[Detection], bool]
    consulted: List[Detection] = field(default_factory=list)

    def decide(self, detection: Detection) -> bool:
        self.consulted.append(detection)
        return bool(self.callback(detection))
