"""Deferred inspection scheduling — the batched close path.

With ``lazy_close_digests`` on, baseline captures keep their bytes and
postpone the similarity digest until a comparison first needs it
(:class:`~repro.core.filestate.FileStateCache` marks these records via
``pending_content``).  The scalar reference path materialises each record
individually; :class:`InspectionScheduler` instead *collects* the pending
set and materialises all of it through the batched
:func:`~repro.simhash.sdhash.digest_many` kernel the moment any one
digest is demanded — one numpy dispatch per flush instead of one per
file.

The identity contract: a flush is always synchronous and always runs
*before* the demanding consumer proceeds (comparison, checkpoint,
explicit ``flush_inspections``), and a digest is a pure function of
content, so detection output — scores, verdicts, timelines — is
bit-identical whether digests are materialised one at a time, batched,
or eagerly (``batch_digests`` and ``lazy_close_digests`` off).  Score
reads deliberately do *not* flush: scores only move inside
``post_operation``, where any comparison has already materialised its
digests, so a record still pending at read time is provably
score-neutral — draining it would digest bytes the lazy reference path
never touches.  Per-record resolution inside a flush
mirrors :meth:`FileStateCache.inspect` step for step: digest-LRU probe,
corpus-store probe, then the live kernel for the remainder, with the
same counters and ``BaselineResolved`` telemetry per record.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..simhash.sdhash import digest_many
from ..simhash.ssdeep import ctph
from ..telemetry.events import DigestBatchFlushed

__all__ = ["InspectionScheduler"]


class InspectionScheduler:
    """Collects deferred-digest records and flushes them as one batch.

    Owned by the engine (behind the ``batch_digests`` config knob) and
    attached to its :class:`~repro.core.filestate.FileStateCache`, which
    enqueues a record whenever a capture defers its digest and calls
    :meth:`flush` from ``materialise_baseline``.  Keyed by node id: a
    record replaced under the same node (rename linking, re-capture)
    simply overwrites its slot, so orphaned pending bytes are never
    digested.
    """

    __slots__ = ("cache", "telemetry", "_pending", "_pending_sizes",
                 "pending_bytes", "pending_bytes_cap", "forced_flushes",
                 "flushes", "materialised", "live_digests", "bytes_live",
                 "max_batch", "closes")

    def __init__(self, cache, telemetry=None,
                 pending_bytes_cap: int = 0) -> None:
        self.cache = cache
        self.telemetry = telemetry
        self._pending: Dict[int, object] = {}
        #: exact bytes recorded per pending node — re-captures of the same
        #: node replace their slot, so the tally is a replace, not an add
        self._pending_sizes: Dict[int, int] = {}
        self.pending_bytes = 0
        #: watermark: a non-zero cap force-flushes the whole pending set
        #: the moment its retained ``pending_content`` bytes exceed it,
        #: bounding deferred-digest memory on long-lived monitors
        self.pending_bytes_cap = max(0, int(pending_bytes_cap))
        self.forced_flushes = 0
        self.flushes = 0
        self.materialised = 0
        self.live_digests = 0
        self.bytes_live = 0
        self.max_batch = 0
        self.closes = 0

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, record) -> None:
        """Register a record whose capture deferred its digest."""
        node_id = record.node_id
        old = self._pending_sizes.get(node_id)
        size = len(record.pending_content or b"")
        self._pending[node_id] = record
        self._pending_sizes[node_id] = size
        self.pending_bytes += size - (old or 0)
        if self.telemetry is not None:
            self.telemetry.scheduler_pending_bytes.set(self.pending_bytes)
        if self.pending_bytes_cap and \
                self.pending_bytes > self.pending_bytes_cap:
            self.forced_flushes += 1
            self.flush()

    def discard(self, node_id: Optional[int]) -> None:
        """Forget a pending record (deleted / clobbered nodes)."""
        if node_id is not None and self._pending.pop(node_id, None) \
                is not None:
            self.pending_bytes -= self._pending_sizes.pop(node_id, 0)
            if self.telemetry is not None:
                self.telemetry.scheduler_pending_bytes.set(
                    self.pending_bytes)

    def clear(self) -> None:
        """Drop the pending set without materialising (cache restore)."""
        self._pending.clear()
        self._pending_sizes.clear()
        self.pending_bytes = 0
        if self.telemetry is not None:
            self.telemetry.scheduler_pending_bytes.set(0)

    def close(self) -> int:
        """Shutdown/restart flush: drain everything pending, count it.

        The graceful-shutdown contract (``CryptoDropMonitor.close``,
        ``MonitorSupervisor.stop``, shard restarts): a digest deferred
        just before the monitor goes away must still be materialised —
        silently dropping it would make the final checkpoint disagree
        with an eager run.  Identical to :meth:`flush` except that the
        drain is recorded as a close-time flush, so operators can tell
        shutdown work from demand-driven batching in :meth:`stats`.
        """
        self.closes += 1
        return self.flush()

    def flush(self) -> int:
        """Materialise every pending digest now; returns records drained.

        Records resolve exactly as ``FileStateCache.inspect`` would —
        LRU, then corpus store, then live — but the live remainder goes
        through :func:`digest_many` in one batch.  The cached inspection
        reuses the record's capture-time file type and content key, both
        pure functions of the same bytes.
        """
        if not self._pending:
            return 0
        pending = [rec for rec in self._pending.values()
                   if rec.pending_content is not None]
        self._pending.clear()
        self._pending_sizes.clear()
        self.pending_bytes = 0
        if self.telemetry is not None:
            self.telemetry.scheduler_pending_bytes.set(0)
        if not pending:
            return 0
        cache = self.cache
        dc = cache.digest_cache
        store = cache.baseline_store
        live_records = []
        live_contents = []
        live_keys = []
        for record in pending:
            content = record.pending_content
            record.pending_content = None
            key = record.pending_key
            record.pending_key = None
            if key is None and (dc.capacity > 0 or store is not None):
                key = dc.key(content)
            if dc.capacity > 0:
                found = dc.get(key)
                if found is not None:
                    if cache.telemetry is not None:
                        cache._resolved("lru", found.size)
                    self._install(record, found)
                    continue
            else:
                dc.misses += 1
            if store is not None:
                entry = store.get(key)
                if entry is not None:
                    dc.store_hits += 1
                    if cache.telemetry is not None:
                        cache._resolved("store", entry.size)
                    self._install(record, entry)
                    continue
                dc.store_misses += 1
            live_records.append(record)
            live_contents.append(content)
            live_keys.append(key)
        live = len(live_records)
        bytes_live = 0
        if live:
            from .filestate import InspectionResult
            digests = (digest_many(live_contents)
                       if cache.backend == "sdhash" else None)
            for idx, record in enumerate(live_records):
                content = live_contents[idx]
                bytes_live += len(content)
                dc.bytes_digested += len(content)
                if digests is not None:
                    result = InspectionResult(
                        record.base_type, digests[idx], None, len(content),
                        digested=True, key=live_keys[idx])
                else:
                    result = InspectionResult(
                        record.base_type, None, ctph(content), len(content),
                        digested=True, key=live_keys[idx])
                if live_keys[idx] is not None and dc.capacity > 0:
                    dc.put(live_keys[idx], result)
                if cache.telemetry is not None:
                    cache._resolved("live", len(content))
                self._install(record, result)
        drained = len(pending)
        self.flushes += 1
        self.materialised += drained
        self.live_digests += live
        self.bytes_live += bytes_live
        if drained > self.max_batch:
            self.max_batch = drained
        if self.telemetry is not None:
            t = self.telemetry
            t.digest_batches.inc()
            t.digest_batch_size.observe(drained)
            t.bus.emit(DigestBatchFlushed(
                t.bus.clock_us, pending=drained, live=live,
                bytes_live=bytes_live))
        return drained

    def _install(self, record, inspection) -> None:
        if self.cache.backend == "sdhash":
            record.base_digest = inspection.digest
        else:
            record.base_ctph = inspection.ctph

    def stats(self) -> dict:
        return {
            "pending": len(self._pending),
            "pending_bytes": self.pending_bytes,
            "pending_bytes_cap": self.pending_bytes_cap,
            "forced_flushes": self.forced_flushes,
            "flushes": self.flushes,
            "materialised": self.materialised,
            "live_digests": self.live_digests,
            "bytes_live": self.bytes_live,
            "max_batch": self.max_batch,
            "closes": self.closes,
        }
