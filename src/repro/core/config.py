"""CryptoDrop configuration.

Every threshold, point value, and feature switch in one place.  Defaults
carry the values the paper states explicitly (non-union threshold 200,
entropy delta 0.1, the 0.125 weight constant lives in
:mod:`repro.entropy`) plus calibrated values for the knobs the paper leaves
implicit (per-indicator points, the union bonus).  The ablation benches
sweep these switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

from ..fs.paths import DOCUMENTS, WinPath

__all__ = ["CryptoDropConfig", "LatencyModel", "default_config"]


@dataclass(frozen=True)
class LatencyModel:
    """Modelled per-operation overhead of the analysis engine (µs).

    Calibrated to reproduce §V-H's measured ordering and rough magnitude:
    open/read < 1 ms, close ≈ 1.58 ms, write ≈ 9 ms, rename ≈ 16 ms.  The
    write/rename costs are dominated by the engine's temp-file copy of
    locked files ("writes this data back to temporary files on disk"), the
    close cost by full-file inspection.
    """

    open_us: float = 180.0
    read_us: float = 120.0
    write_base_us: float = 7200.0
    write_per_kb_us: float = 6.0
    close_base_us: float = 1300.0
    close_per_kb_us: float = 8.0
    rename_base_us: float = 14500.0
    rename_per_kb_us: float = 10.0
    delete_us: float = 400.0
    other_us: float = 25.0


@dataclass(frozen=True)
class CryptoDropConfig:
    """Tunable policy for the analysis engine and scoreboard."""

    # -- scope ------------------------------------------------------------
    protected_roots: Tuple[WinPath, ...] = (DOCUMENTS,)

    # -- detection thresholds ----------------------------------------------
    #: paper §V-A: "configured with a non-union detection threshold of 200"
    non_union_threshold: float = 200.0
    #: once union indication fires, the process's threshold drops here
    union_threshold: float = 180.0
    #: immediate score boost on union indication
    union_bonus: float = 40.0

    # -- primary indicator: entropy (paper §IV-C1) --------------------------
    #: trigger when Pwrite − Pread ≥ this (paper value 0.1)
    entropy_delta: float = 0.1
    entropy_points: float = 2.5

    # -- primary indicator: file type change --------------------------------
    type_change_points: float = 5.0

    # -- primary indicator: similarity --------------------------------------
    #: trigger when the sdhash score is at or below this ("near-zero")
    similarity_trigger_max: int = 5
    similarity_points: float = 6.0
    #: "sdhash" or "ctph" (ablation: the Kornblum CTPH backend)
    similarity_backend: str = "sdhash"

    # -- secondary indicator: deletion ---------------------------------------
    #: deletions of protected files before points accrue (temp-file grace)
    deletion_allowance: int = 4
    deletion_points: float = 2.0

    # -- secondary indicator: file type funneling -----------------------------
    #: spread = distinct types read − distinct types written
    funnel_spread: int = 5
    funnel_points: float = 3.0

    # -- dynamic scoring (the paper's §V-C future-work proposal) --------------
    #: "Once identified, CryptoDrop could adjust the number of reputation
    #: points assessed up or down for individual indicators, leading to
    #: faster detection even when union indication is not possible."
    #: When enabled, inspections of files too small for a similarity
    #: digest multiply the remaining indicators' points by this factor.
    dynamic_scoring: bool = False
    dynamic_boost: float = 2.0

    # -- feature switches (ablation experiments) ------------------------------
    enable_entropy: bool = True
    enable_type_change: bool = True
    enable_similarity: bool = True
    enable_deletion: bool = True
    enable_funneling: bool = True
    enable_union: bool = True
    #: score whole process families rather than single processes
    score_process_families: bool = True

    # -- engine internals ------------------------------------------------------
    #: skip baseline digests for files larger than this (cost ceiling)
    max_inspect_bytes: int = 4 * 1024 * 1024
    #: LRU entries in the content-hash digest cache (0 disables caching);
    #: hits skip re-identifying and re-digesting bytes already inspected
    digest_cache_entries: int = 256
    #: defer baseline/close digests until a comparison first consumes
    #: them — captures that are never compared (deleted originals,
    #: born-under-the-writer files) then never digest at all.  Scoring is
    #: bit-identical either way (a digest is a pure function of content);
    #: turn off to bound per-record memory on very long-lived monitors.
    lazy_close_digests: bool = True
    #: materialise deferred digests through the batched ``digest_many``
    #: kernel via the InspectionScheduler (one numpy dispatch per pending
    #: set instead of one per file).  Flushes happen synchronously before
    #: any comparison, score read, or checkpoint, so detection output is
    #: bit-identical with the knob on or off; turn off to force the
    #: scalar reference path.
    batch_digests: bool = True
    #: digest append-only writes incrementally as they land
    #: (``StreamingDigestState``), making the close path O(tail) instead
    #: of O(file) for large sequential writers.  Detection output is
    #: bit-identical on or off — non-append access falls back to the
    #: whole-content path (counted per reason in ``stream_stats()``).
    streaming_digests: bool = True
    #: below this many written bytes a handle's stream stays *buffered*
    #: (chunk refs only, zero numpy work per write) — protects small-file
    #: campaign throughput; crossing the threshold replays the buffer
    #: through the incremental pipeline
    stream_digest_min_bytes: int = 1 << 20
    #: force an InspectionScheduler flush when deferred ``pending_content``
    #: bytes exceed this watermark (bounds close-path memory on monitors
    #: that defer many large files; 0 disables the cap)
    scheduler_pending_bytes_cap: int = 64 << 20

    # -- telemetry (repro.telemetry) -------------------------------------------
    #: structured detection telemetry: event bus + metrics registry.
    #: Off by default — the disabled path is a single ``is None`` check at
    #: every emit point (bench-gated at <2% on the close-heavy workload).
    telemetry_enabled: bool = False
    #: ring-buffer capacity of the event bus (oldest events evicted;
    #: subscribers such as the JSONL exporter still see the full stream)
    telemetry_events: int = 4096

    # -- baseline store storage (repro.store) ----------------------------------
    #: where campaign BaselineStore entries live: ``"dict"`` keeps the
    #: whole corpus index resident (fastest lookups, RAM-bounded) while
    #: ``"mmap"`` serves it from a single on-disk file — millisecond
    #: opens at any corpus size, lazy per-record page-in.  Verdicts are
    #: bit-identical either way (docs/performance.md).
    store_backend: str = "dict"
    #: hot-entry LRU capacity of the mmap store backend — the resident
    #: memory ceiling; steady-state campaigns serve repeats from it
    store_hot_entries: int = 4096

    # -- campaign execution ----------------------------------------------------
    #: worker processes for parallel campaigns; 0 means one per CPU.
    #: (The old hard cap of 8 existed because each worker held its own
    #: corpus digests — the shared BaselineStore removed that cost.)
    campaign_workers: int = 0
    latency: LatencyModel = field(default_factory=LatencyModel)

    def with_overrides(self, **kwargs) -> "CryptoDropConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    def is_protected(self, path: WinPath) -> bool:
        return any(path.is_within(root) for root in self.protected_roots)

    def indicators_enabled(self) -> List[str]:
        names = []
        for flag, name in ((self.enable_entropy, "entropy"),
                           (self.enable_type_change, "type_change"),
                           (self.enable_similarity, "similarity"),
                           (self.enable_deletion, "deletion"),
                           (self.enable_funneling, "funneling")):
            if flag:
                names.append(name)
        return names


def default_config(**overrides) -> CryptoDropConfig:
    """The configuration used for the paper-reproduction experiments."""
    return CryptoDropConfig().with_overrides(**overrides) if overrides \
        else CryptoDropConfig()
