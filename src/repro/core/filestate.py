"""Per-file state tracking — baselines, moves, links, and inspection.

CryptoDrop measures *change*, so it must know what each protected file
looked like before the current writer touched it.  :class:`FileStateCache`
keys state by the VFS's stable node ids (paper Fig. 2 "Caching"), which is
what makes the paper's hard cases work:

* **Class B** — a file moved out of the documents tree stays tracked by
  node id; the close-time inspection in the temp directory still compares
  against the documents-era baseline, and the move back re-keys the path
  ("the state of the file must be carefully tracked each time a file is
  moved", §III).
* **Class C move-over** — when a *new* file is renamed on top of a tracked
  file, the incoming node inherits the clobbered baseline, "allowing
  linking the original and new content and ultimately leading to union
  detection" (§V-B2).

Inspection — identifying a buffer's magic type and computing its
similarity digest — is the engine's single most expensive per-operation
job, so it is centralised in :meth:`FileStateCache.inspect`, which
returns one :class:`InspectionResult` that the engine threads through
scoring *and* baseline refresh (the single-digest invariant: each closed
version is typed and digested exactly once).  Behind it sits a bounded
:class:`DigestCache`, an LRU keyed by content hash, so re-inspections of
bytes the engine has already digested — Class-B files closing with
unchanged content after a move back, editors re-saving identical bytes —
skip the digest entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, Optional

from ..fs.paths import WinPath
from ..magic import FileType, identify
from ..telemetry.events import BaselineResolved, CacheEvicted
from ..simhash import sdhash as _sdhash
from ..simhash.sdhash import SdDigest
from ..simhash.ssdeep import CtphSignature, ctph

__all__ = ["TrackedFile", "FileStateCache", "InspectionResult",
           "DigestCache"]


@dataclass
class TrackedFile:
    """Baseline (previous-version) state for one file node."""

    node_id: int
    path: WinPath
    base_type: Optional[FileType] = None
    base_digest: Optional[SdDigest] = None
    base_ctph: Optional[CtphSignature] = None
    base_size: int = 0
    #: True once a baseline has actually been captured from content
    has_baseline: bool = False
    #: True if this node was newly created by the writer (no prior version)
    born_empty: bool = False
    #: baseline bytes retained by a deferred capture — the digest is a
    #: pure function of content, so it can be materialised lazily the
    #: first time a comparison actually needs it (and never, for the
    #: common delete/overwrite-without-compare flows)
    pending_content: Optional[bytes] = None
    #: content key computed at capture time, carried alongside the
    #: pending bytes so materialisation never re-hashes the same content
    pending_key: Optional[bytes] = None


@dataclass
class InspectionResult:
    """One version's identification + digest, computed exactly once.

    ``digested`` records whether the similarity backend actually ran over
    the content (False when digests are disabled or the buffer exceeds
    the inspection ceiling) — consumers use it to distinguish "digest is
    None because the content cannot score" from "digest was never
    attempted".  ``deferred`` marks the lazy-digest variant: the content
    *could* be digested but no consumer needed it yet; holders keep the
    bytes and materialise through :meth:`FileStateCache.inspect` on first
    use.
    """

    file_type: FileType
    digest: Optional[SdDigest]
    ctph: Optional[CtphSignature]
    size: int
    digested: bool
    deferred: bool = False
    #: the content's 16-byte BLAKE2b cache key when one was computed —
    #: threaded through so one close hashes its content exactly once
    key: Optional[bytes] = None


class DigestCache:
    """Bounded LRU of :class:`InspectionResult` keyed by content hash.

    The key is a 16-byte BLAKE2b of the content — hashing is ~50× cheaper
    than digesting, so a hit turns a close-time inspection into a lookup.
    Hit/miss/eviction counters and the bytes-digested tally feed
    :mod:`repro.perfstats`; entries are deliberately *not* serialised by
    checkpoints (a restored engine re-digests rather than trusting stale
    results — see :meth:`FileStateCache.restore`).
    """

    __slots__ = ("capacity", "hits", "misses", "evictions",
                 "bytes_digested", "bytes_streamed",
                 "store_hits", "store_misses", "deferred",
                 "telemetry", "_entries")

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(0, int(capacity))
        #: TelemetrySession or None, wired by the owning FileStateCache;
        #: eviction events are stamped with the bus clock (the cache has
        #: no operation context of its own)
        self.telemetry = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_digested = 0
        #: subset of ``bytes_digested`` whose digest came from an
        #: incremental StreamingDigestState finalize (O(tail) close) —
        #: the content was never re-read at close time
        self.bytes_streamed = 0
        #: lookups resolved from an attached corpus BaselineStore
        self.store_hits = 0
        #: lookups that probed an attached store and fell through
        self.store_misses = 0
        #: inspections whose digest was deferred (lazy close path)
        self.deferred = 0
        self._entries: "OrderedDict[bytes, InspectionResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(content: bytes) -> bytes:
        return blake2b(content, digest_size=16).digest()

    def get(self, key: bytes) -> Optional[InspectionResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, result: InspectionResult) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self.telemetry is not None:
                self.telemetry.cache_evictions.inc()
                self.telemetry.bus.emit(CacheEvicted(
                    self.telemetry.bus.clock_us,
                    entries=len(self._entries), capacity=self.capacity))

    def clear_entries(self) -> None:
        """Drop cached results; counters survive."""
        self._entries.clear()

    def counters(self) -> dict:
        """The checkpoint-safe slice of :meth:`stats`: lifetime counters
        only, no ephemeral entry count — a restored cache starts empty, so
        including ``entries`` would make checkpoints non-idempotent."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_digested": self.bytes_digested,
            "bytes_streamed": self.bytes_streamed,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "deferred": self.deferred,
        }

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_digested": self.bytes_digested,
            "bytes_streamed": self.bytes_streamed,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "deferred": self.deferred,
        }

    def load_stats(self, state: dict) -> None:
        self.hits = int(state.get("hits", 0))
        self.misses = int(state.get("misses", 0))
        self.evictions = int(state.get("evictions", 0))
        self.bytes_digested = int(state.get("bytes_digested", 0))
        self.bytes_streamed = int(state.get("bytes_streamed", 0))
        self.store_hits = int(state.get("store_hits", 0))
        self.store_misses = int(state.get("store_misses", 0))
        self.deferred = int(state.get("deferred", 0))


class FileStateCache:
    """Node-id-keyed baseline cache with move/link handling."""

    def __init__(self, backend: str = "sdhash",
                 max_inspect_bytes: int = 4 * 1024 * 1024,
                 digests_enabled: bool = True,
                 digest_cache_entries: int = 256,
                 baseline_store=None,
                 defer_digests: bool = False,
                 telemetry=None) -> None:
        if backend not in ("sdhash", "ctph"):
            raise ValueError(f"unknown similarity backend {backend!r}")
        self.backend = backend
        self.max_inspect_bytes = max_inspect_bytes
        #: ablation runs with the similarity indicator off skip digesting
        #: entirely (type identification is kept — it is cheap)
        self.digests_enabled = digests_enabled
        self.telemetry = telemetry
        self.digest_cache = DigestCache(digest_cache_entries)
        self.digest_cache.telemetry = telemetry
        #: read-only corpus BaselineStore consulted before digesting; must
        #: have been built under the same parameters, or its results would
        #: differ from live inspection (bit-identical scoring contract)
        if baseline_store is not None and not baseline_store.compatible_with(
                backend, max_inspect_bytes, digests_enabled):
            raise ValueError(
                "baseline store was built with different similarity "
                f"parameters ({baseline_store.backend}, "
                f"{baseline_store.max_inspect_bytes}, "
                f"digests={baseline_store.digests_enabled}) than this "
                f"cache ({backend}, {max_inspect_bytes}, "
                f"digests={digests_enabled})")
        self.baseline_store = baseline_store
        if baseline_store is not None and telemetry is not None:
            # surface mmap-backend page-ins on this engine's session
            # (dict storage has nothing to observe — no-op bind)
            baseline_store.bind_telemetry(telemetry)
        #: lazy close path: baseline captures keep the bytes and digest
        #: only when a comparison first needs them
        self.defer_digests = defer_digests
        #: InspectionScheduler attached by the engine (``batch_digests``):
        #: deferred captures enqueue here and materialise as one batch
        self.scheduler = None
        self._by_node: Dict[int, TrackedFile] = {}

    def __len__(self) -> int:
        return len(self._by_node)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_node

    def get(self, node_id: int) -> Optional[TrackedFile]:
        return self._by_node.get(node_id)

    # -- inspection ------------------------------------------------------------

    def inspect(self, content: bytes, want_digest: bool = True,
                key: Optional[bytes] = None,
                stream=None) -> InspectionResult:
        """Identify and digest ``content`` once, through store + LRU.

        Resolution order: digest LRU (content already inspected by this
        engine) → attached :class:`~repro.corpus.baselines.BaselineStore`
        (pristine corpus content, digested once per corpus) → live
        inspection.  With ``want_digest=False`` a live inspection defers
        the digest: the result is type-and-size only, flagged
        ``deferred``, and never cached — callers retain the bytes and
        re-inspect when a comparison actually needs the digest, passing
        back the capture-time ``key`` so the content is hashed once.

        ``stream`` is an in-flight
        :class:`~repro.simhash.sdhash.StreamingDigestState` whose bytes
        the caller has validated to equal ``content`` (sdhash backend
        only).  It supplies the cache key from its running hasher and,
        on the live path, the digest via an O(tail) ``finalize()`` —
        bit-identical to ``sdhash(content)``, without re-reading the
        content.  LRU/store hits still win (the stream is then simply
        discarded, unfinalized).
        """
        if not isinstance(content, bytes):
            content = bytes(content)
        dc = self.digest_cache
        if key is None and stream is not None:
            key = stream.key()
        if key is None and (dc.capacity > 0
                            or self.baseline_store is not None):
            key = dc.key(content)
        if dc.capacity > 0:
            found = dc.get(key)
            if found is not None:
                # cached results are always final (digested, or
                # permanently undigestable) — valid for any want_digest
                if self.telemetry is not None:
                    self._resolved("lru", found.size)
                return found
        else:
            dc.misses += 1
        if self.baseline_store is not None:
            entry = self.baseline_store.get(key)
            if entry is not None:
                dc.store_hits += 1
                if self.telemetry is not None:
                    self._resolved("store", entry.size)
                return entry
            dc.store_misses += 1
        file_type = identify(content)
        can_digest = (self.digests_enabled
                      and len(content) <= self.max_inspect_bytes)
        if can_digest and not want_digest:
            dc.deferred += 1
            if self.telemetry is not None:
                self._resolved("deferred", len(content))
            return InspectionResult(file_type, None, None, len(content),
                                    digested=False, deferred=True, key=key)
        digest: Optional[SdDigest] = None
        sig: Optional[CtphSignature] = None
        if can_digest:
            dc.bytes_digested += len(content)
            if self.backend == "sdhash":
                if stream is not None:
                    digest = stream.finalize()
                    dc.bytes_streamed += len(content)
                else:
                    digest = _sdhash(content)
            else:
                sig = ctph(content)
        result = InspectionResult(file_type, digest, sig, len(content),
                                  can_digest, key=key)
        if key is not None and dc.capacity > 0:
            dc.put(key, result)
        if self.telemetry is not None:
            self._resolved("live", len(content))
        return result

    def _resolved(self, source: str, size: int) -> None:
        # only called with telemetry attached; stamped off the bus clock
        # (inspections have no operation context of their own)
        t = self.telemetry
        t.baseline_resolutions.inc(source=source)
        t.bus.emit(BaselineResolved(t.bus.clock_us, source=source,
                                    size=size))

    # -- lifecycle -----------------------------------------------------------

    def track_new(self, node_id: int, path: WinPath) -> TrackedFile:
        """Start tracking a freshly created (empty) file."""
        record = TrackedFile(node_id=node_id, path=path, born_empty=True,
                             has_baseline=True, base_size=0)
        self._by_node[node_id] = record
        return record

    def ensure_baseline(self, node_id: int, path: WinPath, content: bytes,
                        inspection: Optional[InspectionResult] = None
                        ) -> TrackedFile:
        """Capture the previous-version baseline if not already cached."""
        record = self._by_node.get(node_id)
        if record is None:
            record = TrackedFile(node_id=node_id, path=path)
            self._by_node[node_id] = record
        record.path = path
        if not record.has_baseline:
            self._capture(record, content, inspection)
        return record

    def _capture(self, record: TrackedFile, content: bytes,
                 inspection: Optional[InspectionResult] = None) -> None:
        if inspection is None:
            # With lazy digests on, a capture defers the digest: most
            # captured baselines are never compared (files that are
            # deleted, renamed away, or born under the writer), and the
            # store/LRU still short-circuits the deferral for known bytes.
            inspection = self.inspect(content,
                                      want_digest=not self.defer_digests)
        record.base_type = inspection.file_type
        record.base_size = inspection.size
        if inspection.deferred:
            record.base_digest = None
            record.base_ctph = None
            record.pending_content = content
            record.pending_key = inspection.key
            if self.scheduler is not None:
                self.scheduler.enqueue(record)
        else:
            record.pending_content = None
            record.pending_key = None
            if self.backend == "sdhash":
                record.base_digest = inspection.digest
                record.base_ctph = None
            else:
                record.base_ctph = inspection.ctph
                record.base_digest = None
        record.has_baseline = True

    def materialise_baseline(self, record: TrackedFile) -> None:
        """Digest a deferred baseline now (first comparison needs it).

        With an attached scheduler the demand flushes the *whole* pending
        set through the batched kernel; otherwise the record materialises
        alone, reusing its capture-time content key (one hash per close).
        """
        if record.pending_content is None:
            return
        if self.scheduler is not None:
            self.scheduler.flush()
            if record.pending_content is None:
                return
        content = record.pending_content
        record.pending_content = None
        key = record.pending_key
        record.pending_key = None
        inspection = self.inspect(content, want_digest=True, key=key)
        if self.backend == "sdhash":
            record.base_digest = inspection.digest
        else:
            record.base_ctph = inspection.ctph

    def refresh_baseline(self, node_id: int, path: WinPath, content: bytes,
                         inspection: Optional[InspectionResult] = None
                         ) -> TrackedFile:
        """After an inspection, the new version becomes the baseline.

        Pass the close-time :class:`InspectionResult` to reuse its type
        and digest — the single-digest close path — instead of paying for
        a second identification and digest of the same bytes.
        """
        record = self._by_node.get(node_id)
        if record is None:
            record = TrackedFile(node_id=node_id, path=path)
            self._by_node[node_id] = record
        record.path = path
        record.born_empty = False
        self._capture(record, content, inspection)
        return record

    # -- moves -----------------------------------------------------------------

    def on_rename(self, node_id: Optional[int], dest: WinPath,
                  clobbered_node_id: Optional[int]) -> Optional[TrackedFile]:
        """Handle a rename: re-key, and link a move-over to the old baseline.

        Returns the record that should be *compared against* for the moved
        node (the clobbered file's baseline when linking applies), or None
        when nothing is tracked on either side.
        """
        if node_id is None:
            return None
        moved = self._by_node.get(node_id)
        clobbered = (self._by_node.pop(clobbered_node_id, None)
                     if clobbered_node_id is not None else None)
        if clobbered is not None and self.scheduler is not None:
            # the clobbered record is gone; its pending bytes travel on
            # the inherited record below (or die with it)
            self.scheduler.discard(clobbered_node_id)
        if clobbered is not None and clobbered.has_baseline and not clobbered.born_empty:
            # Link: the incoming node inherits the overwritten baseline
            # (including a not-yet-materialised deferred one).
            inherited = TrackedFile(
                node_id=node_id, path=dest,
                base_type=clobbered.base_type,
                base_digest=clobbered.base_digest,
                base_ctph=clobbered.base_ctph,
                base_size=clobbered.base_size,
                has_baseline=True, born_empty=False,
                pending_content=clobbered.pending_content,
                pending_key=clobbered.pending_key)
            self._by_node[node_id] = inherited
            if (inherited.pending_content is not None
                    and self.scheduler is not None):
                self.scheduler.enqueue(inherited)
            return inherited
        if moved is not None:
            moved.path = dest
            return moved
        return None

    def on_delete(self, node_id: Optional[int]) -> Optional[TrackedFile]:
        if node_id is None:
            return None
        if self.scheduler is not None:
            self.scheduler.discard(node_id)
        return self._by_node.pop(node_id, None)

    def is_tracked(self, node_id: Optional[int]) -> bool:
        return node_id is not None and node_id in self._by_node

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-serialisable snapshot of every tracked baseline.

        Node ids are stable for the lifetime of a VFS, so a restored cache
        keyed by them reconnects to the same files after a monitor
        restart.  Digest-cache *entries* are deliberately excluded — only
        the counters travel — so a restored engine can never act on a
        stale cached inspection.  Deferred baselines are materialised
        first (pending bytes never serialise), and an attached
        :class:`~repro.corpus.baselines.BaselineStore` is referenced by
        its descriptor (corpus seed + fingerprint), never embedded.
        """
        entries = []
        for node_id in sorted(self._by_node):
            record = self._by_node[node_id]
            if record.pending_content is not None:
                self.materialise_baseline(record)
            base_type = record.base_type
            entries.append({
                "node_id": record.node_id,
                "path": str(record.path),
                "base_type": None if base_type is None else {
                    "name": base_type.name,
                    "description": base_type.description,
                    "category": base_type.category,
                    "is_high_entropy": base_type.is_high_entropy,
                },
                "base_digest": (None if record.base_digest is None
                                else record.base_digest.to_state()),
                "base_ctph": (None if record.base_ctph is None
                              else str(record.base_ctph)),
                "base_size": record.base_size,
                "has_baseline": record.has_baseline,
                "born_empty": record.born_empty,
            })
        return {"backend": self.backend, "entries": entries,
                "digest_cache": self.digest_cache.counters(),
                "baseline_store": (None if self.baseline_store is None
                                   else self.baseline_store.describe())}

    def restore(self, state: dict) -> None:
        """Replace the cache contents with a :meth:`checkpoint` snapshot."""
        descriptor = state.get("baseline_store")
        if descriptor is not None and self.baseline_store is not None \
                and descriptor.get("fingerprint") != \
                self.baseline_store.fingerprint:
            raise ValueError(
                "checkpoint references baseline store "
                f"{descriptor.get('fingerprint')!r} (corpus seed "
                f"{descriptor.get('seed')!r}) but this cache has store "
                f"{self.baseline_store.fingerprint!r} attached")
        self._by_node.clear()
        if self.scheduler is not None:
            self.scheduler.clear()
        self.digest_cache.clear_entries()
        self.digest_cache.load_stats(state.get("digest_cache", {}))
        for entry in state["entries"]:
            type_state = entry["base_type"]
            record = TrackedFile(
                node_id=int(entry["node_id"]),
                path=WinPath(entry["path"]),
                base_type=None if type_state is None else FileType(
                    type_state["name"], type_state["description"],
                    type_state["category"], type_state["is_high_entropy"]),
                base_digest=(None if entry["base_digest"] is None
                             else SdDigest.from_state(entry["base_digest"])),
                base_ctph=(None if entry["base_ctph"] is None
                           else CtphSignature.parse(entry["base_ctph"])),
                base_size=int(entry["base_size"]),
                has_baseline=bool(entry["has_baseline"]),
                born_empty=bool(entry["born_empty"]),
            )
            self._by_node[record.node_id] = record
