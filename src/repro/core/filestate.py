"""Per-file state tracking — baselines, moves, and links.

CryptoDrop measures *change*, so it must know what each protected file
looked like before the current writer touched it.  :class:`FileStateCache`
keys state by the VFS's stable node ids (paper Fig. 2 "Caching"), which is
what makes the paper's hard cases work:

* **Class B** — a file moved out of the documents tree stays tracked by
  node id; the close-time inspection in the temp directory still compares
  against the documents-era baseline, and the move back re-keys the path
  ("the state of the file must be carefully tracked each time a file is
  moved", §III).
* **Class C move-over** — when a *new* file is renamed on top of a tracked
  file, the incoming node inherits the clobbered baseline, "allowing
  linking the original and new content and ultimately leading to union
  detection" (§V-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..fs.paths import WinPath
from ..magic import FileType, identify
from ..simhash import sdhash as _sdhash
from ..simhash.sdhash import SdDigest
from ..simhash.ssdeep import CtphSignature, ctph

__all__ = ["TrackedFile", "FileStateCache"]


@dataclass
class TrackedFile:
    """Baseline (previous-version) state for one file node."""

    node_id: int
    path: WinPath
    base_type: Optional[FileType] = None
    base_digest: Optional[SdDigest] = None
    base_ctph: Optional[CtphSignature] = None
    base_size: int = 0
    #: True once a baseline has actually been captured from content
    has_baseline: bool = False
    #: True if this node was newly created by the writer (no prior version)
    born_empty: bool = False


class FileStateCache:
    """Node-id-keyed baseline cache with move/link handling."""

    def __init__(self, backend: str = "sdhash",
                 max_inspect_bytes: int = 4 * 1024 * 1024,
                 digests_enabled: bool = True) -> None:
        if backend not in ("sdhash", "ctph"):
            raise ValueError(f"unknown similarity backend {backend!r}")
        self.backend = backend
        self.max_inspect_bytes = max_inspect_bytes
        #: ablation runs with the similarity indicator off skip digesting
        #: entirely (type identification is kept — it is cheap)
        self.digests_enabled = digests_enabled
        self._by_node: Dict[int, TrackedFile] = {}

    def __len__(self) -> int:
        return len(self._by_node)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_node

    def get(self, node_id: int) -> Optional[TrackedFile]:
        return self._by_node.get(node_id)

    # -- lifecycle -----------------------------------------------------------

    def track_new(self, node_id: int, path: WinPath) -> TrackedFile:
        """Start tracking a freshly created (empty) file."""
        record = TrackedFile(node_id=node_id, path=path, born_empty=True,
                             has_baseline=True, base_size=0)
        self._by_node[node_id] = record
        return record

    def ensure_baseline(self, node_id: int, path: WinPath,
                        content: bytes) -> TrackedFile:
        """Capture the previous-version baseline if not already cached."""
        record = self._by_node.get(node_id)
        if record is None:
            record = TrackedFile(node_id=node_id, path=path)
            self._by_node[node_id] = record
        record.path = path
        if not record.has_baseline:
            self._capture(record, content)
        return record

    def _capture(self, record: TrackedFile, content: bytes) -> None:
        record.base_type = identify(content)
        record.base_size = len(content)
        if not self.digests_enabled:
            record.base_digest = None
            record.base_ctph = None
        elif len(content) <= self.max_inspect_bytes:
            if self.backend == "sdhash":
                record.base_digest = _sdhash(content)
            else:
                record.base_ctph = ctph(content)
        else:
            record.base_digest = None
            record.base_ctph = None
        record.has_baseline = True

    def refresh_baseline(self, node_id: int, path: WinPath,
                         content: bytes) -> TrackedFile:
        """After an inspection, the new version becomes the baseline."""
        record = self._by_node.get(node_id)
        if record is None:
            record = TrackedFile(node_id=node_id, path=path)
            self._by_node[node_id] = record
        record.path = path
        record.born_empty = False
        self._capture(record, content)
        return record

    # -- moves -----------------------------------------------------------------

    def on_rename(self, node_id: Optional[int], dest: WinPath,
                  clobbered_node_id: Optional[int]) -> Optional[TrackedFile]:
        """Handle a rename: re-key, and link a move-over to the old baseline.

        Returns the record that should be *compared against* for the moved
        node (the clobbered file's baseline when linking applies), or None
        when nothing is tracked on either side.
        """
        if node_id is None:
            return None
        moved = self._by_node.get(node_id)
        clobbered = (self._by_node.pop(clobbered_node_id, None)
                     if clobbered_node_id is not None else None)
        if clobbered is not None and clobbered.has_baseline and not clobbered.born_empty:
            # Link: the incoming node inherits the overwritten baseline.
            inherited = TrackedFile(
                node_id=node_id, path=dest,
                base_type=clobbered.base_type,
                base_digest=clobbered.base_digest,
                base_ctph=clobbered.base_ctph,
                base_size=clobbered.base_size,
                has_baseline=True, born_empty=False)
            self._by_node[node_id] = inherited
            return inherited
        if moved is not None:
            moved.path = dest
            return moved
        return None

    def on_delete(self, node_id: Optional[int]) -> Optional[TrackedFile]:
        if node_id is None:
            return None
        return self._by_node.pop(node_id, None)

    def is_tracked(self, node_id: Optional[int]) -> bool:
        return node_id is not None and node_id in self._by_node

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-serialisable snapshot of every tracked baseline.

        Node ids are stable for the lifetime of a VFS, so a restored cache
        keyed by them reconnects to the same files after a monitor
        restart.
        """
        entries = []
        for node_id in sorted(self._by_node):
            record = self._by_node[node_id]
            base_type = record.base_type
            entries.append({
                "node_id": record.node_id,
                "path": str(record.path),
                "base_type": None if base_type is None else {
                    "name": base_type.name,
                    "description": base_type.description,
                    "category": base_type.category,
                    "is_high_entropy": base_type.is_high_entropy,
                },
                "base_digest": (None if record.base_digest is None
                                else record.base_digest.to_state()),
                "base_ctph": (None if record.base_ctph is None
                              else str(record.base_ctph)),
                "base_size": record.base_size,
                "has_baseline": record.has_baseline,
                "born_empty": record.born_empty,
            })
        return {"backend": self.backend, "entries": entries}

    def restore(self, state: dict) -> None:
        """Replace the cache contents with a :meth:`checkpoint` snapshot."""
        from ..simhash.sdhash import SdDigest
        self._by_node.clear()
        for entry in state["entries"]:
            type_state = entry["base_type"]
            record = TrackedFile(
                node_id=int(entry["node_id"]),
                path=WinPath(entry["path"]),
                base_type=None if type_state is None else FileType(
                    type_state["name"], type_state["description"],
                    type_state["category"], type_state["is_high_entropy"]),
                base_digest=(None if entry["base_digest"] is None
                             else SdDigest.from_state(entry["base_digest"])),
                base_ctph=(None if entry["base_ctph"] is None
                           else CtphSignature.parse(entry["base_ctph"])),
                base_size=int(entry["base_size"]),
                has_baseline=bool(entry["has_baseline"]),
                born_empty=bool(entry["born_empty"]),
            )
            self._by_node[record.node_id] = record
