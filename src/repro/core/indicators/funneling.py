"""Secondary indicator: file type funneling (paper §III-D).

"File type funneling occurs when an application reads an unusually
disparate number of files as it writes ... By tracking the number of file
types a process has read and written, the difference of these can be
assigned a threshold before considering it suspicious."

Ransomware reads every type in the documents tree but writes essentially
one (ciphertext / its renamed container).  A word processor legitimately
funnels a little (reads pictures + audio, writes one document), so the
spread threshold leaves normal applications room.
"""

from __future__ import annotations

from typing import Set

__all__ = ["ProcessFunnelState"]


class ProcessFunnelState:
    """Distinct read/write type tracking for one process (family)."""

    __slots__ = ("types_read", "types_written", "spread_threshold",
                 "_scored_spread")

    def __init__(self, spread_threshold: int = 5) -> None:
        self.types_read: Set[str] = set()
        self.types_written: Set[str] = set()
        self.spread_threshold = spread_threshold
        self._scored_spread = 0

    @property
    def spread(self) -> int:
        return max(0, len(self.types_read) - len(self.types_written))

    def on_read_type(self, type_name: str) -> bool:
        """Record a read of ``type_name``; True when the widened spread
        crosses (or extends past) the threshold and should score."""
        self.types_read.add(type_name)
        return self._maybe_score()

    def on_write_type(self, type_name: str) -> None:
        self.types_written.add(type_name)

    def _maybe_score(self) -> bool:
        spread = self.spread
        if spread >= self.spread_threshold and spread > self._scored_spread:
            self._scored_spread = spread
            return True
        return False

    def state(self) -> dict:
        """JSON-serialisable accumulator state (checkpoint/restore)."""
        return {"types_read": sorted(self.types_read),
                "types_written": sorted(self.types_written),
                "scored_spread": self._scored_spread}

    def load(self, state: dict) -> "ProcessFunnelState":
        self.types_read = set(state["types_read"])
        self.types_written = set(state["types_written"])
        self._scored_spread = int(state["scored_spread"])
        return self
