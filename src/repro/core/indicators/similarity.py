"""Primary indicator: similarity collapse (paper §III-B).

"Given the similarity hash of the previous version of a file, a comparison
with the hash of the encrypted version of that file should yield no match"
— ciphertext is indistinguishable from random data, and sdhash scores two
random blobs near zero.  A comparable pair of digests scoring at or below
the near-zero threshold is one hit.

Files too small to digest (< 512 B for sdhash) yield ``None`` and score
nothing — the CTB-Locker delay of §V-C.
"""

from __future__ import annotations

from typing import Optional

from ...simhash import compare, compare_signatures, ctph, sdhash
from ..filestate import InspectionResult, TrackedFile

__all__ = ["similarity_score", "similarity_collapsed"]


def similarity_score(record: TrackedFile, new_content: bytes,
                     backend: str = "sdhash",
                     inspection: Optional[InspectionResult] = None
                     ) -> Optional[int]:
    """0–100 similarity of ``new_content`` to the record's baseline.

    None when either side has no digest (too small, never captured, or the
    file was born empty under the current writer).

    ``inspection`` carries the close path's single
    :class:`~..filestate.InspectionResult` for ``new_content`` so the
    digest is not recomputed here.  When the inspection did *not* digest
    (``digested`` is False — e.g. the buffer exceeded the inspection
    ceiling), we fall back to digesting directly: the ceiling only caps
    the *baseline* side, matching the pre-cache behaviour.
    """
    if not record.has_baseline or record.born_empty:
        return None
    if record.pending_content is not None:
        # A lazily captured baseline nobody has materialised yet (the
        # engine materialises through its cache first, so this only
        # triggers for standalone callers).  Digests are pure functions
        # of content, so computing here is bit-identical.
        pending, record.pending_content = record.pending_content, None
        if backend == "sdhash":
            record.base_digest = sdhash(pending)
        elif backend == "ctph":
            record.base_ctph = ctph(pending)
    if backend == "sdhash":
        if record.base_digest is None:
            return None
        if inspection is not None and inspection.digested:
            new_digest = inspection.digest
        else:
            new_digest = sdhash(new_content)
        return compare(record.base_digest, new_digest)
    if backend == "ctph":
        if record.base_ctph is None:
            return None
        if inspection is not None and inspection.digested:
            new_sig = inspection.ctph
        else:
            new_sig = ctph(new_content)
        return compare_signatures(record.base_ctph, new_sig)
    raise ValueError(f"unknown similarity backend {backend!r}")


def similarity_collapsed(score: Optional[int], trigger_max: int = 5) -> bool:
    """True when the comparison succeeded and came back near zero."""
    return score is not None and score <= trigger_max
