"""Primary indicator: read/write entropy delta (paper §IV-C1).

Per process, CryptoDrop keeps weighted means of the Shannon entropy of
every atomic read (``Pread``) and write (``Pwrite``) against protected
files, weighted by ``w = 0.125 × ⌊e⌉ × b`` so that ransom notes — "small,
low-entropy writes" — cannot drag the averages around.  After any update,
once the process has at least one read and one write on record, the delta
``e = Pwrite − Pread`` is evaluated; ``e ≥ 0.1`` marks the operation
suspicious.  The measurement is stateless with respect to files: it is a
property of the process's I/O, not of any file version.
"""

from __future__ import annotations

from typing import Optional

from ...entropy import WeightedEntropyMean

__all__ = ["ProcessEntropyState"]


class ProcessEntropyState:
    """Pread/Pwrite accumulator for one process (family)."""

    __slots__ = ("p_read", "p_write", "delta_threshold")

    def __init__(self, delta_threshold: float = 0.1) -> None:
        # bias-corrected estimation: see repro.entropy.corrected_entropy
        self.p_read = WeightedEntropyMean(corrected=True)
        self.p_write = WeightedEntropyMean(corrected=True)
        self.delta_threshold = delta_threshold

    def on_read(self, data: bytes) -> None:
        if data:
            self.p_read.update(data)

    def on_write(self, data: bytes) -> Optional[float]:
        """Fold a write; return the delta when it trips the threshold."""
        if not data:
            return None
        self.p_write.update(data)
        return self.current_trigger()

    def on_write_counts(self, counts, n: int) -> Optional[float]:
        """:meth:`on_write` from a precomputed byte histogram of the
        payload — bit-identical fold, no second ``bincount``."""
        if n == 0:
            return None
        self.p_write.update_from_counts(counts, n)
        return self.current_trigger()

    def current_trigger(self) -> Optional[float]:
        delta = self.delta()
        if delta is not None and delta >= self.delta_threshold:
            return delta
        return None

    def delta(self) -> Optional[float]:
        """``Pwrite − Pread`` clamped at 0, or None before both exist."""
        read_mean = self.p_read.value
        write_mean = self.p_write.value
        if read_mean is None or write_mean is None:
            return None
        return max(0.0, write_mean - read_mean)

    def state(self) -> dict:
        """JSON-serialisable accumulator state (checkpoint/restore)."""
        return {"p_read": list(self.p_read.state()),
                "p_write": list(self.p_write.state())}

    def load(self, state: dict) -> "ProcessEntropyState":
        self.p_read.load(*state["p_read"])
        self.p_write.load(*state["p_write"])
        return self
