"""Indicator plumbing shared by all five indicators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["IndicatorHit", "PRIMARY", "SECONDARY"]

#: canonical indicator names
PRIMARY = ("type_change", "similarity", "entropy")
SECONDARY = ("deletion", "funneling")


@dataclass(frozen=True)
class IndicatorHit:
    """One suspicious observation, ready for the scoreboard.

    ``primary_flag`` names the primary indicator this hit sets for union
    accounting (None for secondary indicators).
    """

    indicator: str
    points: float
    primary_flag: Optional[str] = None
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.indicator}(+{self.points:g}) {self.detail}".strip()
