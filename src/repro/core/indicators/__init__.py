"""CryptoDrop's five behaviour indicators.

Three primary (file type change, similarity collapse, entropy delta) whose
union drives accelerated detection, and two secondary (bulk deletion, file
type funneling) that fill the gaps (paper §III).
"""

from .base import PRIMARY, SECONDARY, IndicatorHit
from .deletion import ProcessDeletionState
from .entropy import ProcessEntropyState
from .filetype import type_changed
from .funneling import ProcessFunnelState
from .similarity import similarity_collapsed, similarity_score

__all__ = [
    "IndicatorHit", "PRIMARY", "ProcessDeletionState",
    "ProcessEntropyState", "ProcessFunnelState", "SECONDARY",
    "similarity_collapsed", "similarity_score", "type_changed",
]
