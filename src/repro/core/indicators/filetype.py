"""Primary indicator: file type change (paper §III-A).

"Since files generally retain their file type and formatting over the
course of their existence, bulk modification of such data should be
considered suspicious."  The engine identifies the magic-number type of a
file before and after a process writes it; a changed type is one hit.

A single change is *not* treated as malicious by itself (a legitimate
format upgrade can do it); it only contributes points and sets the union
flag.
"""

from __future__ import annotations

from typing import Optional

from ...magic import EMPTY, FileType

__all__ = ["type_changed"]


def type_changed(before: Optional[FileType],
                 after: Optional[FileType]) -> bool:
    """True when a meaningful type transition occurred.

    Transitions involving empty files are ignored: a newly created file has
    no previous type to change *from*, and truncation to zero bytes is a
    deletion-like event handled elsewhere.
    """
    if before is None or after is None:
        return False
    if before is EMPTY or after is EMPTY:
        return False
    return before.name != after.name
