"""Secondary indicator: bulk deletion (paper §III-D).

"Deletion is a basic filesystem operation and is not generally suspicious
... However, the deletion of many files from a user's documents may
indicate malicious activity."  Class C ransomware deletes originals after
writing independent ciphertext files; this indicator is what catches the
22 Class-C samples that evade union indication (§V-B2).

A small allowance absorbs normal temp-file churn before points accrue.
"""

from __future__ import annotations

__all__ = ["ProcessDeletionState"]


class ProcessDeletionState:
    """Per-process deletion counter with a grace allowance."""

    __slots__ = ("count", "allowance")

    def __init__(self, allowance: int = 4) -> None:
        self.count = 0
        self.allowance = allowance

    def on_delete(self) -> bool:
        """Record one protected-file deletion; True when it should score."""
        self.count += 1
        return self.count > self.allowance

    def state(self) -> dict:
        """JSON-serialisable accumulator state (checkpoint/restore)."""
        return {"count": self.count}

    def load(self, state: dict) -> "ProcessDeletionState":
        self.count = int(state["count"])
        return self
