"""Reputation scoreboard and union indication (paper §IV-A/B).

Each process (or process family) accumulates points from indicator hits.
The first time all three primary flags are set for one process, *union
indication* fires: the score receives a bonus and the process's detection
threshold drops — "this both dramatically increasing the current score of
a process and lowering that process's detection threshold" (§V-B2).

Every hit is journalled, which lets the false-positive experiments replay
a workload's score trajectory under arbitrary thresholds (Fig. 6) without
re-running it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..telemetry.events import ScoreDelta, UnionBoost
from .config import CryptoDropConfig
from .indicators import PRIMARY, IndicatorHit

__all__ = ["ScoreEvent", "ProcessScore", "Scoreboard"]


@dataclass(frozen=True)
class ScoreEvent:
    """One scoreboard mutation (indicator hit or union bonus)."""

    timestamp_us: float
    indicator: str
    points: float
    score_after: float
    path: str = ""
    detail: str = ""


@dataclass
class ProcessScore:
    """Scoreboard row for one process family."""

    root_pid: int
    name: str
    score: float = 0.0
    threshold: float = 200.0
    flags: Set[str] = field(default_factory=set)
    union_fired: bool = False
    detected: bool = False
    history: List[ScoreEvent] = field(default_factory=list)

    @property
    def over_threshold(self) -> bool:
        return self.score >= self.threshold

    def first_crossing(self, non_union_threshold: float,
                       union_threshold: Optional[float] = None,
                       with_union: bool = True) -> Optional[float]:
        """Replay: earliest timestamp the score crosses under a
        hypothetical threshold configuration, or None if it never does.

        Used by the Fig. 6 threshold sweep — benign runs are recorded once
        and their journalled trajectories evaluated at every candidate
        threshold.  With ``with_union=False`` the union bonus events are
        excluded from the running score (the no-union ablation).
        """
        effective = non_union_threshold
        running = 0.0
        for event in self.history:
            if event.indicator == "union":
                if not with_union:
                    continue
                if union_threshold is not None:
                    effective = min(effective, union_threshold)
            running += event.points
            if running >= effective:
                return event.timestamp_us
        return None


class Scoreboard:
    """All process scores for one engine instance."""

    def __init__(self, config: CryptoDropConfig, telemetry=None) -> None:
        self.config = config
        self.telemetry = telemetry
        self._rows: Dict[int, ProcessScore] = {}

    def row(self, root_pid: int, name: str = "") -> ProcessScore:
        row = self._rows.get(root_pid)
        if row is None:
            row = ProcessScore(root_pid=root_pid, name=name,
                               threshold=self.config.non_union_threshold)
            self._rows[root_pid] = row
        elif name and not row.name:
            row.name = name
        return row

    def rows(self) -> List[ProcessScore]:
        return list(self._rows.values())

    def apply(self, root_pid: int, hit: IndicatorHit, timestamp_us: float,
              path: str = "", name: str = "") -> ProcessScore:
        """Fold one indicator hit; handles flags and union indication."""
        row = self.row(root_pid, name)
        row.score += hit.points
        row.history.append(ScoreEvent(timestamp_us, hit.indicator,
                                      hit.points, row.score, path,
                                      hit.detail))
        if self.telemetry is not None:
            self.telemetry.bus.emit(ScoreDelta(
                timestamp_us, root_pid=root_pid, indicator=hit.indicator,
                points=hit.points, score_after=row.score, path=path))
        if hit.primary_flag:
            row.flags.add(hit.primary_flag)
            self._maybe_union(row, timestamp_us, path)
        return row

    def set_flag(self, root_pid: int, flag: str, timestamp_us: float,
                 path: str = "", name: str = "") -> ProcessScore:
        """Set a primary flag without points (flag-only observations)."""
        row = self.row(root_pid, name)
        if flag not in row.flags:
            row.flags.add(flag)
            self._maybe_union(row, timestamp_us, path)
        return row

    def _maybe_union(self, row: ProcessScore, timestamp_us: float,
                     path: str) -> None:
        if row.union_fired or not self.config.enable_union:
            return
        if all(flag in row.flags for flag in PRIMARY):
            row.union_fired = True
            row.score += self.config.union_bonus
            row.threshold = min(row.threshold, self.config.union_threshold)
            row.history.append(ScoreEvent(
                timestamp_us, "union", self.config.union_bonus, row.score,
                path, "all three primary indicators present"))
            if self.telemetry is not None:
                self.telemetry.union_boosts.inc()
                self.telemetry.bus.emit(UnionBoost(
                    timestamp_us, root_pid=row.root_pid,
                    bonus=self.config.union_bonus, score_after=row.score,
                    threshold_after=row.threshold, path=path))

    def union_count(self) -> int:
        return sum(1 for row in self._rows.values() if row.union_fired)

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self) -> list:
        """JSON-serialisable snapshot of every row and its journal."""
        rows = []
        for root_pid in sorted(self._rows):
            row = self._rows[root_pid]
            rows.append({
                "root_pid": row.root_pid,
                "name": row.name,
                "score": row.score,
                "threshold": row.threshold,
                "flags": sorted(row.flags),
                "union_fired": row.union_fired,
                "detected": row.detected,
                "history": [
                    {"t_us": e.timestamp_us, "indicator": e.indicator,
                     "points": e.points, "score_after": e.score_after,
                     "path": e.path, "detail": e.detail}
                    for e in row.history],
            })
        return rows

    def restore(self, state: list) -> None:
        """Replace all rows with a :meth:`checkpoint` snapshot."""
        self._rows.clear()
        for entry in state:
            row = ProcessScore(
                root_pid=int(entry["root_pid"]),
                name=entry["name"],
                score=float(entry["score"]),
                threshold=float(entry["threshold"]),
                flags=set(entry["flags"]),
                union_fired=bool(entry["union_fired"]),
                detected=bool(entry["detected"]),
                history=[ScoreEvent(e["t_us"], e["indicator"], e["points"],
                                    e["score_after"], e["path"], e["detail"])
                         for e in entry["history"]],
            )
            self._rows[row.root_pid] = row
