"""Post-detection recovery.

CryptoDrop's contribution is stopping the attack with only a handful of
files lost; this module closes the loop on those files.  When a detection
fires, anything encrypted before suspension can be restored from the
volume shadow copies — *if* the sample didn't delete them first, which is
exactly why TeslaCrypt-class families run ``vssadmin delete shadows``
before encrypting (§III).  The recovery report makes that arms race
visible: the same attack recovers fully against a naive sample and not at
all against a VSS-wiping one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .fs.paths import WinPath
from .fs.shadow import ShadowCopyService
from .fs.snapshot import BaselineIndex, assess_damage
from .fs.vfs import VirtualFileSystem

__all__ = ["RecoveryReport", "recover_from_shadow"]


@dataclass
class RecoveryReport:
    """Outcome of one shadow-copy restoration pass."""

    restored: List[WinPath] = field(default_factory=list)
    unrecoverable: List[WinPath] = field(default_factory=list)
    intact: int = 0

    @property
    def recovery_rate(self) -> float:
        damaged = len(self.restored) + len(self.unrecoverable)
        return len(self.restored) / damaged if damaged else 1.0

    def summary(self) -> str:
        return (f"restored {len(self.restored)}, unrecoverable "
                f"{len(self.unrecoverable)}, intact {self.intact} "
                f"({self.recovery_rate:.0%} of damage recovered)")


def recover_from_shadow(vfs: VirtualFileSystem, baseline: BaselineIndex,
                        shadow: ShadowCopyService,
                        verify: bool = True) -> RecoveryReport:
    """Restore every damaged baseline file from the newest shadow copy.

    ``verify=True`` re-checks each candidate against the baseline hash
    after restoration; a shadow copy taken *after* partial encryption
    would otherwise quietly restore ciphertext.
    """
    import hashlib

    report = RecoveryReport()
    damage = assess_damage(vfs, baseline)
    report.intact = damage.intact
    for path in damage.modified + damage.missing:
        payload: Optional[bytes] = shadow.restore_file(path)
        if payload is None:
            report.unrecoverable.append(path)
            continue
        if verify:
            digest = hashlib.sha256(payload).hexdigest()
            if digest != baseline.hashes.get(path):
                report.unrecoverable.append(path)
                continue
        vfs.peek_write(path, payload, parents=True)
        report.restored.append(path)
    report.restored.sort()
    report.unrecoverable.sort()
    return report
