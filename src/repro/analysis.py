"""Post-campaign analytics.

The paper's §V-B2 narrates *which* indicators did the convicting ("all
three primary indicators proved valuable in the majority of samples...").
These helpers make that quantitative over a finished
:class:`~repro.sandbox.CampaignResult`: per-indicator point attribution,
per-behaviour-class outcome statistics, and detection-latency summaries.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List

from .experiments.reporting import ascii_table, header
from .sandbox import CampaignResult, SampleResult
from .telemetry.timeline import merge_indicator_totals

__all__ = ["IndicatorAttribution", "ClassStats", "attribute_indicators",
           "class_statistics", "detection_latency_summary"]

_INDICATOR_ORDER = ("type_change", "similarity", "entropy", "deletion",
                    "funneling", "union")


@dataclass
class IndicatorAttribution:
    """Share of conviction points earned by each indicator."""

    #: indicator -> total points across the selection
    totals: Dict[str, float] = field(default_factory=dict)
    #: indicator -> fraction of samples where it scored at all
    prevalence: Dict[str, float] = field(default_factory=dict)
    samples: int = 0

    def share(self, indicator: str) -> float:
        total = sum(self.totals.values())
        return self.totals.get(indicator, 0.0) / total if total else 0.0

    def dominant(self) -> str:
        return max(self.totals, key=self.totals.get) if self.totals else ""

    def render(self, title: str = "indicator attribution") -> str:
        rows = []
        for indicator in _INDICATOR_ORDER:
            if indicator not in self.totals:
                continue
            rows.append((indicator,
                         f"{self.totals[indicator]:.0f}",
                         f"{self.share(indicator):.0%}",
                         f"{self.prevalence.get(indicator, 0.0):.0%}"))
        return (header(title)
                + "\n" + ascii_table(
                    ("indicator", "points", "share", "in % of samples"),
                    rows))


def attribute_indicators(results: List[SampleResult]) -> IndicatorAttribution:
    """Aggregate per-indicator points over a selection of sample results.

    The point arithmetic lives in :mod:`repro.telemetry.timeline`; this
    wrapper adds the prevalence view (how many samples an indicator
    scored in at all) on top of the merged totals.
    """
    out = IndicatorAttribution(samples=len(results))
    out.totals = merge_indicator_totals(
        r.indicator_points for r in results)
    if results:
        hits: Dict[str, int] = {}
        for result in results:
            for indicator in result.indicator_points:
                hits[indicator] = hits.get(indicator, 0) + 1
        out.prevalence = {ind: n / len(results) for ind, n in hits.items()}
    return out


@dataclass
class ClassStats:
    """Outcome statistics for one behaviour class (A/B/C)."""

    behavior_class: str
    samples: int
    median_files_lost: float
    mean_files_lost: float
    union_rate: float
    detection_rate: float


def class_statistics(campaign: CampaignResult) -> List[ClassStats]:
    """Per-class outcome table.

    Reproduces the §V-B1 observation that "Class B samples had the
    highest number of files lost" (CTB-Locker's small-file preference
    dominates that class)."""
    grouped: Dict[str, List[SampleResult]] = {}
    for result in campaign.working:
        grouped.setdefault(result.behavior_class, []).append(result)
    out: List[ClassStats] = []
    for cls in sorted(grouped):
        rows = grouped[cls]
        losses = [r.files_lost for r in rows]
        out.append(ClassStats(
            behavior_class=cls,
            samples=len(rows),
            median_files_lost=statistics.median(losses),
            mean_files_lost=statistics.fmean(losses),
            union_rate=sum(r.union_fired for r in rows) / len(rows),
            detection_rate=sum(r.detected for r in rows) / len(rows)))
    return out


def detection_latency_summary(campaign: CampaignResult) -> Dict[str, float]:
    """Simulated seconds from sample start to suspension."""
    latencies = [r.sim_seconds for r in campaign.working if r.detected]
    if not latencies:
        return {"median_s": 0.0, "p90_s": 0.0, "max_s": 0.0}
    ordered = sorted(latencies)
    return {
        "median_s": statistics.median(ordered),
        "p90_s": ordered[int(0.9 * (len(ordered) - 1))],
        "max_s": ordered[-1],
    }
