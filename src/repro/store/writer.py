"""Single-pass store writing and the shard merge behind parallel builds.

:class:`StoreWriter` streams records out as they are produced — a
placeholder header goes down first, records append, then the sorted
index block, then the type table, and finally the real header (now that
every offset and the incremental fingerprint state are known) is written
back over the placeholder.  Nothing is buffered except the index rows
(28 bytes/entry) and the type table, so writing a million-entry store
never materialises the entry dict.

:func:`merge_store_files` fuses shard store files (each a complete,
valid store over a disjoint key subset) into one: record regions are
copied — raw when the shard's type table already matches the merged
one, else with per-record type-index patching and CRC recompute — and
the shard indexes are concatenated, offset-shifted, and merge-sorted as
numpy structured arrays.  Fingerprint states just add (the state is an
order-independent sum), so the merged header is exact without touching
a single key twice.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from .format import (HEADER_SIZE, INDEX_DTYPE, INDEX_ROW, RECORD_FIXED,
                     RECORD_FIXED_SIZE, StoreFormatError, StoreHeader,
                     VERSION, encode_type_table, pack_header, pack_record,
                     record_length, unpack_header)

__all__ = ["StoreWriter", "merge_store_files"]

_COPY_CHUNK = 8 * 1024 * 1024
_STATE_MASK = (1 << 128) - 1


class StoreWriter:
    """Append records, then :meth:`finish` — one sequential pass."""

    def __init__(self, path, seed: int, backend: str,
                 max_inspect_bytes: int, digests_enabled: bool) -> None:
        self.path = str(path)
        self.seed = seed
        self.backend = backend
        self.max_inspect_bytes = max_inspect_bytes
        self.digests_enabled = digests_enabled
        self._types: List = []
        self._type_index: Dict = {}
        self._keys: List[bytes] = []
        self._offsets: List[int] = []
        self._lengths: List[int] = []
        self._state = 0
        self._file = open(self.path, "wb")
        self._file.write(b"\x00" * HEADER_SIZE)
        self._offset = HEADER_SIZE

    def add(self, key: bytes, entry) -> None:
        """Append one entry's record (insertion order is free-form; the
        index is sorted at :meth:`finish`)."""
        type_index = self._type_index.get(entry.file_type)
        if type_index is None:
            type_index = self._type_index[entry.file_type] = \
                len(self._types)
            self._types.append(entry.file_type)
        record = pack_record(entry, type_index)
        self._file.write(record)
        self._keys.append(key)
        self._offsets.append(self._offset)
        self._lengths.append(len(record))
        self._offset += len(record)
        self._state = (self._state + int.from_bytes(key, "little")) \
            & _STATE_MASK

    def finish(self, total_bytes: int = 0,
               build_seconds: float = 0.0) -> str:
        """Sort the index, write it plus the type table, seal the header."""
        index = np.empty(len(self._keys), dtype=INDEX_DTYPE)
        index["key"] = self._keys
        index["offset"] = self._offsets
        index["length"] = self._lengths
        index.sort(order="key")
        index_offset = self._offset
        self._file.write(index.tobytes())
        types_offset = index_offset + index.nbytes
        self._file.write(encode_type_table(self._types))
        header = StoreHeader(
            version=VERSION, backend=self.backend,
            digests_enabled=self.digests_enabled, seed=self.seed,
            max_inspect_bytes=self.max_inspect_bytes,
            n_entries=len(self._keys), total_bytes=total_bytes,
            records_offset=HEADER_SIZE, index_offset=index_offset,
            types_offset=types_offset, build_seconds=build_seconds,
            fingerprint_state=self._state)
        self._file.seek(0)
        self._file.write(pack_header(header))
        self._file.close()
        return self.path

    def abort(self) -> None:
        """Close and delete the partial file (error-path cleanup)."""
        self._file.close()
        if os.path.exists(self.path):
            os.unlink(self.path)


def _read_shard(path: str):
    """Header, raw index array, type table and record region of a shard."""
    from .format import decode_type_table
    with open(path, "rb") as fh:
        blob = fh.read()
    header = unpack_header(blob)
    index_end = header.index_offset + \
        header.n_entries * INDEX_ROW.size
    index = np.frombuffer(blob, dtype=INDEX_DTYPE,
                          count=header.n_entries,
                          offset=header.index_offset).copy()
    types = decode_type_table(blob, header.types_offset)
    records = blob[header.records_offset:header.index_offset]
    return header, index, types, records


def _patch_records(records: bytes, remap: Sequence[int]) -> bytes:
    """Rewrite every record's type index per ``remap``, fixing CRCs."""
    out = bytearray(records)
    offset = 0
    while offset < len(out):
        length = record_length(out, offset)
        fixed = bytes(out[offset:offset + RECORD_FIXED_SIZE])
        flags, type_index, size, entropy, payload_len, _ = \
            RECORD_FIXED.unpack(fixed)
        new_fixed = RECORD_FIXED.pack(flags, remap[type_index], size,
                                      entropy, payload_len, 0)
        payload = bytes(out[offset + RECORD_FIXED_SIZE:offset + length])
        crc = zlib.crc32(new_fixed + payload)
        out[offset:offset + RECORD_FIXED_SIZE] = \
            new_fixed[:-4] + struct.pack("<I", crc)
        offset += length
    return bytes(out)


def merge_store_files(shard_paths: Sequence[str], out_path,
                      build_seconds: Optional[float] = None) -> str:
    """Fuse complete shard stores (disjoint keys) into one store file."""
    if not shard_paths:
        raise ValueError("no shard store files to merge")
    headers = []
    indexes = []
    shard_types = []
    record_blobs = []
    for path in shard_paths:
        header, index, types, records = _read_shard(str(path))
        headers.append(header)
        indexes.append(index)
        shard_types.append(types)
        record_blobs.append(records)
    first = headers[0]
    for header, path in zip(headers[1:], shard_paths[1:]):
        if (header.seed, header.backend, header.max_inspect_bytes,
                header.digests_enabled) != \
                (first.seed, first.backend, first.max_inspect_bytes,
                 first.digests_enabled):
            raise StoreFormatError(
                f"shard {path} was built under different parameters than "
                f"{shard_paths[0]} — refusing to merge")
    merged_types: List = []
    type_positions: Dict = {}
    remaps = []
    for types in shard_types:
        remap = []
        for t in types:
            position = type_positions.get(t)
            if position is None:
                position = type_positions[t] = len(merged_types)
                merged_types.append(t)
            remap.append(position)
        remaps.append(remap)
    state = 0
    total_bytes = 0
    n_entries = 0
    shard_seconds = 0.0
    with open(str(out_path), "wb") as out:
        out.write(b"\x00" * HEADER_SIZE)
        offset = HEADER_SIZE
        for i, header in enumerate(headers):
            records = record_blobs[i]
            if remaps[i] != list(range(len(remaps[i]))):
                records = _patch_records(records, remaps[i])
            out.write(records)
            # shard-local record offsets shift by the region's new base
            indexes[i]["offset"] += offset - header.records_offset
            offset += len(records)
            state = (state + header.fingerprint_state) & _STATE_MASK
            total_bytes += header.total_bytes
            n_entries += header.n_entries
            shard_seconds += header.build_seconds
        index = np.concatenate(indexes) if len(indexes) > 1 else indexes[0]
        index.sort(order="key")
        if len(index) > 1 and (index["key"][1:] == index["key"][:-1]).any():
            raise StoreFormatError(
                "shard stores share content keys — shards must partition "
                "the deduplicated key set")
        index_offset = offset
        out.write(index.tobytes())
        types_offset = index_offset + index.nbytes
        out.write(encode_type_table(merged_types))
        header = StoreHeader(
            version=VERSION, backend=first.backend,
            digests_enabled=first.digests_enabled, seed=first.seed,
            max_inspect_bytes=first.max_inspect_bytes,
            n_entries=n_entries, total_bytes=total_bytes,
            records_offset=HEADER_SIZE, index_offset=index_offset,
            types_offset=types_offset,
            build_seconds=shard_seconds if build_seconds is None
            else build_seconds,
            fingerprint_state=state)
        out.seek(0)
        out.write(pack_header(header))
    return str(out_path)
