"""Mmap'd lazy backend over an on-disk baseline store file.

Opening costs one header parse plus one ``mmap`` — O(1) in entry count,
which is the whole point: a million-entry store is usable in
milliseconds.  A lookup is a binary search over the sorted index block
(each probe reads 16 bytes straight from the map) and, on a hit, one
record deserialisation ("page-in") into a bounded LRU of hot entries.
Campaigns touch the same pristine baselines over and over, so steady
state serves from the LRU with the dict backend's latency while resident
memory stays at ``hot_entries``, not the corpus size.
"""

from __future__ import annotations

import mmap
from collections import OrderedDict
from typing import Dict, Iterator, Optional

from .format import (HEADER_SIZE, INDEX_ROW, INDEX_ROW_SIZE, StoreFormatError,
                     decode_type_table, unpack_header, unpack_record)

__all__ = ["MmapBackend"]


class MmapBackend:
    """Binary-search lookups over one ``mmap``; bounded hot-entry LRU."""

    __slots__ = ("path", "header", "hot_entries", "page_ins",
                 "hot_hits", "_file", "_map", "_types", "_index_offset",
                 "_n_entries", "_hot", "_telemetry")

    storage = "mmap"

    def __init__(self, path, hot_entries: int = 4096) -> None:
        self.path = str(path)
        self.hot_entries = max(0, int(hot_entries))
        self.page_ins = 0
        self.hot_hits = 0
        self._hot: "OrderedDict[bytes, object]" = OrderedDict()
        self._telemetry = None
        self._file = open(self.path, "rb")
        try:
            self._map = mmap.mmap(self._file.fileno(), 0,
                                  access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise StoreFormatError(
                f"{self.path}: empty file — not a baseline store")
        try:
            header = unpack_header(self._map)
            self._check_bounds(header)
            self._types = decode_type_table(self._map, header.types_offset)
        except Exception:
            self.close()
            raise
        self.header = header
        self._index_offset = header.index_offset
        self._n_entries = header.n_entries

    def _check_bounds(self, header) -> None:
        size = len(self._map)
        index_end = header.index_offset + header.n_entries * INDEX_ROW_SIZE
        if not (HEADER_SIZE <= header.records_offset
                <= header.index_offset <= index_end
                <= header.types_offset <= size):
            raise StoreFormatError(
                f"{self.path}: header offsets exceed the {size}-byte file "
                "— truncated store (rebuild it)")

    # -- lookup ---------------------------------------------------------------

    def _key_at(self, i: int) -> bytes:
        offset = self._index_offset + i * INDEX_ROW_SIZE
        return self._map[offset:offset + 16]

    def _find(self, key: bytes) -> int:
        """Index-row position of ``key``, or -1 — raw-byte binary search."""
        lo, hi = 0, self._n_entries
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self._key_at(mid)
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                return mid
        return -1

    def _page_in(self, key: bytes, i: int):
        row_offset = self._index_offset + i * INDEX_ROW_SIZE
        _, record_offset, length = INDEX_ROW.unpack(
            self._map[row_offset:row_offset + INDEX_ROW_SIZE])
        entry = unpack_record(self._map, record_offset, self._types,
                              length=length)
        self.page_ins += 1
        if self.hot_entries:
            self._hot[key] = entry
            if len(self._hot) > self.hot_entries:
                self._hot.popitem(last=False)
        telemetry = self._telemetry
        if telemetry is not None:
            from ..telemetry.events import StorePageIn
            telemetry.store_page_ins.inc()
            telemetry.bus.emit(StorePageIn(
                telemetry.bus.clock_us, size=entry.size,
                resident=len(self._hot)))
        return entry

    def get(self, key: bytes):
        entry = self._hot.get(key)
        if entry is not None:
            self.hot_hits += 1
            self._hot.move_to_end(key)
            return entry
        i = self._find(key)
        if i < 0:
            return None
        return self._page_in(key, i)

    def __len__(self) -> int:
        return self._n_entries

    def __contains__(self, key: bytes) -> bool:
        return key in self._hot or self._find(key) >= 0

    def keys(self) -> Iterator[bytes]:
        """All keys in index (= sorted) order, streamed from the map."""
        for i in range(self._n_entries):
            yield self._key_at(i)

    def as_dict(self) -> Dict[bytes, object]:
        """Materialise every entry — O(n) memory, tooling/tests only."""
        return {key: self.get(key) for key in self.keys()}

    # -- observability --------------------------------------------------------

    def page_stats(self) -> dict:
        return {"storage": self.storage, "page_ins": self.page_ins,
                "hot_hits": self.hot_hits, "resident": len(self._hot),
                "hot_capacity": self.hot_entries}

    def bind_telemetry(self, telemetry) -> None:
        """Attach a session; subsequent page-ins emit ``StorePageIn``
        events and bump ``cryptodrop_store_page_ins_total``."""
        self._telemetry = telemetry

    def close(self) -> None:
        self._hot.clear()
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None
