"""On-disk format of the persistent baseline store (``.cdbs``).

One self-contained file, designed so a store *opens* in milliseconds
regardless of entry count — nothing is deserialised until a lookup hits:

::

    +--------------------------------------------------------------+
    | header (fixed 94 bytes, CRC-protected)                       |
    |   magic "CDBS" | version | backend | digests | seed          |
    |   max_inspect_bytes | n_entries | total_bytes                |
    |   records_offset | index_offset | types_offset               |
    |   build_seconds | fingerprint state (16 bytes) | header CRC  |
    +--------------------------------------------------------------+
    | record log (append-only)                                     |
    |   record := fixed part (27 bytes: flags, type index, size,   |
    |             entropy, payload length, record CRC)             |
    |             + payload (serialized SdDigest / CtphSignature;  |
    |               empty for undigested entries — those records   |
    |               are pure fixed-stride)                         |
    +--------------------------------------------------------------+
    | index block (n_entries x 28 bytes, sorted by key)            |
    |   row := 16-byte content key | u64 record offset | u32 len   |
    +--------------------------------------------------------------+
    | type table (length-prefixed JSON list of FileType tuples,    |
    |   CRC-protected; records reference types by index)           |
    +--------------------------------------------------------------+

The index is sorted by raw 16-byte key, so a lookup is an O(log n)
binary search over one ``mmap`` — each probe reads 16 bytes, and only
the final hit deserialises its record.  The type table sits at the end
because types are discovered while records stream out; the header
(rewritten last) carries its offset.

The *fingerprint state* is the order-independent running sum
(mod 2^128) of all content keys — see
:func:`repro.corpus.baselines.fingerprint_state` — persisted so a
reopened store validates checkpoint descriptors in O(1) instead of
rehashing a million sorted keys.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import List, Optional, Tuple

import numpy as np

from ..magic import FileType
from ..simhash.bloom import FILTER_BITS, BloomFilter
from ..simhash.sdhash import SdDigest
from ..simhash.ssdeep import CtphSignature

__all__ = [
    "MAGIC", "VERSION", "HEADER", "RECORD_FIXED", "INDEX_ROW",
    "StoreFormatError", "StoreHeader", "pack_header", "unpack_header",
    "encode_type_table", "decode_type_table", "pack_record",
    "unpack_record", "record_length", "encode_sddigest", "decode_sddigest",
    "BACKEND_CODES", "BACKEND_NAMES",
]

MAGIC = b"CDBS"
VERSION = 1

#: similarity backend wire codes (the store refuses unknown codes)
BACKEND_CODES = {"sdhash": 1, "ctph": 2}
BACKEND_NAMES = {code: name for name, code in BACKEND_CODES.items()}

# magic, version, backend_code, digests_enabled, seed, max_inspect_bytes,
# n_entries, total_bytes, records_offset, index_offset, types_offset,
# build_seconds, fingerprint_state (16 bytes LE), header_crc
HEADER = struct.Struct("<4sHBBqQQQQQQd16sI")
HEADER_SIZE = HEADER.size

# flags, type_index, size, entropy, payload_len, record_crc
RECORD_FIXED = struct.Struct("<BHQdII")
RECORD_FIXED_SIZE = RECORD_FIXED.size

# key, record offset, record length (fixed part + payload)
INDEX_ROW = struct.Struct("<16sQI")
INDEX_ROW_SIZE = INDEX_ROW.size

#: numpy view of the index block, used by the shard merge
INDEX_DTYPE = np.dtype([("key", "S16"), ("offset", "<u8"),
                        ("length", "<u4")])

# record flag bits
FLAG_DIGESTED = 1
FLAG_HAS_DIGEST = 2
FLAG_HAS_CTPH = 4

# n_filters, n_features, source_len
_DIGEST_HEAD = struct.Struct("<HIQ")
# per filter: count + packed bits
_FILTER_BYTES = FILTER_BITS // 8
_FILTER_HEAD = struct.Struct("<I")

_TYPE_TABLE_HEAD = struct.Struct("<II")  # payload length, payload CRC


class StoreFormatError(ValueError):
    """The file is not a valid baseline store (or is damaged)."""


class StoreHeader:
    """Decoded header fields (attribute access, no behaviour)."""

    __slots__ = ("version", "backend", "digests_enabled", "seed",
                 "max_inspect_bytes", "n_entries", "total_bytes",
                 "records_offset", "index_offset", "types_offset",
                 "build_seconds", "fingerprint_state")

    def __init__(self, **fields) -> None:
        for name in self.__slots__:
            setattr(self, name, fields[name])


def pack_header(header: StoreHeader) -> bytes:
    """Serialise a header, CRC computed over the CRC-zeroed bytes."""
    code = BACKEND_CODES.get(header.backend)
    if code is None:
        raise StoreFormatError(
            f"unknown similarity backend {header.backend!r}")
    state_bytes = int(header.fingerprint_state).to_bytes(16, "little")
    raw = HEADER.pack(MAGIC, header.version, code,
                      1 if header.digests_enabled else 0,
                      header.seed, header.max_inspect_bytes,
                      header.n_entries, header.total_bytes,
                      header.records_offset, header.index_offset,
                      header.types_offset, header.build_seconds,
                      state_bytes, 0)
    crc = zlib.crc32(raw)
    return raw[:-4] + struct.pack("<I", crc)


def unpack_header(buf) -> StoreHeader:
    """Decode and validate the header at the start of ``buf``."""
    if len(buf) < HEADER_SIZE:
        raise StoreFormatError(
            f"file is {len(buf)} bytes — too short to hold a store header "
            f"({HEADER_SIZE} bytes); truncated or not a baseline store")
    raw = bytes(buf[:HEADER_SIZE])
    (magic, version, code, digests, seed, max_inspect_bytes, n_entries,
     total_bytes, records_offset, index_offset, types_offset,
     build_seconds, state_bytes, crc) = HEADER.unpack(raw)
    if magic != MAGIC:
        raise StoreFormatError(
            f"bad magic {magic!r} (expected {MAGIC!r}) — not a baseline "
            "store file")
    expected = zlib.crc32(raw[:-4] + b"\x00\x00\x00\x00")
    if crc != expected:
        raise StoreFormatError(
            "header CRC mismatch — the file is corrupt (rebuild the store "
            "or restore it from a backup)")
    if version != VERSION:
        raise StoreFormatError(
            f"unsupported store format version {version} (this build "
            f"reads version {VERSION}) — rebuild the store with the "
            "current tooling")
    backend = BACKEND_NAMES.get(code)
    if backend is None:
        raise StoreFormatError(f"unknown similarity backend code {code}")
    return StoreHeader(version=version, backend=backend,
                       digests_enabled=bool(digests), seed=seed,
                       max_inspect_bytes=max_inspect_bytes,
                       n_entries=n_entries, total_bytes=total_bytes,
                       records_offset=records_offset,
                       index_offset=index_offset,
                       types_offset=types_offset,
                       build_seconds=build_seconds,
                       fingerprint_state=int.from_bytes(state_bytes,
                                                        "little"))


# -- type table -------------------------------------------------------------


def encode_type_table(types: List[FileType]) -> bytes:
    payload = json.dumps(
        [[t.name, t.description, t.category, t.is_high_entropy]
         for t in types],
        separators=(",", ":")).encode("utf-8")
    return _TYPE_TABLE_HEAD.pack(len(payload), zlib.crc32(payload)) \
        + payload


def decode_type_table(buf, offset: int) -> List[FileType]:
    head_end = offset + _TYPE_TABLE_HEAD.size
    if head_end > len(buf):
        raise StoreFormatError("type table header out of bounds — "
                               "truncated store file")
    length, crc = _TYPE_TABLE_HEAD.unpack(bytes(buf[offset:head_end]))
    payload = bytes(buf[head_end:head_end + length])
    if len(payload) != length:
        raise StoreFormatError("type table payload out of bounds — "
                               "truncated store file")
    if zlib.crc32(payload) != crc:
        raise StoreFormatError("type table CRC mismatch — corrupt store")
    try:
        rows = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise StoreFormatError(f"type table is not valid JSON: {exc}")
    return [FileType(name, description, category, bool(high))
            for name, description, category, high in rows]


# -- digest payloads --------------------------------------------------------


def encode_sddigest(digest: SdDigest) -> bytes:
    parts = [_DIGEST_HEAD.pack(len(digest.filters), digest.n_features,
                               digest.source_len)]
    for filt in digest.filters:
        parts.append(_FILTER_HEAD.pack(filt.count))
        parts.append(filt.packed().tobytes())
    return b"".join(parts)


def decode_sddigest(payload: bytes) -> SdDigest:
    n_filters, n_features, source_len = _DIGEST_HEAD.unpack_from(payload)
    offset = _DIGEST_HEAD.size
    stride = _FILTER_HEAD.size + _FILTER_BYTES
    if len(payload) != _DIGEST_HEAD.size + n_filters * stride:
        raise StoreFormatError(
            f"digest payload is {len(payload)} bytes but declares "
            f"{n_filters} filters — corrupt record")
    filters = []
    for _ in range(n_filters):
        (count,) = _FILTER_HEAD.unpack_from(payload, offset)
        offset += _FILTER_HEAD.size
        packed = np.frombuffer(payload, dtype=np.uint8,
                               count=_FILTER_BYTES, offset=offset)
        offset += _FILTER_BYTES
        filt = BloomFilter()
        filt.bits = np.unpackbits(packed).astype(bool)[:FILTER_BITS]
        filt.count = count
        filters.append(filt)
    return SdDigest(filters, n_features, source_len)


# -- records ----------------------------------------------------------------


def pack_record(entry, type_index: int) -> bytes:
    """Serialise one ``BaselineEntry``-shaped object.

    The record CRC covers the CRC-zeroed fixed part plus the payload, so
    an fsck pass can verify every record without the index.
    """
    flags = 0
    payload = b""
    if entry.digested:
        flags |= FLAG_DIGESTED
    if entry.digest is not None:
        flags |= FLAG_HAS_DIGEST
        payload = encode_sddigest(entry.digest)
    elif entry.ctph is not None:
        flags |= FLAG_HAS_CTPH
        payload = str(entry.ctph).encode("ascii")
    fixed = RECORD_FIXED.pack(flags, type_index, entry.size, entry.entropy,
                              len(payload), 0)
    crc = zlib.crc32(fixed + payload)
    return fixed[:-4] + struct.pack("<I", crc) + payload


def record_length(buf, offset: int) -> int:
    """Total record length at ``offset`` (fixed part + payload)."""
    fixed = bytes(buf[offset:offset + RECORD_FIXED_SIZE])
    if len(fixed) != RECORD_FIXED_SIZE:
        raise StoreFormatError("record fixed part out of bounds — "
                               "truncated store file")
    payload_len = RECORD_FIXED.unpack(fixed)[4]
    return RECORD_FIXED_SIZE + payload_len


_ENTRY_CLS = None


def _entry_cls():
    # Imported late: repro.corpus.baselines imports repro.store.backend at
    # module level, so this module must not import baselines back eagerly.
    global _ENTRY_CLS
    if _ENTRY_CLS is None:
        from ..corpus.baselines import BaselineEntry
        _ENTRY_CLS = BaselineEntry
    return _ENTRY_CLS


def unpack_record(buf, offset: int, types: List[FileType],
                  check_crc: bool = False,
                  length: Optional[int] = None):
    """Deserialise the record at ``offset`` into a ``BaselineEntry``.

    ``length``, when the caller has it from the index, bounds the reads;
    ``check_crc`` additionally verifies the record checksum (the fsck
    path — lookups skip it, the mmap page-in is the hot path).
    """
    fixed_end = offset + RECORD_FIXED_SIZE
    fixed = bytes(buf[offset:fixed_end])
    if len(fixed) != RECORD_FIXED_SIZE:
        raise StoreFormatError("record fixed part out of bounds — "
                               "truncated store file")
    flags, type_index, size, entropy, payload_len, crc = \
        RECORD_FIXED.unpack(fixed)
    if length is not None and length != RECORD_FIXED_SIZE + payload_len:
        raise StoreFormatError(
            f"index row length {length} disagrees with record payload "
            f"({RECORD_FIXED_SIZE + payload_len}) — corrupt index")
    payload = bytes(buf[fixed_end:fixed_end + payload_len])
    if len(payload) != payload_len:
        raise StoreFormatError("record payload out of bounds — "
                               "truncated store file")
    if check_crc:
        expected = zlib.crc32(fixed[:-4] + b"\x00\x00\x00\x00" + payload)
        if crc != expected:
            raise StoreFormatError(
                f"record CRC mismatch at offset {offset} — corrupt store")
    if not 0 <= type_index < len(types):
        raise StoreFormatError(
            f"record at offset {offset} references type {type_index} but "
            f"the type table has {len(types)} entries — corrupt store")
    digest = None
    ctph = None
    if flags & FLAG_HAS_DIGEST:
        digest = decode_sddigest(payload)
    elif flags & FLAG_HAS_CTPH:
        ctph = CtphSignature.parse(payload.decode("ascii"))
    return _entry_cls()(types[type_index], digest, ctph, size, entropy,
                        bool(flags & FLAG_DIGESTED))
