"""``repro.store`` — persistent, mmap-backed baseline storage.

The disk half of :class:`~repro.corpus.baselines.BaselineStore`: a
single-file format (versioned header · append-only record log · sorted
key index · type table — see :mod:`repro.store.format`) that builds
once, opens in milliseconds at any corpus size, and serves lookups by
binary search over one ``mmap`` with lazy per-record page-in.

Pieces:

* :mod:`~repro.store.format` — wire structs, CRCs, record/digest codecs;
* :mod:`~repro.store.backend` — the :class:`StoreBackend` protocol and
  the in-memory :class:`DictBackend` (default);
* :mod:`~repro.store.mmapstore` — :class:`MmapBackend`, the lazy
  disk-resident implementation with a bounded hot-entry LRU;
* :mod:`~repro.store.writer` — single-pass :class:`StoreWriter` and the
  shard merge used by ``build_store_parallel``;
* :mod:`~repro.store.fsck` — offline integrity verification.

Operator entry points: ``examples/store_tool.py`` (build/info/verify),
the ``store_backend`` / ``store_hot_entries`` config knobs, and the
BENCH_8 ``store_persistence`` section.  Format and tradeoffs:
``docs/performance.md``.
"""

from .backend import DictBackend, StoreBackend
from .format import StoreFormatError
from .fsck import fsck_store
from .mmapstore import MmapBackend
from .writer import StoreWriter, merge_store_files

__all__ = ["StoreBackend", "DictBackend", "MmapBackend", "StoreWriter",
           "StoreFormatError", "merge_store_files", "fsck_store"]
