"""Offline integrity pass over a baseline store file (``verify``).

Checks, in dependency order: header magic/version/CRC and offset
bounds, type-table decode, index sortedness and key uniqueness, every
record's CRC and bounds (walked through the index, so dangling index
rows surface too), and finally that the sum of the indexed keys
reproduces the header's fingerprint state — the same O(1)-restorable
identity that checkpoint validation trusts.  Used by
``examples/store_tool.py verify`` and the BENCH_8 persistence section.
"""

from __future__ import annotations

import os

import numpy as np

from .format import (HEADER_SIZE, INDEX_DTYPE, INDEX_ROW_SIZE,
                     StoreFormatError, decode_type_table, unpack_header,
                     unpack_record)

__all__ = ["fsck_store"]

_STATE_MASK = (1 << 128) - 1


def fsck_store(path, check_records: bool = True) -> dict:
    """Verify ``path``; returns ``{"ok", "problems", ...stats}``.

    ``check_records=False`` skips the per-record CRC walk (the only
    O(total bytes) stage) for a fast structural pass.
    """
    path = str(path)
    problems = []
    report = {"path": path, "ok": False, "problems": problems,
              "entries": 0, "records_checked": 0,
              "file_bytes": os.path.getsize(path)
              if os.path.exists(path) else 0}
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        problems.append(f"unreadable: {exc}")
        return report
    try:
        header = unpack_header(blob)
    except StoreFormatError as exc:
        problems.append(str(exc))
        return report
    report["entries"] = header.n_entries
    report["backend"] = header.backend
    report["seed"] = header.seed
    index_end = header.index_offset + header.n_entries * INDEX_ROW_SIZE
    if not (HEADER_SIZE <= header.records_offset <= header.index_offset
            <= index_end <= header.types_offset <= len(blob)):
        problems.append("header offsets exceed the file — truncated store")
        return report
    try:
        types = decode_type_table(blob, header.types_offset)
    except StoreFormatError as exc:
        problems.append(str(exc))
        return report
    index = np.frombuffer(blob, dtype=INDEX_DTYPE, count=header.n_entries,
                          offset=header.index_offset)
    keys = index["key"]
    if len(keys) > 1:
        if (keys[1:] < keys[:-1]).any():
            problems.append("index keys are not sorted — lookups would "
                            "miss entries")
        elif (keys[1:] == keys[:-1]).any():
            problems.append("index contains duplicate keys")
    # fold the 16-byte keys into the order-independent 128-bit sum
    state = 0
    raw_keys = keys.tobytes()
    for i in range(0, len(raw_keys), 16):
        state = (state + int.from_bytes(raw_keys[i:i + 16], "little")) \
            & _STATE_MASK
    if state != header.fingerprint_state:
        problems.append("fingerprint state does not match the indexed "
                        "keys — index or header is corrupt")
    if check_records:
        for row in index:
            offset = int(row["offset"])
            length = int(row["length"])
            if offset + length > header.index_offset:
                problems.append(
                    f"index row points past the record log "
                    f"(offset {offset}, length {length})")
                continue
            try:
                unpack_record(blob, offset, types, check_crc=True,
                              length=length)
            except StoreFormatError as exc:
                problems.append(str(exc))
            else:
                report["records_checked"] += 1
    report["ok"] = not problems
    return report
