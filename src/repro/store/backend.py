"""Storage backends behind :class:`~repro.corpus.baselines.BaselineStore`.

The store's public surface (``get`` / ``lookup_content`` / ``describe`` /
``compatible_with``) is backend-agnostic; what varies is where the
entries live:

* :class:`DictBackend` — the original in-memory dict.  Zero lookup
  indirection, every entry resident; the default, and still the right
  choice for corpora that fit comfortably in RAM.
* :class:`~repro.store.mmapstore.MmapBackend` — one ``mmap`` over the
  on-disk store file (:mod:`repro.store.format`), binary search on the
  sorted key index, per-record lazy deserialisation into a bounded
  hot-entry LRU.  Opens in milliseconds at any entry count.

The contract both must honour: ``get(key)`` returns an entry equal to
what :meth:`BaselineStore.build` would have produced for the same
content under the same parameters — bit-identical verdicts between
backends, gated by ``tests/test_store_disk.py`` and the BENCH_8
``store_persistence`` section.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Protocol, runtime_checkable

__all__ = ["StoreBackend", "DictBackend"]


@runtime_checkable
class StoreBackend(Protocol):
    """What a :class:`BaselineStore` needs from its entry storage."""

    #: short storage-kind tag ("dict" / "mmap"), surfaced in ``describe``
    storage: str

    def get(self, key: bytes): ...

    def __len__(self) -> int: ...

    def __contains__(self, key: bytes) -> bool: ...

    def keys(self) -> Iterator[bytes]: ...

    def as_dict(self) -> Dict[bytes, object]: ...

    def page_stats(self) -> dict: ...

    def bind_telemetry(self, telemetry) -> None: ...

    def close(self) -> None: ...


class DictBackend:
    """Entries in a plain dict — the historical in-memory behaviour."""

    __slots__ = ("_entries",)

    storage = "dict"

    def __init__(self, entries: Dict[bytes, object]) -> None:
        self._entries = entries

    def get(self, key: bytes):
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[bytes]:
        return iter(self._entries)

    def as_dict(self) -> Dict[bytes, object]:
        """The live entry dict (not a copy — callers must not mutate)."""
        return self._entries

    def page_stats(self) -> dict:
        """Dict storage is fully resident and never pages."""
        return {"storage": self.storage, "page_ins": 0, "hot_hits": 0,
                "resident": len(self._entries),
                "hot_capacity": len(self._entries)}

    def bind_telemetry(self, telemetry) -> None:
        """No lazy I/O to observe — nothing to bind."""

    def close(self) -> None:
        """No file handles to release."""
