"""File-type identification — the ``file`` utility substitute.

Identification proceeds exactly like ``file(1)``:

1. ordered magic-number signature matching (with container refinement),
2. text heuristics over a bounded prefix (ASCII/UTF-8 printability,
   CSV/Markdown/PowerShell/HTML recognisers),
3. fall-through to the generic ``data`` type — which is what ciphertext
   identifies as, making "anything → data" the canonical ransomware type
   transition.

The identifier is pure and stateless; CryptoDrop's engine caches results per
file version (paper Fig. 2 "Caching").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .signatures import FILE_TYPES, SIGNATURES
from .types import DATA, EMPTY, FileType

__all__ = ["identify", "identify_name", "PREFIX_BYTES"]

#: How much of the file the identifier inspects.  ``file`` reads a bounded
#: prefix too; 8 KiB covers every signature plus robust text statistics.
PREFIX_BYTES = 8192

_TEXT_BYTES = frozenset(range(0x20, 0x7F)) | {0x09, 0x0A, 0x0D}

#: boolean membership table for ``_TEXT_BYTES`` — one gather + count
#: instead of a per-byte Python loop over an 8 KiB prefix on every close
_TEXT_LUT = np.zeros(256, dtype=bool)
_TEXT_LUT[list(_TEXT_BYTES)] = True


def _printable_ratio(prefix: bytes) -> float:
    if not prefix:
        return 0.0
    good = int(np.count_nonzero(_TEXT_LUT[np.frombuffer(prefix, np.uint8)]))
    return good / len(prefix)


def _sniff_text(prefix: bytes) -> Optional[FileType]:
    """Distinguish text flavours once the prefix is known to be texty."""
    if _printable_ratio(prefix) < 0.95:
        return None
    try:
        head = prefix.decode("utf-8", errors="strict")
    except UnicodeDecodeError:
        return None
    lines = head.splitlines()
    if not lines:
        return FILE_TYPES["txt"]
    stripped = head.lstrip()
    if stripped.startswith(("<html", "<!DOCTYPE", "<!doctype")):
        return FILE_TYPES["html"]
    if stripped.startswith("<?xml"):
        return FILE_TYPES["xml"]
    if any(line.startswith(("function ", "param(", "$")) or "-join" in line
           for line in lines[:10]) and "powershell" in head.lower():
        return FILE_TYPES["ps1"]
    sample = [line for line in lines[:20] if line.strip()]
    if len(sample) >= 2:
        comma_counts = [line.count(",") for line in sample]
        if min(comma_counts) >= 2 and max(comma_counts) - min(comma_counts) <= 1:
            return FILE_TYPES["csv"]
    md_markers = sum(1 for line in sample
                     if line.startswith(("#", "- ", "* ", "> ", "```")))
    if sample and md_markers / len(sample) >= 0.25:
        return FILE_TYPES["md"]
    return FILE_TYPES["txt"]


def identify(data: bytes) -> FileType:
    """Identify the type of ``data`` (only the first 8 KiB is examined)."""
    if not data:
        return EMPTY
    prefix = bytes(data[:PREFIX_BYTES])
    for sig in SIGNATURES:
        if sig.matches(prefix):
            if sig.refine is not None:
                refined = sig.refine(prefix)
                if refined is not None:
                    return refined
            return sig.filetype
    text = _sniff_text(prefix)
    if text is not None:
        return text
    return DATA


def identify_name(data: bytes) -> str:
    """Convenience: just the short type name."""
    return identify(data).name
