"""File-type vocabulary.

Types carry a category so the funneling indicator can also be analysed at
category granularity, and an ``is_high_entropy`` hint used by corpus
statistics and tests (compressed formats encrypt to a much smaller entropy
*increase* than plain text — the effect §V-D discusses for the top four
attacked formats).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FileType", "Category", "UNKNOWN", "EMPTY", "DATA"]


class Category:
    """Coarse content classes (string constants, not an enum, so custom
    magic entries can introduce new categories without code changes)."""

    DOCUMENT = "document"
    SPREADSHEET = "spreadsheet"
    PRESENTATION = "presentation"
    IMAGE = "image"
    AUDIO = "audio"
    VIDEO = "video"
    TEXT = "text"
    ARCHIVE = "archive"
    EXECUTABLE = "executable"
    DATABASE = "database"
    DATA = "data"


@dataclass(frozen=True)
class FileType:
    """An identified file type, e.g. ``FileType('pdf', 'PDF document', ...)``."""

    name: str                  # short stable identifier, e.g. "docx"
    description: str           # `file`-utility style description
    category: str = Category.DATA
    is_high_entropy: bool = False

    def __str__(self) -> str:
        return self.name


#: Identification fell through every signature and heuristic: the byte
#: distribution is unstructured.  This is what ciphertext identifies as, and
#: a transition *to* DATA is the canonical type-change signal.
DATA = FileType("data", "data", Category.DATA, is_high_entropy=True)

#: Zero-length files have no type; type-change scoring skips them.
EMPTY = FileType("empty", "empty", Category.DATA)

#: Kept distinct from DATA for tests that need "signature miss" vs
#: "statistically random" to be distinguishable.
UNKNOWN = DATA
