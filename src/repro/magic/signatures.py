"""The magic-number database.

Reimplements the relevant slice of the ``file`` utility's magic database:
ordered signatures of (offset, byte pattern, optional refinement callable).
Order matters — container formats (ZIP) are refined into OOXML subtypes by
inspecting member names, and OLE2 into legacy Office subtypes by embedded
stream markers, before falling back to the generic container type.

The set covers every format the synthetic corpus generates plus formats the
benign-app simulators produce (catalogs, archives, playlists), mirroring the
paper's use of the default magic database ("hundreds of file type
signatures" §III-A; we implement the ones our workloads can encounter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .types import Category, FileType

__all__ = ["Signature", "SIGNATURES", "FILE_TYPES"]


@dataclass(frozen=True)
class Signature:
    offset: int
    pattern: bytes
    filetype: FileType
    #: optional deeper check run on the full prefix; returning a FileType
    #: overrides, returning None falls through to the next signature.
    refine: Optional[Callable[[bytes], Optional[FileType]]] = None

    def matches(self, data: bytes) -> bool:
        return data[self.offset:self.offset + len(self.pattern)] == self.pattern


# ---------------------------------------------------------------------------
# type definitions
# ---------------------------------------------------------------------------

PDF = FileType("pdf", "PDF document", Category.DOCUMENT, True)
DOCX = FileType("docx", "Microsoft Word 2007+", Category.DOCUMENT, True)
XLSX = FileType("xlsx", "Microsoft Excel 2007+", Category.SPREADSHEET, True)
PPTX = FileType("pptx", "Microsoft PowerPoint 2007+", Category.PRESENTATION, True)
ODT = FileType("odt", "OpenDocument Text", Category.DOCUMENT, True)
ODS = FileType("ods", "OpenDocument Spreadsheet", Category.SPREADSHEET, True)
ZIP = FileType("zip", "Zip archive data", Category.ARCHIVE, True)
SEVENZIP = FileType("7z", "7-zip archive data", Category.ARCHIVE, True)
GZIP = FileType("gzip", "gzip compressed data", Category.ARCHIVE, True)
RAR = FileType("rar", "RAR archive data", Category.ARCHIVE, True)
DOC = FileType("doc", "Composite Document File V2 (Word)", Category.DOCUMENT, False)
XLS = FileType("xls", "Composite Document File V2 (Excel)", Category.SPREADSHEET, False)
PPT = FileType("ppt", "Composite Document File V2 (PowerPoint)", Category.PRESENTATION, False)
OLE2 = FileType("ole2", "Composite Document File V2", Category.DOCUMENT, False)
RTF = FileType("rtf", "Rich Text Format data", Category.DOCUMENT, False)
JPEG = FileType("jpg", "JPEG image data", Category.IMAGE, True)
PNG = FileType("png", "PNG image data", Category.IMAGE, True)
GIF = FileType("gif", "GIF image data", Category.IMAGE, True)
BMP = FileType("bmp", "PC bitmap", Category.IMAGE, False)
TIFF = FileType("tif", "TIFF image data", Category.IMAGE, False)
MP3 = FileType("mp3", "MPEG ADTS, layer III", Category.AUDIO, True)
MP3_ID3 = FileType("mp3", "Audio file with ID3", Category.AUDIO, True)
WAV = FileType("wav", "RIFF (little-endian) data, WAVE audio", Category.AUDIO, False)
FLAC = FileType("flac", "FLAC audio bitstream data", Category.AUDIO, True)
OGG = FileType("ogg", "Ogg data", Category.AUDIO, True)
AAC = FileType("m4a", "ISO Media, Apple iTunes AAC-LC", Category.AUDIO, True)
HTML = FileType("html", "HTML document", Category.TEXT, False)
XML = FileType("xml", "XML 1.0 document", Category.TEXT, False)
EXE = FileType("exe", "PE32 executable", Category.EXECUTABLE, False)
SQLITE = FileType("sqlite", "SQLite 3.x database", Category.DATABASE, False)
PS1 = FileType("ps1", "PowerShell script", Category.TEXT, False)
TEXT = FileType("txt", "ASCII text", Category.TEXT, False)
CSV = FileType("csv", "CSV text", Category.TEXT, False)
MARKDOWN = FileType("md", "Markdown text", Category.TEXT, False)


def _refine_zip(data: bytes) -> Optional[FileType]:
    """Distinguish OOXML/ODF packages from plain zips by member names,
    the same trick the real magic database plays."""
    window = data[:4096]
    if b"[Content_Types].xml" in window:
        if b"word/" in window:
            return DOCX
        if b"xl/" in window:
            return XLSX
        if b"ppt/" in window:
            return PPTX
        return DOCX
    if b"mimetypeapplication/vnd.oasis.opendocument.text" in window:
        return ODT
    if b"mimetypeapplication/vnd.oasis.opendocument.spreadsheet" in window:
        return ODS
    return None


def _refine_ole2(data: bytes) -> Optional[FileType]:
    window = data[:4096]
    if b"W\x00o\x00r\x00d\x00D\x00o\x00c\x00u\x00m\x00e\x00n\x00t" in window:
        return DOC
    if b"W\x00o\x00r\x00k\x00b\x00o\x00o\x00k" in window:
        return XLS
    if b"P\x00o\x00w\x00e\x00r\x00P\x00o\x00i\x00n\x00t" in window:
        return PPT
    return None


def _refine_riff(data: bytes) -> Optional[FileType]:
    if data[8:12] == b"WAVE":
        return WAV
    return None


def _refine_mp4(data: bytes) -> Optional[FileType]:
    if data[4:8] == b"ftyp" and data[8:11] in (b"M4A", b"mp4", b"iso"):
        return AAC
    return None


#: Ordered signature list; first full match wins.
SIGNATURES: List[Signature] = [
    Signature(0, b"%PDF-", PDF),
    Signature(0, b"PK\x03\x04", ZIP, _refine_zip),
    Signature(0, b"7z\xbc\xaf\x27\x1c", SEVENZIP),
    Signature(0, b"\x1f\x8b\x08", GZIP),
    Signature(0, b"Rar!\x1a\x07", RAR),
    Signature(0, b"\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1", OLE2, _refine_ole2),
    Signature(0, b"{\\rtf1", RTF),
    Signature(0, b"\xff\xd8\xff", JPEG),
    Signature(0, b"\x89PNG\r\n\x1a\n", PNG),
    Signature(0, b"GIF87a", GIF),
    Signature(0, b"GIF89a", GIF),
    Signature(0, b"BM", BMP),
    Signature(0, b"II*\x00", TIFF),
    Signature(0, b"MM\x00*", TIFF),
    Signature(0, b"ID3", MP3_ID3),
    Signature(0, b"\xff\xfb", MP3),
    Signature(0, b"\xff\xf3", MP3),
    Signature(0, b"fLaC", FLAC),
    Signature(0, b"OggS", OGG),
    Signature(0, b"RIFF", WAV, _refine_riff),
    Signature(4, b"ftyp", AAC, _refine_mp4),
    Signature(0, b"MZ", EXE),
    Signature(0, b"SQLite format 3\x00", SQLITE),
    Signature(0, b"<?xml", XML),
    Signature(0, b"<!DOCTYPE html", HTML),
    Signature(0, b"<!doctype html", HTML),
    Signature(0, b"<html", HTML),
]

#: All named types, for registry lookups and tests.
FILE_TYPES = {
    ft.name: ft
    for ft in (PDF, DOCX, XLSX, PPTX, ODT, ODS, ZIP, SEVENZIP, GZIP, RAR,
               DOC, XLS, PPT, OLE2, RTF, JPEG, PNG, GIF, BMP, TIFF, MP3,
               WAV, FLAC, OGG, AAC, HTML, XML, EXE, SQLITE, PS1, TEXT, CSV,
               MARKDOWN)
}
