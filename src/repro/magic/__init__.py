"""Magic-number file-type identification (the paper's ``file`` utility).

>>> from repro.magic import identify
>>> identify(b"%PDF-1.5 ...").name
'pdf'
"""

from .identifier import PREFIX_BYTES, identify, identify_name
from .signatures import FILE_TYPES, SIGNATURES, Signature
from .types import DATA, EMPTY, Category, FileType

__all__ = [
    "Category", "DATA", "EMPTY", "FILE_TYPES", "FileType", "PREFIX_BYTES",
    "SIGNATURES", "Signature", "identify", "identify_name",
]
