"""CryptoDrop reproduction.

A from-scratch Python implementation of *CryptoLock (and Drop It):
Stopping Ransomware Attacks on User Data* (Scaife, Carter, Traynor,
Butler — ICDCS 2016): the CryptoDrop data-centric ransomware
early-warning system, plus every substrate its evaluation needs — a
virtual Windows filesystem with a filter-driver stack, magic-number file
typing, sdhash-style similarity digests, a synthetic Govdocs-like
document corpus, behavioural simulators for all fourteen ransomware
families and thirty benign applications, comparison baselines, and a
harness that regenerates every table and figure in the paper.

Quickstart::

    from repro.corpus import generate
    from repro.ransomware import working_cohort
    from repro.sandbox import VirtualMachine, run_sample

    machine = VirtualMachine(generate(seed=1, n_files=500, n_dirs=50))
    machine.snapshot()
    sample = working_cohort()[0]
    result = run_sample(machine, sample)
    print(result.sample_name, "lost", result.files_lost, "files")
"""

from . import (analysis, baselines, benign, core, corpus, crypto,
               experiments, fs, magic, perfstats, ransomware, sandbox,
               simhash, telemetry)
from .core import CryptoDropConfig, CryptoDropMonitor, Detection
from .telemetry import DetectionTimeline, TelemetrySession
from .entropy import (WeightedEntropyMean, corrected_entropy,
                      entropy_weight, shannon_entropy, windowed_entropy)
from .fs import DOCUMENTS, VirtualFileSystem, WinPath
from .recovery import RecoveryReport, recover_from_shadow
from .trace import TraceRecord, TraceRecorder, replay_trace
from .sandbox import VirtualMachine, run_benign, run_campaign, run_sample

__version__ = "1.0.0"

__all__ = [
    "CryptoDropConfig", "CryptoDropMonitor", "DOCUMENTS", "Detection",
    "DetectionTimeline", "TelemetrySession",
    "VirtualFileSystem", "VirtualMachine", "WeightedEntropyMean",
    "WinPath", "__version__", "analysis", "baselines", "benign", "core",
    "corrected_entropy", "corpus", "crypto", "entropy_weight",
    "experiments", "fs", "magic", "perfstats", "ransomware", "run_benign",
    "RecoveryReport", "TraceRecord", "TraceRecorder", "recover_from_shadow", "replay_trace",
    "run_campaign", "run_sample", "sandbox", "shannon_entropy", "simhash",
    "telemetry", "windowed_entropy",
]
