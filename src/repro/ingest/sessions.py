"""Multi-endpoint ingest sessions: N tenants, one deterministic scheduler.

A CryptoDrop gateway watches many endpoints at once (ROADMAP item 1).
:class:`EndpointSessionManager` models that deployment shape on the
simulator: each *tenant* (endpoint) contributes a captured operation
stream (see :func:`record_endpoint_stream`), and the manager multiplexes
all of them onto supervised :class:`~repro.ingest.MonitorShard` s —
one virtual machine, one detector incarnation, one bounded queue, one
circuit breaker, one telemetry session per tenant, so no tenant's fault
storm can touch another's verdicts.

The scheduler is a deterministic cooperative tick loop: every tick it
(1) pumps up to ``pump_batch`` source events into each tenant's queue
(backpressure-aware, tenants in sorted order), (2) lets each shard apply
up to ``tick_budget`` queued events, and (3) runs the heartbeat
watchdog.  No wall clock, no threads: the same inputs always schedule
identically, which is what lets the chaos matrix and BENCH_6 assert
bit-identical verdicts between faulted and fault-free sessions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import CryptoDropConfig
from ..faults.plan import FaultPlan
from ..sandbox.machine import VirtualMachine
from ..telemetry import TelemetrySession
from ..trace import TraceRecord, TraceRecorder
from .breaker import CircuitBreaker
from .queue import BoundedIngestQueue, ShedPolicy
from .shard import MonitorShard
from .watchdog import HeartbeatWatchdog

__all__ = ["EndpointSessionManager", "record_endpoint_stream"]

_DEFAULT = object()  # sentinel: "inherit the manager-wide setting"


def record_endpoint_stream(corpus, program, seed: Optional[int] = None,
                           max_events: Optional[int] = None
                           ) -> List[TraceRecord]:
    """Capture one endpoint's replayable operation stream.

    Runs ``program`` on a throwaway machine with only a
    :class:`~repro.trace.TraceRecorder` attached — no detector, so the
    full workload is captured even if it would have been suspended —
    and returns the (optionally truncated) record list that
    :meth:`EndpointSessionManager.add_endpoint` ingests.
    """
    machine = VirtualMachine(corpus)
    recorder = TraceRecorder()
    machine.vfs.filters.attach(recorder)
    try:
        machine.run_program(program, seed=seed)
    finally:
        machine.vfs.filters.detach(recorder)
    records = recorder.records
    return records[:max_events] if max_events is not None else records


class EndpointSessionManager:
    """Sharded, supervised multi-tenant ingest over one shared corpus."""

    def __init__(self, corpus, config: Optional[CryptoDropConfig] = None,
                 policy=None, queue_capacity: int = 64,
                 shed_policy: Optional[ShedPolicy] = None,
                 breaker: bool = True, breaker_failure_threshold: int = 3,
                 breaker_cooldown_ticks: int = 4,
                 watchdog: bool = True, watchdog_miss_threshold: int = 3,
                 checkpoint_every: int = 32, pump_batch: int = 8,
                 tick_budget: int = 8, baseline_store=None,
                 seed: int = 0, max_ticks: int = 1_000_000) -> None:
        self.corpus = corpus
        self.config = config or CryptoDropConfig()
        self.policy = policy
        self.queue_capacity = queue_capacity
        self.shed_policy = shed_policy
        self.breaker_enabled = breaker
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_ticks = breaker_cooldown_ticks
        self.watchdog = (HeartbeatWatchdog(watchdog_miss_threshold)
                         if watchdog else None)
        self.checkpoint_every = checkpoint_every
        self.pump_batch = pump_batch
        self.tick_budget = tick_budget
        self.baseline_store = baseline_store
        self.seed = seed
        self.max_ticks = max_ticks
        self.shards: Dict[str, MonitorShard] = {}
        self.sessions: Dict[str, Optional[TelemetrySession]] = {}
        self.ticks = 0
        self._ran = False

    # -- setup ---------------------------------------------------------------

    def add_endpoint(self, tenant: str, records: List[TraceRecord],
                     fault_plan: Optional[FaultPlan] = None,
                     shed_policy=_DEFAULT,
                     queue_capacity: Optional[int] = None) -> MonitorShard:
        """Register one tenant's stream on its own bulkhead-isolated shard."""
        if self._ran:
            raise RuntimeError("session already ran")
        if tenant in self.shards:
            raise ValueError(f"tenant {tenant!r} already registered")
        policy = self.shed_policy if shed_policy is _DEFAULT else shed_policy
        capacity = queue_capacity if queue_capacity is not None \
            else self.queue_capacity
        machine = VirtualMachine(self.corpus,
                                 baseline_store=self.baseline_store)
        session = TelemetrySession.from_config(self.config)
        queue = BoundedIngestQueue(capacity, policy, tenant=tenant,
                                   telemetry=session)
        breaker = CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            cooldown_ticks=self.breaker_cooldown_ticks,
            seed=self.seed, tenant=tenant, telemetry=session,
            enabled=True) if self.breaker_enabled else None
        shard = MonitorShard(
            tenant, machine, records, config=self.config, policy=self.policy,
            queue=queue, breaker=breaker, fault_plan=fault_plan,
            checkpoint_every=self.checkpoint_every,
            baseline_store=self.baseline_store, telemetry=session)
        self.shards[tenant] = shard
        self.sessions[tenant] = session
        return shard

    # -- the scheduler -------------------------------------------------------

    def _ordered(self) -> List[MonitorShard]:
        return [self.shards[t] for t in sorted(self.shards)]

    def run(self) -> dict:
        """Drive every stream to completion (or abandonment); report."""
        if self._ran:
            raise RuntimeError("session already ran")
        self._ran = True
        for shard in self._ordered():
            shard.start()
        tick = 0
        while True:
            pending = [s for s in self._ordered()
                       if not (s.alive and s.done)]
            if not pending:
                break
            if self.watchdog is None and all(not s.alive for s in pending):
                break  # dead with nobody to revive them: abandoned
            tick += 1
            if tick > self.max_ticks:
                raise RuntimeError(
                    f"ingest session exceeded max_ticks={self.max_ticks}")
            for shard in self._ordered():
                shard.pump(self.pump_batch)
            for shard in self._ordered():
                shard.step(tick, self.tick_budget)
            if self.watchdog is not None:
                self.watchdog.scan(tick, self._ordered())
        self.ticks = tick
        return self.report()

    # -- results -------------------------------------------------------------

    @property
    def abandoned(self) -> List[str]:
        """Tenants whose shard is dead with no watchdog to revive it."""
        return [t for t, s in sorted(self.shards.items()) if not s.alive]

    def verdicts(self) -> Dict[str, Optional[dict]]:
        """Per-tenant verdict fingerprints (the identity-check object)."""
        return {t: s.verdict() for t, s in sorted(self.shards.items())}

    def cross_tenant_events(self) -> List[dict]:
        """Tenant-tagged events that leaked onto another tenant's bus.

        Bulkhead isolation means this must always be empty: every
        LoadShed/BreakerTripped/ShardRestarted event carries its tenant,
        and each tenant has a private bus, so any mismatch is a leak.
        """
        leaks: List[dict] = []
        for tenant, session in sorted(self.sessions.items()):
            if session is None:
                continue
            for event in session.bus.events():
                tagged = getattr(event, "tenant", None)
                if tagged is not None and tagged != tenant:
                    leaks.append({"bus": tenant, "event_kind": event.kind,
                                  "tagged_tenant": tagged})
        return leaks

    def stats(self) -> dict:
        return {
            "ticks": self.ticks,
            "watchdog": (None if self.watchdog is None
                         else self.watchdog.stats()),
            "tenants": {t: s.stats()
                        for t, s in sorted(self.shards.items())},
        }

    def report(self) -> dict:
        return {
            "ticks": self.ticks,
            "abandoned": self.abandoned,
            "cross_tenant_leaks": self.cross_tenant_events(),
            "verdicts": self.verdicts(),
            "stats": self.stats(),
        }

    def close(self) -> None:
        """Graceful teardown of every shard (flush + detach)."""
        for shard in self._ordered():
            shard.stop()
