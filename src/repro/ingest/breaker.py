"""Per-stream circuit breaker with exponential-backoff half-open probes.

When a tenant's inspections start failing transiently (sharing
violations, EINTR-style denials injected by :class:`~repro.faults.FaultInjector`),
hammering the failing operation every tick wastes the shard's apply
budget and amplifies the fault storm.  The breaker wraps the apply loop:

* **closed** — normal operation; consecutive transient failures are
  counted, success resets the count;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips and the shard stops applying this stream for a cooldown
  of ``cooldown_ticks * 2**(trip_streak-1)`` ticks (capped at
  ``max_cooldown_ticks``), stretched by deterministic seeded jitter so
  many breakers tripped by one fault storm do not probe in lockstep;
* **half-open** — when the cooldown expires, exactly one probe event is
  allowed through: success closes the breaker and resets the backoff
  streak, failure re-opens it with the next (doubled) cooldown.

Disabled (``enabled=False``) the breaker still counts failures but never
blocks — the chaos matrix uses this to show retry storms without a
breaker versus bounded probing with one.  Every trip emits a
tenant-tagged :class:`~repro.telemetry.events.BreakerTripped` event and
bumps ``cryptodrop_breaker_trips_total``.
"""

from __future__ import annotations

import random

from ..telemetry.events import BreakerTripped

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"


class CircuitBreaker:
    """Transient-failure breaker for one tenant's apply loop."""

    __slots__ = ("failure_threshold", "cooldown_ticks", "max_cooldown_ticks",
                 "jitter", "tenant", "telemetry", "enabled", "_rng",
                 "state", "consecutive_failures", "trip_streak",
                 "failures_total", "trips", "probes", "reopen_at")

    def __init__(self, failure_threshold: int = 3, cooldown_ticks: int = 4,
                 max_cooldown_ticks: int = 64, jitter: float = 0.25,
                 seed: int = 0, tenant: str = "", telemetry=None,
                 enabled: bool = True) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.max_cooldown_ticks = max_cooldown_ticks
        self.jitter = jitter
        self.tenant = tenant
        self.telemetry = telemetry
        self.enabled = enabled
        # Seeded per tenant so concurrent breakers desynchronise their
        # probes deterministically (same run -> same jitter draws).
        self._rng = random.Random(f"{seed}:{tenant}")
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trip_streak = 0
        self.failures_total = 0
        self.trips = 0
        self.probes = 0
        self.reopen_at = 0

    def allow(self, tick: int) -> bool:
        """May the shard attempt an apply at ``tick``?"""
        if not self.enabled or self.state == CLOSED:
            return True
        if self.state == OPEN:
            if tick >= self.reopen_at:
                self.state = HALF_OPEN
                self.probes += 1
                return True
            return False
        # HALF_OPEN: the single probe was already handed out this
        # incarnation; its outcome (record_success / record_failure)
        # decides the next state before allow() is consulted again.
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.trip_streak = 0
        self.state = CLOSED

    def record_failure(self, tick: int) -> bool:
        """Count a transient failure; returns True if the breaker tripped."""
        self.failures_total += 1
        self.consecutive_failures += 1
        if not self.enabled:
            return False
        if (self.state == HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self._trip(tick)
            return True
        return False

    def _trip(self, tick: int) -> None:
        self.trip_streak += 1
        self.trips += 1
        base = min(self.max_cooldown_ticks,
                   self.cooldown_ticks * (2 ** (self.trip_streak - 1)))
        cooldown = max(1, int(round(
            base * (1.0 + self.jitter * self._rng.random()))))
        self.reopen_at = tick + cooldown
        self.state = OPEN
        self.consecutive_failures = 0
        if self.telemetry is not None:
            t = self.telemetry
            t.breaker_trips.inc(tenant=self.tenant)
            t.bus.emit(BreakerTripped(
                t.bus.clock_us, tenant=self.tenant,
                failures=self.failures_total, trips=self.trips,
                cooldown_ticks=cooldown))

    def stats(self) -> dict:
        return {
            "state": self.state if self.enabled else CLOSED,
            "enabled": self.enabled,
            "failures": self.failures_total,
            "trips": self.trips,
            "probes": self.probes,
            "reopen_at": self.reopen_at,
        }
