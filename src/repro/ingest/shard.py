"""One supervised monitor shard: bulkhead-isolated per-tenant detection.

A :class:`MonitorShard` owns everything one endpoint stream needs — its
own :class:`~repro.sandbox.machine.VirtualMachine`, its own
:class:`~repro.faults.MonitorSupervisor`-managed detector incarnation,
its own bounded queue and circuit breaker — so a fault storm, poison
event, or kill on one tenant cannot perturb another tenant's verdicts
(bulkhead isolation).

Recovery model (the part that makes post-restart verdicts bit-identical
to an unfaulted run):

* the shard takes **quiescent checkpoints**: every ``checkpoint_every``
  applied events it persists the engine state *only once its open-handle
  map is empty*, then re-marks the VFS journal and snapshots its replay
  maps.  Quiescence matters because VFS handles are not journalled — a
  checkpoint taken mid-file would revert the data but leak the handle;
* every successfully applied event since the checkpoint is appended to
  an in-memory **journal tail**;
* on a hard kill (``SIGKILL`` model: no parting checkpoint) or a wedge,
  :meth:`restart` reverts the VFS journal to the checkpoint mark,
  restores a monitor from the checkpoint, and **replays the tail**.  The
  restored engine sees exactly the operation stream the dead incarnation
  saw — same bytes, same order — so scores, union flags, and verdicts
  converge bit-for-bit.  The shard's
  :class:`~repro.faults.FaultInjector` is suspended (not re-armed)
  during replay so already-survived operations are not faulted twice.

Failure taxonomy inside the apply loop:

* :class:`~repro.faults.PoisonedEvent` — permanent; discarded and
  counted, never retried, never enters the tail;
* transient :class:`~repro.fs.FsError` (``is_transient``) — the event
  stays at the queue head and is retried next tick; the breaker counts
  the failure;
* permanent :class:`~repro.fs.FsError` — dropped, mirroring
  ``replay_trace``'s skip semantics;
* :class:`~repro.fs.ProcessSuspended` — the detector delivered its
  verdict mid-stream; the stream is finished and the rest discarded.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..faults.injector import FaultInjector, IngestFaultSource, PoisonedEvent
from ..faults.plan import FaultPlan
from ..faults.supervisor import MonitorSupervisor
from ..fs.errors import FsError, ProcessSuspended, is_transient
from ..fs.paths import WinPath
from ..telemetry.events import FaultInjected, ShardRestarted
from ..trace import TraceRecord
from .breaker import CircuitBreaker
from .queue import Admission, BoundedIngestQueue, EndpointEvent

__all__ = ["MonitorShard"]


class MonitorShard:
    """Supervised, bulkhead-isolated detection for one endpoint stream."""

    def __init__(self, tenant: str, machine, records: List[TraceRecord],
                 config=None, policy=None,
                 queue: Optional[BoundedIngestQueue] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 checkpoint_every: int = 32,
                 baseline_store=None, telemetry=None) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.tenant = tenant
        self.machine = machine
        self.vfs = machine.vfs
        self.telemetry = telemetry
        self.queue = queue if queue is not None else \
            BoundedIngestQueue(tenant=tenant, telemetry=telemetry)
        self.breaker = breaker
        self.checkpoint_every = checkpoint_every
        self.fault_plan = fault_plan
        source = (IngestFaultSource(fault_plan, tenant, len(records))
                  if fault_plan is not None else None)
        self.events: List[EndpointEvent] = self._decorate(records, source)
        self._kills = deque(source.kills) if source is not None else deque()
        # op-level faults (denials, short reads, latency) ride the filter
        # stack; ingest-level faults above never arm the injector
        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan.armed:
            self.injector = FaultInjector(fault_plan, telemetry=telemetry)
        self.supervisor = MonitorSupervisor(
            self.vfs, config, policy, baseline_store=baseline_store,
            telemetry=telemetry)
        # replay maps: original trace pid -> live replay pid, and
        # (replay pid, lowercased path) -> open handle (replay_trace's
        # scheme, snapshotted at each checkpoint)
        self.pid_map: Dict[int, int] = {}
        self.open_handles: Dict[Tuple[int, str], object] = {}
        self._tail: List[EndpointEvent] = []
        self._since_ckpt = 0
        self._ckpt_pid_map: Dict[int, int] = {}
        self._ckpt_suspended: frozenset = frozenset()
        self._stalled_seqs = set()
        self._cursor = 0
        self.alive = False
        self.finished = False
        self.wedged_until = 0
        self.last_beat = 0
        self.applied_total = 0
        self.replayed_total = 0
        self.poisoned = 0
        self.dropped = 0
        self.discarded_after_verdict = 0
        self.transient_failures = 0
        self.kills_suffered = 0
        self.wedges = 0
        self.restarts = 0
        self.checkpoints = 0

    def _decorate(self, records: List[TraceRecord],
                  source: Optional[IngestFaultSource]
                  ) -> List[EndpointEvent]:
        """Wrap raw trace records into the (fault-augmented) stream."""
        events: List[EndpointEvent] = []
        seq = 0
        for index, record in enumerate(records):
            if source is not None:
                for _ in range(source.poison_before.get(index, 0)):
                    events.append(EndpointEvent(self.tenant, seq, record,
                                                poison=True))
                    seq += 1
                stall = source.stall_before.get(index, 0)
            else:
                stall = 0
            events.append(EndpointEvent(self.tenant, seq, record,
                                        stall_ticks=stall))
            seq += 1
        return events

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MonitorShard":
        if self.alive:
            raise RuntimeError("shard already started")
        if self.injector is not None:
            # attached before the monitor so denied operations never
            # reach the engine (identical to the chaos-suite layering)
            self.vfs.filters.attach(self.injector)
        self.supervisor.start()
        self.vfs.snapshot_mark()
        self.supervisor.checkpoint()
        self._ckpt_pid_map = {}
        self._ckpt_suspended = frozenset(self.vfs.processes.suspended_pids())
        self._tail = []
        self._since_ckpt = 0
        self.alive = True
        return self

    def stop(self) -> None:
        """Graceful teardown: flush + detach the monitor and injector."""
        self.supervisor.stop()
        if self.injector is not None:
            self.vfs.filters.detach(self.injector)
            self.injector = None
        self.alive = False

    # -- stream state --------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """Every source event has been offered to the queue."""
        return self._cursor >= len(self.events)

    @property
    def done(self) -> bool:
        """No work left that this shard could ever perform on its own."""
        if not self.alive:
            return False
        return self.finished or (self.exhausted and len(self.queue) == 0)

    @property
    def has_pending_work(self) -> bool:
        return not self.done and not self.finished

    # -- producer side -------------------------------------------------------

    def pump(self, batch: int) -> int:
        """Offer up to ``batch`` source events; stop on backpressure."""
        pumped = 0
        while (pumped < batch and not self.finished
                and self._cursor < len(self.events)):
            admission = self.queue.offer(self.events[self._cursor])
            if admission is Admission.BLOCKED:
                break
            self._cursor += 1
            pumped += 1
        return pumped

    # -- consumer side -------------------------------------------------------

    def step(self, tick: int, budget: int) -> int:
        """Apply up to ``budget`` queued events; heartbeat when healthy."""
        if not self.alive:
            return 0
        if self.wedged_until > tick:
            return 0
        applied = 0
        while applied < budget and len(self.queue) and not self.finished:
            event = self.queue.peek()
            if event.stall_ticks and event.seq not in self._stalled_seqs:
                self._stalled_seqs.add(event.seq)
                self.wedged_until = tick + event.stall_ticks
                self.wedges += 1
                self._emit_fault("queue_stall", event)
                return applied  # wedged: no heartbeat this tick
            if self.breaker is not None and not self.breaker.allow(tick):
                break
            try:
                self._apply(event)
            except PoisonedEvent:
                self.queue.pop()
                self.poisoned += 1
                self._emit_fault("poison_event", event)
                continue
            except ProcessSuspended:
                # verdict delivered mid-apply: the triggering operation
                # completed (suspension fires post-operation), so it is
                # part of the durable tail
                self.queue.pop()
                self._consumed(event)
                applied += 1
                self._finish_stream()
                break
            except FsError as exc:
                if is_transient(exc):
                    self.transient_failures += 1
                    if self.breaker is not None:
                        self.breaker.record_failure(tick)
                    break  # event stays at the head; retry next tick
                self.queue.pop()
                self.dropped += 1
                continue
            self.queue.pop()
            if self.breaker is not None:
                self.breaker.record_success()
            self._consumed(event)
            applied += 1
            if self._kills and self.applied_total >= self._kills[0]:
                self._kills.popleft()
                self.kill(event)
                return applied  # dead: no heartbeat
            self._maybe_checkpoint()
        self.last_beat = tick
        return applied

    def _consumed(self, event: EndpointEvent) -> None:
        self._tail.append(event)
        self._since_ckpt += 1
        self.applied_total += 1

    def _finish_stream(self) -> None:
        self.finished = True
        self.discarded_after_verdict += \
            self.queue.clear() + (len(self.events) - self._cursor)
        self._cursor = len(self.events)

    def _emit_fault(self, fault: str, event: EndpointEvent) -> None:
        if self.telemetry is None:
            return
        t = self.telemetry
        t.faults.inc(fault=fault)
        t.bus.emit(FaultInjected(
            t.bus.clock_us, fault=fault, op_index=event.seq,
            op_kind=event.record.kind, path=event.record.path))

    # -- event application (replay_trace's dispatch, raising) ----------------

    def _replay_pid(self, original: int) -> int:
        if original not in self.pid_map:
            proc = self.vfs.processes.spawn(
                f"{self.tenant}-{original}.exe",
                started_us=self.vfs.clock.now_us)
            self.pid_map[original] = proc.pid
        return self.pid_map[original]

    def _apply(self, event: EndpointEvent) -> None:
        if event.poison:
            raise PoisonedEvent(self.tenant, event.seq)
        record = event.record
        pid = self._replay_pid(record.pid)
        path = WinPath(record.path)
        key = (pid, record.path.lower())
        handles = self.open_handles
        vfs = self.vfs
        if record.kind == "mkdir":
            vfs.mkdir(pid, path, exist_ok=True)
        elif record.kind == "create":
            handles[key] = vfs.open(pid, path, "rw", create=True)
        elif record.kind == "open":
            handles[key] = vfs.open(pid, path, "rw",
                                    truncate=record.truncate)
        elif record.kind == "read":
            handle = handles.get(key)
            if handle is not None:
                vfs.seek(pid, handle, record.offset)
                vfs.read(pid, handle, record.size)
        elif record.kind == "write":
            handle = handles.get(key)
            if handle is not None and record.data is not None:
                vfs.seek(pid, handle, record.offset)
                vfs.write(pid, handle, record.data)
        elif record.kind == "truncate":
            handle = handles.get(key)
            if handle is not None and record.new_size is not None:
                vfs.truncate_handle(pid, handle, record.new_size)
        elif record.kind == "close":
            handle = handles.pop(key, None)
            if handle is not None:
                vfs.close(pid, handle)
        elif record.kind == "rename":
            vfs.rename(pid, path, WinPath(record.dest))
            moved = handles.pop(key, None)
            if moved is not None:
                handles[(pid, record.dest.lower())] = moved
        elif record.kind == "delete":
            vfs.delete(pid, path)

    # -- checkpoint / restart ------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self._since_ckpt >= self.checkpoint_every and not self.open_handles:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Quiescent checkpoint: engine state + journal mark + replay maps.

        Callers must ensure ``open_handles`` is empty (``_maybe_checkpoint``
        does): handles are not journalled, so a revert to a mid-file mark
        could not rebuild them — whereas a quiescent tail re-opens every
        handle it needs through its own replayed OPEN/CREATE events.
        """
        self.supervisor.checkpoint()
        self.vfs.snapshot_mark()
        self._ckpt_pid_map = dict(self.pid_map)
        self._ckpt_suspended = frozenset(self.vfs.processes.suspended_pids())
        self._tail = []
        self._since_ckpt = 0
        self.checkpoints += 1

    def kill(self, event: Optional[EndpointEvent] = None) -> None:
        """SIGKILL the monitor incarnation: no parting checkpoint."""
        if event is not None:
            self._emit_fault("shard_kill", event)
        self.supervisor.hard_crash()
        self.alive = False
        self.kills_suffered += 1

    def restart(self, tick: int, reason: str = "killed",
                down_ticks: int = 0) -> int:
        """Revert to the checkpoint, restore the monitor, replay the tail.

        Returns the number of tail events replayed.  Works on dead shards
        (watchdog-detected kills) and wedged-but-alive ones (the current
        incarnation is hard-crashed first — its post-checkpoint state is
        reconstructed from the tail anyway).
        """
        self.vfs.revert()  # back to the checkpoint mark; re-marks itself
        if self.supervisor.monitor is not None:
            self.supervisor.hard_crash()
        self.wedged_until = 0
        self.supervisor.restart()
        # Families suspended inside the lost tail are still suspended in
        # the (unjournalled) process table, but the restored engine
        # pre-dates the verdict: resume them and let the replay re-derive
        # the suspension from the same bytes.
        for pid in set(self.vfs.processes.suspended_pids()):
            if pid not in self._ckpt_suspended:
                self.vfs.processes.resume_family(pid)
        self.pid_map = dict(self._ckpt_pid_map)
        self.open_handles = {}
        self.finished = False
        tail, self._tail = self._tail, []
        self._since_ckpt = 0
        if self.injector is not None:
            self.injector.suspend()
        replayed = 0
        try:
            for event in tail:
                try:
                    self._apply(event)
                except ProcessSuspended:
                    self._finish_stream()
                except FsError:
                    pass
                self._tail.append(event)
                self._since_ckpt += 1
                replayed += 1
                self.replayed_total += 1
        finally:
            if self.injector is not None:
                self.injector.resume()
        self.alive = True
        self.last_beat = tick
        self.restarts += 1
        if self.telemetry is not None:
            t = self.telemetry
            t.shard_restarts.inc(tenant=self.tenant)
            t.bus.emit(ShardRestarted(
                t.bus.clock_us, tenant=self.tenant, reason=reason,
                replayed=replayed, recovery_ticks=down_ticks,
                restarts=self.restarts))
        return replayed

    # -- results -------------------------------------------------------------

    def verdict(self) -> Optional[dict]:
        """Time- and pid-independent verdict fingerprint for this tenant.

        Detections and score rows keyed by deterministic replay process
        *names* (pids diverge between faulted and unfaulted runs — extra
        incarnations renumber them), with timestamps excluded: this is
        the object the chaos matrix and BENCH_6 compare bit-for-bit
        between faulted and fault-free runs.  ``None`` while the shard is
        dead (no monitor incarnation to ask).
        """
        monitor = self.supervisor.monitor
        if monitor is None:
            return None
        detections = [
            {
                "process": d.process_name,
                "score": d.score,
                "threshold": d.threshold,
                "union": d.union_fired,
                "flags": sorted(d.flags),
                "trigger": f"{d.trigger_op} {d.trigger_path}",
                "suspended": d.suspended,
            }
            for d in monitor.detections
        ]
        rows = sorted((
            {
                "name": row.name,
                "score": row.score,
                "threshold": row.threshold,
                "union": row.union_fired,
                "flags": sorted(row.flags),
            }
            for row in monitor.score_rows()), key=lambda r: r["name"])
        return {"detections": detections, "processes": rows}

    def stats(self) -> dict:
        return {
            "tenant": self.tenant,
            "alive": self.alive,
            "finished": self.finished,
            "applied": self.applied_total,
            "replayed": self.replayed_total,
            "poisoned": self.poisoned,
            "dropped": self.dropped,
            "discarded_after_verdict": self.discarded_after_verdict,
            "transient_failures": self.transient_failures,
            "kills": self.kills_suffered,
            "wedges": self.wedges,
            "restarts": self.restarts,
            "checkpoints": self.checkpoints,
            "queue": self.queue.stats(),
            "breaker": None if self.breaker is None else self.breaker.stats(),
            "streaming": (None if self.supervisor.monitor is None
                          else self.supervisor.monitor.engine.stream_stats()),
            "supervisor": self.supervisor.stats(),
        }
