"""Resilient multi-endpoint ingest.

The gateway layer between captured endpoint event streams and the
CryptoDrop detection engine: per-tenant supervised monitor shards with
bounded queues (backpressure + load shedding), per-stream circuit
breakers with exponential-backoff half-open probes, and a heartbeat
watchdog that restarts wedged or killed shards from checkpoint with
journal-tail replay — post-restart verdicts bit-identical to an
unfaulted run.  See ``docs/robustness.md`` §4.
"""

from .breaker import CircuitBreaker
from .queue import Admission, BoundedIngestQueue, EndpointEvent, ShedPolicy
from .sessions import EndpointSessionManager, record_endpoint_stream
from .shard import MonitorShard
from .watchdog import HeartbeatWatchdog

__all__ = ["Admission", "BoundedIngestQueue", "CircuitBreaker",
           "EndpointEvent", "EndpointSessionManager", "HeartbeatWatchdog",
           "MonitorShard", "ShedPolicy", "record_endpoint_stream"]
