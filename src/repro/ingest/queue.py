"""Bounded ingest queues: explicit backpressure plus load shedding.

The gateway-facing invariant (ROADMAP item 1): a detector serving many
endpoint streams must never buffer without bound, and must never drop
silently.  Admission to a shard's queue has exactly three outcomes:

* **ACCEPTED** — the event is queued for inspection;
* **BLOCKED** — the queue is full; the producer keeps the event and
  retries later (backpressure: delivery is delayed, never lost);
* **SHED** — the queue is above its overload watermark and the event is
  a sheddable kind (reads, by default): the shard degrades to
  sampling-mode inspection, keeping every Nth sheddable event and
  dropping the rest.  Indicator *state* is fully preserved — only input
  coverage degrades — and every shed decision emits a tenant-tagged
  :class:`~repro.telemetry.events.LoadShed` event and bumps the
  ``cryptodrop_load_shed_total`` counter, so degradation is always
  observable and bounded.

Determinism: shedding is counter-based (keep every ``sample_every``-th
sheddable event while over the watermark), not randomised, so the same
overload pattern sheds the same events every run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..telemetry.events import LoadShed
from ..trace import TraceRecord

__all__ = ["Admission", "BoundedIngestQueue", "EndpointEvent", "ShedPolicy"]


@dataclass(frozen=True)
class EndpointEvent:
    """One element of a tenant's ingest stream.

    Wraps a replayable :class:`~repro.trace.TraceRecord` with its stream
    position and any fault decoration the
    :class:`~repro.faults.IngestFaultSource` attached: ``poison`` events
    raise :class:`~repro.faults.PoisonedEvent` instead of applying, and
    ``stall_ticks`` wedges the shard before this event is applied.
    """

    tenant: str
    seq: int
    record: TraceRecord
    poison: bool = False
    stall_ticks: int = 0


class Admission(Enum):
    """Outcome of offering an event to a bounded ingest queue."""

    ACCEPTED = "accepted"
    SHED = "shed"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class ShedPolicy:
    """Sampling-mode degradation knobs for an overloaded queue.

    Above ``watermark`` queued events, only every ``sample_every``-th
    event of a kind in ``sheddable_kinds`` is admitted.  Writes, renames,
    deletes and closes are never sheddable by default: they mutate state
    and carry the scoring-critical close inspections, so shedding them
    would change verdicts rather than merely coarsen read-side coverage.
    """

    watermark: int = 48
    sample_every: int = 4
    sheddable_kinds: Tuple[str, ...] = ("read",)

    def __post_init__(self) -> None:
        if self.watermark <= 0:
            raise ValueError("watermark must be positive")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")


class BoundedIngestQueue:
    """One shard's bounded event queue with shed/block admission.

    ``shed_policy`` None (the default) disables shedding entirely: the
    queue then offers pure backpressure, which is what verdict-identity
    chaos runs use (no event ever dropped).
    """

    __slots__ = ("capacity", "shed_policy", "tenant", "telemetry",
                 "_events", "accepted", "shed", "blocked",
                 "high_watermark_seen", "_shed_seen")

    def __init__(self, capacity: int = 64,
                 shed_policy: Optional[ShedPolicy] = None,
                 tenant: str = "", telemetry=None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if shed_policy is not None and shed_policy.watermark > capacity:
            raise ValueError("shed watermark above queue capacity would "
                             "never fire before backpressure")
        self.capacity = capacity
        self.shed_policy = shed_policy
        self.tenant = tenant
        self.telemetry = telemetry
        self._events: "deque[EndpointEvent]" = deque()
        self.accepted = 0
        self.shed = 0
        self.blocked = 0
        self.high_watermark_seen = 0
        self._shed_seen = 0

    def __len__(self) -> int:
        return len(self._events)

    def offer(self, event: EndpointEvent) -> Admission:
        """Admit, shed, or refuse one event (see module docstring)."""
        policy = self.shed_policy
        if (policy is not None
                and len(self._events) >= policy.watermark
                and not event.poison
                and event.record.kind in policy.sheddable_kinds):
            self._shed_seen += 1
            if self._shed_seen % policy.sample_every != 0:
                self.shed += 1
                if self.telemetry is not None:
                    t = self.telemetry
                    t.load_sheds.inc(tenant=self.tenant)
                    t.bus.emit(LoadShed(
                        t.bus.clock_us, tenant=self.tenant, seq=event.seq,
                        op_kind=event.record.kind,
                        queue_depth=len(self._events)))
                return Admission.SHED
        if len(self._events) >= self.capacity:
            self.blocked += 1
            return Admission.BLOCKED
        self._events.append(event)
        self.accepted += 1
        if len(self._events) > self.high_watermark_seen:
            self.high_watermark_seen = len(self._events)
        return Admission.ACCEPTED

    def peek(self) -> EndpointEvent:
        return self._events[0]

    def pop(self) -> EndpointEvent:
        return self._events.popleft()

    def clear(self) -> int:
        """Discard everything queued (stream finished); returns count."""
        discarded = len(self._events)
        self._events.clear()
        return discarded

    def stats(self) -> dict:
        return {
            "depth": len(self._events),
            "capacity": self.capacity,
            "accepted": self.accepted,
            "shed": self.shed,
            "blocked": self.blocked,
            "high_watermark_seen": self.high_watermark_seen,
        }
