"""Heartbeat watchdog: detects wedged or killed shards and restarts them.

Every healthy :meth:`~repro.ingest.MonitorShard.step` stamps the shard's
``last_beat``; a shard that is dead (hard-killed monitor) or wedged
(queue-stall fault) stops beating.  The watchdog scans once per
scheduler tick and, when a shard with pending work has missed
``miss_threshold`` consecutive beats, drives
:meth:`~repro.ingest.MonitorShard.restart` — checkpoint revert plus
journal-tail replay — and records the outage length as the recovery
time reported by BENCH_6's ``ingest_resilience`` section.

Disabled (the manager's ``watchdog=False``), dead shards stay dead and
the session reports them as abandoned — the chaos matrix's control arm.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["HeartbeatWatchdog"]


class HeartbeatWatchdog:
    """Tick-driven liveness scanner over a set of shards."""

    def __init__(self, miss_threshold: int = 3) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.miss_threshold = miss_threshold
        self.restarts = 0
        self.recovery_ticks: List[int] = []

    def scan(self, tick: int, shards: Iterable) -> int:
        """Restart every flatlined shard; returns how many were revived."""
        revived = 0
        for shard in shards:
            if shard.finished:
                continue
            if shard.alive and shard.done:
                continue
            missed = tick - shard.last_beat
            if missed < self.miss_threshold:
                continue
            reason = "wedged" if shard.alive else "killed"
            shard.restart(tick, reason=reason, down_ticks=missed)
            self.restarts += 1
            self.recovery_ticks.append(missed)
            revived += 1
        return revived

    def stats(self) -> dict:
        return {
            "miss_threshold": self.miss_threshold,
            "restarts": self.restarts,
            "recovery_ticks": list(self.recovery_ticks),
        }
