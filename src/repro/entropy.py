"""Shannon entropy over byte arrays.

Implements the paper's §III-C formula exactly:

    e = sum_i P(B_i) * log2(1 / P(B_i)),   P(B_i) = F_i / total_bytes

giving a value in [0, 8] where 8 is a perfectly even byte distribution.
Also provides the vectorised windowed variant that the sdhash-style feature
selector uses, and the paper's §IV-C1 weighted-mean machinery
(``w = 0.125 × ⌊e⌉ × b``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "shannon_entropy",
    "corrected_entropy",
    "corrected_entropy_from_counts",
    "corrected_entropies_from_histograms",
    "histograms_many",
    "entropy_weight",
    "windowed_entropy",
    "WeightedEntropyMean",
]


def _as_bytes(data) -> bytes:
    """Copy only non-bytes inputs (memoryview, bytearray); the engine's
    read/write payloads are already immutable ``bytes``."""
    return data if isinstance(data, bytes) else bytes(data)


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of ``data`` in bits per byte (0.0 for empty input)."""
    if not data:
        return 0.0
    counts = np.bincount(np.frombuffer(_as_bytes(data), dtype=np.uint8),
                         minlength=256)
    probs = counts[counts > 0] / len(data)
    return float(-(probs * np.log2(probs)).sum())


def corrected_entropy(data: bytes) -> float:
    """Miller–Madow bias-corrected Shannon entropy, clamped to [0, 8].

    The naive plug-in estimator underestimates entropy on short samples:
    a 2 KiB ciphertext chunk measures ≈ 7.91 even though the source is
    uniform.  The Miller–Madow correction adds ``(K − 1) / (2·n·ln 2)``
    (K = observed distinct byte values), which restores ciphertext chunks
    to ≈ 8.0 at every operation size the engine sees.  The per-process
    entropy means use this estimator so the paper's 0.1 delta threshold
    keeps its resolution regardless of a sample's chunking habits.
    """
    if not data:
        return 0.0
    buf = np.frombuffer(_as_bytes(data), dtype=np.uint8)
    counts = np.bincount(buf, minlength=256)
    nonzero = counts[counts > 0]
    probs = nonzero / len(buf)
    plug_in = float(-(probs * np.log2(probs)).sum())
    correction = (len(nonzero) - 1) / (2.0 * len(buf) * np.log(2.0))
    return min(8.0, plug_in + correction)


def corrected_entropy_from_counts(counts: np.ndarray, n: int) -> float:
    """:func:`corrected_entropy` from a precomputed byte histogram.

    ``counts`` is a 256-bin integer histogram summing to ``n``.  Because
    the histogram is exact integers however it was accumulated, the value
    is bit-identical to ``corrected_entropy(data)`` over the same bytes —
    which is what lets the engine keep a *running* per-handle histogram
    across writes instead of re-counting the full payload every time.
    """
    if n == 0:
        return 0.0
    nonzero = counts[counts > 0]
    probs = nonzero / n
    plug_in = float(-(probs * np.log2(probs)).sum())
    correction = (len(nonzero) - 1) / (2.0 * n * np.log(2.0))
    return min(8.0, plug_in + correction)


def histograms_many(blobs) -> np.ndarray:
    """Per-blob 256-bin byte histograms as an ``(n, 256)`` int64 array.

    Each row equals ``np.bincount(np.frombuffer(blob, np.uint8),
    minlength=256)`` — one contiguous counting pass per blob, which beats
    any concatenated scatter: a shared ``(n × 256)``-bin bincount touches
    a multi-megabyte output randomly per chunk, while per-blob counts stay
    in cache.  Integer counts are exact regardless of accumulation route.
    """
    F = len(blobs)
    hists = np.zeros((F, 256), dtype=np.int64)
    for i, blob in enumerate(blobs):
        if len(blob):
            hists[i] = np.bincount(
                np.frombuffer(_as_bytes(blob), dtype=np.uint8),
                minlength=256)
    return hists


def corrected_entropies_from_histograms(hists: np.ndarray,
                                        lens) -> np.ndarray:
    """Batched :func:`corrected_entropy_from_counts` over histogram rows.

    The plug-in term for each row is a ``np.sum`` over that row's nonzero
    probability terms — elementwise ops plus a contiguous pairwise slice
    sum, the same reduction the scalar path performs — so every value is
    bit-identical to calling the scalar function row by row.
    """
    F = hists.shape[0]
    out = np.zeros(F, dtype=np.float64)
    if F == 0:
        return out
    lens = np.asarray(lens, dtype=np.int64)
    mask = hists > 0
    k_per_file = mask.sum(axis=1)
    nonzero = hists[mask].astype(np.float64)
    probs = nonzero / lens.repeat(k_per_file)
    prod = probs * np.log2(probs)
    bounds = np.zeros(F + 1, dtype=np.int64)
    np.cumsum(k_per_file, out=bounds[1:])
    ln2 = np.log(2.0)
    for i in range(F):
        n = int(lens[i])
        if n == 0:
            continue
        plug_in = float(-prod[bounds[i]:bounds[i + 1]].sum())
        correction = (int(k_per_file[i]) - 1) / (2.0 * n * ln2)
        out[i] = min(8.0, plug_in + correction)
    return out


def windowed_entropy(data: bytes, window: int = 64, step: int = 16) -> np.ndarray:
    """Entropy of each ``window``-byte window, advanced ``step`` bytes.

    Fully vectorised: builds per-window byte histograms with a single
    scatter-add.  Returns an empty array when ``data`` is shorter than one
    window.
    """
    buf = np.frombuffer(_as_bytes(data), dtype=np.uint8)
    if len(buf) < window:
        return np.zeros(0, dtype=np.float64)
    views = np.lib.stride_tricks.sliding_window_view(buf, window)[::step]
    n_windows = views.shape[0]
    rows = np.repeat(np.arange(n_windows, dtype=np.int64), window)
    flat = rows * 256 + views.ravel()
    counts = np.bincount(flat, minlength=n_windows * 256).reshape(n_windows, 256)
    # count → p·log2(p) term table (counts are integers in [0, window]):
    # identical float ops per term, but no log2 over a mostly-zero matrix
    c = np.arange(1, window + 1, dtype=np.float64)
    terms = np.zeros(window + 1, dtype=np.float64)
    terms[1:] = (c / window) * np.log2(c / window)
    return -terms[counts].sum(axis=1)


def entropy_weight(entropy: float, n_bytes: int) -> float:
    """The paper's weight ``w = 0.125 × ⌊e⌉ × b``.

    ``⌊e⌉`` is the entropy rounded to the nearest integer; the 0.125
    constant normalises the entropy factor to [0, 1] so that "low-entropy
    and small read/write operations do not over-influence the mean".
    """
    return 0.125 * round(entropy) * n_bytes


class WeightedEntropyMean:
    """Incrementally maintained weighted arithmetic mean of op entropies.

    One instance per (process, direction): ``Pread`` or ``Pwrite``.
    With ``corrected=True`` (the engine's setting) the Miller–Madow
    estimator is used per op; the weight formula is unchanged.
    """

    __slots__ = ("_weighted_sum", "_weight_total", "ops", "corrected")

    def __init__(self, corrected: bool = False) -> None:
        self._weighted_sum = 0.0
        self._weight_total = 0.0
        self.ops = 0
        self.corrected = corrected

    def update(self, data: bytes) -> float:
        """Fold one atomic read/write; returns that op's entropy."""
        e = corrected_entropy(data) if self.corrected else shannon_entropy(data)
        return self._fold(e, len(data))

    def update_from_counts(self, counts: np.ndarray, n: int) -> float:
        """Fold one op from its precomputed 256-bin byte histogram.

        Lets a caller that already counted the payload's bytes (e.g. to
        maintain a per-handle running histogram) feed the mean without a
        second ``bincount`` over the same buffer; the folded entropy is
        bit-identical to :meth:`update` on the counted bytes.
        """
        if self.corrected:
            e = corrected_entropy_from_counts(counts, n)
        elif n == 0:
            e = 0.0
        else:
            probs = counts[counts > 0] / n
            e = float(-(probs * np.log2(probs)).sum())
        return self._fold(e, n)

    def _fold(self, e: float, n_bytes: int) -> float:
        w = entropy_weight(e, n_bytes)
        self._weighted_sum += w * e
        self._weight_total += w
        self.ops += 1
        return e

    @property
    def value(self) -> Optional[float]:
        """Current mean, or None before any weighted observation."""
        if self._weight_total == 0.0:
            return None
        return self._weighted_sum / self._weight_total

    def state(self) -> Tuple[float, float, int]:
        return self._weighted_sum, self._weight_total, self.ops

    def load(self, weighted_sum: float, weight_total: float,
             ops: int) -> "WeightedEntropyMean":
        """Restore a :meth:`state` tuple (engine checkpoint/restore)."""
        self._weighted_sum = float(weighted_sum)
        self._weight_total = float(weight_total)
        self.ops = int(ops)
        return self
