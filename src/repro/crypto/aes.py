"""AES-128/192/256 from scratch (FIPS-197).

Many ransomware families "implement their own versions of these
algorithms" (paper §III), which is exactly why CryptoDrop cannot rely on
hooking crypto libraries.  This is a clean-room, table-driven AES with ECB,
CBC, and CTR modes.  It is pure Python and therefore slow; family
simulators use it for key material and small payloads, and the
NumPy-vectorised stream ciphers for bulk data.

Test vectors from FIPS-197 Appendix C are enforced in the test suite.
"""

from __future__ import annotations

from typing import List

from .padding import pad, unpad

__all__ = ["AES", "aes_cbc_encrypt", "aes_cbc_decrypt", "aes_ctr_xor"]


def _build_sbox() -> tuple:
    """Generate the S-box from first principles (GF(2^8) inverse + affine)."""
    # exp/log tables over GF(2^8) with generator 3
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by 3 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        result = 0
        for shift in (0, 1, 2, 3, 4):
            result ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = result ^ 0x63
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox), tuple(exp), tuple(log)


_SBOX, _INV_SBOX, _EXP, _LOG = _build_sbox()
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D)


def _gmul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[(_LOG[a] + _LOG[b]) % 255]


class AES:
    """One AES key schedule; encrypt/decrypt single 16-byte blocks."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24, or 32 bytes")
        self.key = bytes(key)
        self._round_keys = self._expand(self.key)
        self.rounds = len(self._round_keys) - 1

    @staticmethod
    def _expand(key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        round_keys = []
        for r in range(rounds + 1):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    # state is a 16-int list in column-major order (as FIPS-197 lays it out)

    @staticmethod
    def _shift_rows(s: List[int]) -> List[int]:
        return [s[0], s[5], s[10], s[15],
                s[4], s[9], s[14], s[3],
                s[8], s[13], s[2], s[7],
                s[12], s[1], s[6], s[11]]

    @staticmethod
    def _inv_shift_rows(s: List[int]) -> List[int]:
        return [s[0], s[13], s[10], s[7],
                s[4], s[1], s[14], s[11],
                s[8], s[5], s[2], s[15],
                s[12], s[9], s[6], s[3]]

    @staticmethod
    def _mix_columns(s: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            a = s[4 * c:4 * c + 4]
            out[4 * c + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
            out[4 * c + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
            out[4 * c + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
            out[4 * c + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(s: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            a = s[4 * c:4 * c + 4]
            out[4 * c + 0] = _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
            out[4 * c + 1] = _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
            out[4 * c + 2] = _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
            out[4 * c + 3] = _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)
        return out

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("block must be 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for rnd in range(1, self.rounds):
            state = [_SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = [b ^ k for b, k in zip(state, self._round_keys[rnd])]
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = [b ^ k for b, k in zip(state, self._round_keys[self.rounds])]
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("block must be 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[self.rounds])]
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        for rnd in range(self.rounds - 1, 0, -1):
            state = [b ^ k for b, k in zip(state, self._round_keys[rnd])]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
        return bytes(b ^ k for b, k in zip(state, self._round_keys[0]))


def aes_cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC with PKCS#7 padding."""
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    cipher = AES(key)
    previous = iv
    out = []
    for start in range(0, len(padded := pad(plaintext)), 16):
        block = bytes(a ^ b for a, b in zip(padded[start:start + 16], previous))
        previous = cipher.encrypt_block(block)
        out.append(previous)
    return b"".join(out)


def aes_cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`aes_cbc_encrypt`; strips the PKCS#7 padding."""
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    if len(ciphertext) % 16:
        raise ValueError("ciphertext is not block aligned")
    cipher = AES(key)
    previous = iv
    out = []
    for start in range(0, len(ciphertext), 16):
        block = ciphertext[start:start + 16]
        plain = cipher.decrypt_block(block)
        out.append(bytes(a ^ b for a, b in zip(plain, previous)))
        previous = block
    return unpad(b"".join(out))


def aes_ctr_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """CTR keystream XOR (encrypt == decrypt). ``nonce`` is 12 bytes."""
    if len(nonce) != 12:
        raise ValueError("nonce must be 12 bytes")
    cipher = AES(key)
    out = bytearray()
    counter = 0
    for start in range(0, len(data), 16):
        block = cipher.encrypt_block(nonce + counter.to_bytes(4, "big"))
        chunk = data[start:start + 16]
        out.extend(a ^ b for a, b in zip(chunk, block))
        counter += 1
    return bytes(out)
