"""From-scratch cryptography used by the ransomware family simulators.

Nothing here should ever protect real data — the point is that the
*simulated attackers* use genuine cipher constructions so that CryptoDrop's
indicators face realistic ciphertext statistics (and the deliberately weak
ones, XOR/TEA, stress the entropy indicator the way Xorist did).
"""

from .aes import AES, aes_cbc_decrypt, aes_cbc_encrypt, aes_ctr_xor
from .chacha20 import chacha20_block, chacha20_keystream, chacha20_xor
from .padding import PaddingError, pad, unpad
from .rsa import (RsaKeyPair, generate_keypair, is_probable_prime,
                  rsa_decrypt_int, rsa_encrypt_int, unwrap_key, wrap_key)
from .stream import (rc4_crypt, tea_crypt, tea_decrypt_blocks,
                     tea_encrypt_blocks, xor_crypt)

__all__ = [
    "AES", "PaddingError", "RsaKeyPair", "aes_cbc_decrypt",
    "aes_cbc_encrypt", "aes_ctr_xor", "chacha20_block",
    "chacha20_keystream", "chacha20_xor", "generate_keypair",
    "is_probable_prime", "pad", "rc4_crypt", "rsa_decrypt_int",
    "rsa_encrypt_int", "tea_crypt", "tea_decrypt_blocks",
    "tea_encrypt_blocks", "unpad", "unwrap_key", "wrap_key", "xor_crypt",
]
