"""Lesser stream/block ciphers ransomware families actually shipped.

* :func:`rc4_crypt` — RC4, as used by several early CryptoLocker knockoffs.
* :func:`xor_crypt` — repeating-key XOR; the Xorist family is literally
  named for it.  Deliberately weak: the ciphertext's byte distribution is a
  permutation of the plaintext's per key-phase, so its entropy rise is
  smaller than real ciphers' — a useful stressor for the entropy indicator.
* :func:`tea_encrypt_blocks` / :func:`tea_decrypt_blocks` — TEA (the other
  cipher Xorist ships), NumPy-vectorised over blocks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rc4_crypt", "xor_crypt", "tea_encrypt_blocks",
           "tea_decrypt_blocks", "tea_crypt"]

_TEA_DELTA = np.uint32(0x9E3779B9)
_TEA_ROUNDS = 32


def rc4_crypt(key: bytes, data: bytes) -> bytes:
    """RC4 (encrypt == decrypt)."""
    if not 1 <= len(key) <= 256:
        raise ValueError("RC4 key must be 1..256 bytes")
    s = list(range(256))
    j = 0
    for i in range(256):
        j = (j + s[i] + key[i % len(key)]) & 0xFF
        s[i], s[j] = s[j], s[i]
    out = bytearray(len(data))
    i = j = 0
    for idx, byte in enumerate(data):
        i = (i + 1) & 0xFF
        j = (j + s[i]) & 0xFF
        s[i], s[j] = s[j], s[i]
        out[idx] = byte ^ s[(s[i] + s[j]) & 0xFF]
    return bytes(out)


def xor_crypt(key: bytes, data: bytes) -> bytes:
    """Repeating-key XOR (encrypt == decrypt)."""
    if not key:
        raise ValueError("empty XOR key")
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    reps = -(-len(buf) // len(key))
    stream = np.frombuffer(bytes(key) * reps, dtype=np.uint8)[:len(buf)]
    return (buf ^ stream).tobytes()


def _tea_key_words(key: bytes) -> np.ndarray:
    if len(key) != 16:
        raise ValueError("TEA key must be 16 bytes")
    return np.frombuffer(key, dtype="<u4")


def _pad_to_blocks(data: bytes) -> np.ndarray:
    padded = bytes(data) + b"\x00" * (-len(data) % 8)
    return np.frombuffer(padded, dtype="<u4").reshape(-1, 2).copy()


def tea_encrypt_blocks(key: bytes, data: bytes) -> bytes:
    """TEA over zero-padded 8-byte blocks, all blocks in parallel."""
    k = _tea_key_words(key)
    blocks = _pad_to_blocks(data)
    v0, v1 = blocks[:, 0], blocks[:, 1]
    total = np.uint32(0)
    with np.errstate(over="ignore"):
        for _ in range(_TEA_ROUNDS):
            total = np.uint32(total + _TEA_DELTA)
            v0 += ((v1 << np.uint32(4)) + k[0]) ^ (v1 + total) ^ ((v1 >> np.uint32(5)) + k[1])
            v1 += ((v0 << np.uint32(4)) + k[2]) ^ (v0 + total) ^ ((v0 >> np.uint32(5)) + k[3])
    return blocks.astype("<u4").tobytes()


def tea_decrypt_blocks(key: bytes, data: bytes) -> bytes:
    """Inverse of :func:`tea_encrypt_blocks` (zero padding not stripped)."""
    if len(data) % 8:
        raise ValueError("TEA ciphertext must be 8-byte aligned")
    k = _tea_key_words(key)
    blocks = np.frombuffer(bytes(data), dtype="<u4").reshape(-1, 2).copy()
    v0, v1 = blocks[:, 0], blocks[:, 1]
    with np.errstate(over="ignore"):
        total = np.uint32((_TEA_DELTA * np.uint64(_TEA_ROUNDS)) & np.uint64(0xFFFFFFFF))
        for _ in range(_TEA_ROUNDS):
            v1 -= ((v0 << np.uint32(4)) + k[2]) ^ (v0 + total) ^ ((v0 >> np.uint32(5)) + k[3])
            v0 -= ((v1 << np.uint32(4)) + k[0]) ^ (v1 + total) ^ ((v1 >> np.uint32(5)) + k[1])
            total = np.uint32(total - _TEA_DELTA)
    return blocks.astype("<u4").tobytes()


def tea_crypt(key: bytes, data: bytes) -> bytes:
    """Encrypt convenience alias used by family simulators."""
    return tea_encrypt_blocks(key, data)
