"""ChaCha20 (RFC 8439), NumPy-vectorised.

The block function is evaluated for *all* counter values at once: the
16-word state is tiled into a words-major (16 × blocks) uint32 matrix so
each word's lane is contiguous, and the 20 rounds run in place over those
lanes with a single scratch row (no per-round allocation).  This keeps
bulk encryption fast enough for the campaign experiments (hundreds of
megabytes across 492 samples) while remaining a from-scratch
implementation.

RFC 8439 §2.3.2 / §2.4.2 test vectors are enforced in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["chacha20_block", "chacha20_xor", "chacha20_keystream"]

_CONSTANTS = np.frombuffer(b"expand 32-byte k", dtype="<u4").copy()


def _rotl(x: np.ndarray, bits: int, tmp: np.ndarray) -> None:
    """In-place 32-bit rotate-left using a caller-owned scratch buffer."""
    np.right_shift(x, np.uint32(32 - bits), out=tmp)
    np.left_shift(x, np.uint32(bits), out=x)
    np.bitwise_or(x, tmp, out=x)


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int,
                   tmp: np.ndarray) -> None:
    """One quarter round applied to rows a,b,c,d of all blocks.

    The state is laid out words-major — ``state[a]`` is the word-``a``
    lane across every block, contiguous in memory — and every step runs
    in place against the shared scratch row, so the 20 rounds allocate
    nothing.
    """
    sa, sb, sc, sd = state[a], state[b], state[c], state[d]
    sa += sb
    sd ^= sa
    _rotl(sd, 16, tmp)
    sc += sd
    sb ^= sc
    _rotl(sb, 12, tmp)
    sa += sb
    sd ^= sa
    _rotl(sd, 8, tmp)
    sc += sd
    sb ^= sc
    _rotl(sb, 7, tmp)


def chacha20_keystream(key: bytes, nonce: bytes, n_bytes: int,
                       initial_counter: int = 0) -> bytes:
    """Generate ``n_bytes`` of keystream."""
    if len(key) != 32:
        raise ValueError("key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("nonce must be 12 bytes")
    if n_bytes <= 0:
        return b""
    n_blocks = (n_bytes + 63) // 64
    key_words = np.frombuffer(key, dtype="<u4")
    nonce_words = np.frombuffer(nonce, dtype="<u4")
    state = np.zeros((16, n_blocks), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = key_words[:, None]
    state[12] = (np.arange(n_blocks, dtype=np.uint64)
                 + np.uint64(initial_counter)).astype(np.uint32)
    state[13:16] = nonce_words[:, None]
    working = state.copy()
    tmp = np.empty(n_blocks, dtype=np.uint32)
    with np.errstate(over="ignore"):
        for _ in range(10):  # 20 rounds = 10 double rounds
            _quarter_round(working, 0, 4, 8, 12, tmp)
            _quarter_round(working, 1, 5, 9, 13, tmp)
            _quarter_round(working, 2, 6, 10, 14, tmp)
            _quarter_round(working, 3, 7, 11, 15, tmp)
            _quarter_round(working, 0, 5, 10, 15, tmp)
            _quarter_round(working, 1, 6, 11, 12, tmp)
            _quarter_round(working, 2, 7, 8, 13, tmp)
            _quarter_round(working, 3, 4, 9, 14, tmp)
        working += state
    # words-major → per-block word order for serialisation
    return working.T.astype("<u4").tobytes()[:n_bytes]


def chacha20_block(key: bytes, nonce: bytes, counter: int) -> bytes:
    """One 64-byte keystream block (RFC 8439 block function)."""
    return chacha20_keystream(key, nonce, 64, counter)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes,
                 initial_counter: int = 1) -> bytes:
    """Encrypt/decrypt ``data`` (RFC 8439 starts data at counter 1)."""
    stream = np.frombuffer(
        chacha20_keystream(key, nonce, len(data), initial_counter),
        dtype=np.uint8)
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    return (buf ^ stream).tobytes()
