"""Textbook RSA for hybrid key wrapping.

GPcode was the canonical "RSA public key embedded in the binary" family:
it generates a per-victim symmetric key, encrypts user files with it, and
wraps the key with the attacker's RSA public key so only the attacker can
recover it.  Several modern families (CryptoWall, CryptoDefense) follow the
same pattern.  The simulators reproduce the ritual so the key material
dropped in ransom notes is genuine RSA ciphertext.

Includes deterministic Miller–Rabin primality testing and seeded key
generation (no OS entropy — runs must be replayable).  Textbook (unpadded)
RSA is exactly what early GPcode shipped; this module is attack substrate,
not a recommendation.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

__all__ = ["RsaKeyPair", "generate_keypair", "is_probable_prime",
           "rsa_encrypt_int", "rsa_decrypt_int", "wrap_key", "unwrap_key"]

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97)


def is_probable_prime(n: int, rng: Optional[random.Random] = None,
                      rounds: int = 24) -> bool:
    """Miller–Rabin with ``rounds`` random bases (plus small-prime sieve)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0x5D)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


class RsaKeyPair:
    """(n, e) public / (n, d) private pair."""

    __slots__ = ("n", "e", "d", "bits")

    def __init__(self, n: int, e: int, d: int, bits: int) -> None:
        self.n = n
        self.e = e
        self.d = d
        self.bits = bits

    @property
    def public(self) -> Tuple[int, int]:
        return self.n, self.e

    def __repr__(self) -> str:
        return f"RsaKeyPair(bits={self.bits}, n=0x{self.n:x})"


def generate_keypair(bits: int = 512, seed: int = 0xC0DE,
                     e: int = 65537) -> RsaKeyPair:
    """Deterministically generate an RSA keypair from ``seed``."""
    if bits < 64:
        raise ValueError("modulus too small even for a toy")
    rng = random.Random(seed)
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return RsaKeyPair(n, e, d, bits)


def rsa_encrypt_int(message: int, public: Tuple[int, int]) -> int:
    """Textbook RSA encryption of an integer message."""
    n, e = public
    if not 0 <= message < n:
        raise ValueError("message out of range for modulus")
    return pow(message, e, n)


def rsa_decrypt_int(ciphertext: int, keypair: RsaKeyPair) -> int:
    """Textbook RSA decryption with the private exponent."""
    return pow(ciphertext, keypair.d, keypair.n)


def wrap_key(sym_key: bytes, public: Tuple[int, int]) -> bytes:
    """Wrap a symmetric key; output is modulus-sized big-endian bytes."""
    n, _ = public
    size = (n.bit_length() + 7) // 8
    value = int.from_bytes(sym_key, "big")
    return rsa_encrypt_int(value, public).to_bytes(size, "big")


def unwrap_key(wrapped: bytes, keypair: RsaKeyPair, key_len: int) -> bytes:
    """Recover a wrapped symmetric key with the private key."""
    value = rsa_decrypt_int(int.from_bytes(wrapped, "big"), keypair)
    return value.to_bytes(key_len, "big")
