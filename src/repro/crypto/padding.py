"""PKCS#7 padding for block ciphers."""

from __future__ import annotations

__all__ = ["pad", "unpad", "PaddingError"]


class PaddingError(ValueError):
    """The padding bytes are inconsistent (wrong key / corrupt data)."""


def pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in [1, 255]")
    amount = block_size - (len(data) % block_size)
    return bytes(data) + bytes([amount]) * amount


def unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("length is not a multiple of the block size")
    amount = data[-1]
    if not 1 <= amount <= block_size:
        raise PaddingError(f"invalid pad byte {amount}")
    if data[-amount:] != bytes([amount]) * amount:
        raise PaddingError("inconsistent padding bytes")
    return bytes(data[:-amount])
