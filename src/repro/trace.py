"""Operation traces: capture once, re-detect offline.

§V-F notes that conventional dynamic-analysis workflows — "passively
observing benign activity on a system and running the detector on it
later" — do not work for CryptoDrop, because the detector must measure
the documents *before and after each change*.  The corollary: offline
analysis is possible only if the capture preserves full data.  This
module implements exactly that trade:

* :class:`TraceRecorder` is a filter driver that journals every completed
  operation **including write payloads**, giving a replayable record;
* :func:`replay_trace` re-executes a trace against a fresh machine (same
  corpus) with any detector configuration attached — so one captured
  incident can be re-analysed under different thresholds, indicator sets,
  or future detector versions without re-running the malware.

Traces are plain lists of tuples and serialise with ``json`` (payloads
hex-encoded) for archival.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .core.config import CryptoDropConfig
from .core.monitor import CryptoDropMonitor
from .corpus.builder import GeneratedCorpus
from .fs.errors import FsError, ProcessSuspended
from .fs.events import FsOperation, OpKind
from .fs.filters import FilterDriver, PostVerdict
from .fs.paths import WinPath
from .sandbox.machine import VirtualMachine

__all__ = ["TraceRecord", "TraceRecorder", "replay_trace", "trace_to_json",
           "trace_from_json"]


@dataclass(frozen=True)
class TraceRecord:
    """One replayable operation."""

    kind: str
    pid: int
    path: str
    data: Optional[bytes] = None
    offset: int = 0
    size: Optional[int] = None
    dest: Optional[str] = None
    truncate: bool = False
    new_size: Optional[int] = None


class TraceRecorder(FilterDriver):
    """Capture a full-data operation trace from a live machine."""

    name = "trace-recorder"

    #: operation kinds that carry enough context to replay
    _REPLAYABLE = {OpKind.CREATE, OpKind.OPEN, OpKind.READ, OpKind.WRITE,
                   OpKind.CLOSE, OpKind.RENAME, OpKind.DELETE,
                   OpKind.TRUNCATE, OpKind.MKDIR}

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def post_operation(self, op: FsOperation) -> PostVerdict:
        if op.kind not in self._REPLAYABLE:
            return PostVerdict.ALLOW
        self.records.append(TraceRecord(
            kind=op.kind.value,
            pid=op.pid,
            path=str(op.path),
            data=bytes(op.data) if (op.kind is OpKind.WRITE
                                    and op.data is not None) else None,
            offset=op.offset,
            size=op.size if op.kind is OpKind.READ else None,
            dest=str(op.dest_path) if op.dest_path is not None else None,
            truncate=op.truncate,
            new_size=op.new_size))
        return PostVerdict.ALLOW


def replay_trace(records: List[TraceRecord], corpus: GeneratedCorpus,
                 config: Optional[CryptoDropConfig] = None,
                 telemetry=None
                 ) -> Tuple[CryptoDropMonitor, VirtualMachine]:
    """Re-execute a trace on a fresh machine under a fresh detector.

    Process identities are preserved (each distinct pid in the trace gets
    its own replay process), handles are re-opened per OPEN/CREATE record,
    and replay stops early if the detector suspends the offending process
    — returning the monitor so the caller can compare detections across
    configurations.

    ``telemetry`` accepts a :class:`~repro.telemetry.TelemetrySession`
    to stream the replayed detection into — an archived incident then
    yields the same event sequence (modulo timestamps and replay pids) a
    live capture did, feeding the timeline builder or a JSONL sink.
    Omitted, the replay monitor still honours
    ``config.telemetry_enabled``.
    """
    machine = VirtualMachine(corpus)
    machine.snapshot()
    vfs = machine.vfs
    monitor = CryptoDropMonitor(vfs, config, telemetry=telemetry).attach()
    pid_map: Dict[int, int] = {}
    open_handles: Dict[Tuple[int, str], object] = {}

    def replay_pid(original: int) -> int:
        if original not in pid_map:
            proc = vfs.processes.spawn(f"replay-{original}.exe")
            pid_map[original] = proc.pid
        return pid_map[original]

    for record in records:
        pid = replay_pid(record.pid)
        path = WinPath(record.path)
        key = (pid, record.path.lower())
        try:
            if record.kind == "mkdir":
                vfs.mkdir(pid, path, exist_ok=True)
            elif record.kind == "create":
                open_handles[key] = vfs.open(pid, path, "rw", create=True)
            elif record.kind == "open":
                open_handles[key] = vfs.open(pid, path, "rw",
                                             truncate=record.truncate)
            elif record.kind == "read":
                handle = open_handles.get(key)
                if handle is not None:
                    vfs.seek(pid, handle, record.offset)
                    vfs.read(pid, handle, record.size)
            elif record.kind == "write":
                handle = open_handles.get(key)
                if handle is not None and record.data is not None:
                    vfs.seek(pid, handle, record.offset)
                    vfs.write(pid, handle, record.data)
            elif record.kind == "truncate":
                handle = open_handles.get(key)
                if handle is not None and record.new_size is not None:
                    vfs.truncate_handle(pid, handle, record.new_size)
            elif record.kind == "close":
                handle = open_handles.pop(key, None)
                if handle is not None:
                    vfs.close(pid, handle)
            elif record.kind == "rename":
                vfs.rename(pid, path, WinPath(record.dest))
                # live handles follow the node; re-key our map too
                moved = open_handles.pop(key, None)
                if moved is not None:
                    open_handles[(pid, record.dest.lower())] = moved
            elif record.kind == "delete":
                vfs.delete(pid, path)
        except ProcessSuspended:
            break
        except FsError:
            continue
    monitor.detach()
    return monitor, machine


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------

def trace_to_json(records: List[TraceRecord]) -> str:
    """Archive a trace (write payloads hex-encoded)."""
    return json.dumps([
        {
            "kind": r.kind, "pid": r.pid, "path": r.path,
            "data": r.data.hex() if r.data is not None else None,
            "offset": r.offset, "size": r.size, "dest": r.dest,
            "truncate": r.truncate, "new_size": r.new_size,
        }
        for r in records
    ])


def trace_from_json(payload: str) -> List[TraceRecord]:
    """Inverse of :func:`trace_to_json`."""
    out: List[TraceRecord] = []
    for row in json.loads(payload):
        out.append(TraceRecord(
            kind=row["kind"], pid=row["pid"], path=row["path"],
            data=bytes.fromhex(row["data"]) if row["data"] else None,
            offset=row["offset"], size=row["size"], dest=row["dest"],
            truncate=row["truncate"], new_size=row["new_size"]))
    return out
