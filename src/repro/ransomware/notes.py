"""Ransom notes.

"Ransomware often writes ransom payment instructions into new text files
in every directory" (§IV-C1) — these are the "small, low-entropy writes"
the weighted entropy mean must shrug off.  Each family gets a plausible
note (modelled on published samples; no real onion addresses or wallets).
"""

from __future__ import annotations

import random

from ..fs.paths import WinPath

__all__ = ["note_text", "write_note", "NOTE_FILENAMES"]

NOTE_FILENAMES = {
    "teslacrypt": "HELP_TO_DECRYPT_YOUR_FILES.txt",
    "ctb-locker": "Decrypt-All-Files.txt",
    "cryptolocker": "DECRYPT_INSTRUCTION.TXT",
    "cryptowall": "HELP_DECRYPT.TXT",
    "cryptodefense": "HOW_DECRYPT.TXT",
    "cryptofortress": "READ IF YOU WANT YOUR FILES BACK.html",
    "gpcode": "!!!README!!!.txt",
    "xorist": "HOW TO DECRYPT FILES.txt",
    "poshcoder": "UNLOCK_FILES_INSTRUCTIONS.txt",
    "default": "YOUR_FILES_ARE_ENCRYPTED.txt",
}

_TEMPLATE = """ATTENTION! ALL YOUR DOCUMENTS PHOTOS DATABASES ARE ENCRYPTED
=============================================================

Your important files were encrypted on this computer using a strong
{cipher} algorithm with a unique key generated for this machine.

The single copy of the private key which can decrypt your files is kept
on a secret server on the internet. Nobody can recover your files without
our decryption service.

To obtain the decryption key you must pay {amount} {currency}.

1. Install a Tor browser and open our hidden service page
2. Enter your personal identification code: {victim_id}
3. Follow the payment instructions exactly

If payment is not received within {days} days the key will be destroyed
and your files will remain encrypted forever. Any attempt to remove or
damage this software will lead to immediate key destruction.

As a gesture of goodwill you may decrypt {free} files for free on the
payment page to verify the service works.
"""


def note_text(family: str, rng: random.Random, cipher: str = "RSA-2048") -> str:
    """Render a family-flavoured ransom demand (deterministic per rng)."""
    victim_id = "".join(rng.choice("0123456789ABCDEF") for _ in range(16))
    body = _TEMPLATE.format(
        cipher=cipher,
        amount=rng.choice(["0.5", "1.0", "2.0", "3.0"]),
        currency="BTC",
        victim_id=victim_id,
        days=rng.choice([3, 4, 7]),
        free=rng.choice([1, 2, 5]),
    )
    return f"*** {family.upper()} ***\n\n{body}"


def write_note(ctx, directory: WinPath, family: str,
               rng: random.Random, cipher: str = "RSA-2048") -> WinPath:
    """Drop the ransom note into ``directory`` (chunked, like real drops)."""
    filename = NOTE_FILENAMES.get(family, NOTE_FILENAMES["default"])
    path = directory / filename
    ctx.write_file(path, note_text(family, rng, cipher).encode())
    return path
