"""Ransomware behaviour machinery.

The paper's taxonomy (§III) reduces encrypting ransomware to three
transformation classes over the victim's documents:

* **Class A** — in-place overwrite (open → read → write encrypted → close,
  optional rename),
* **Class B** — move the file out of the documents tree, transform it
  there, move it back (possibly renamed),
* **Class C** — write an *independent* ciphertext file, then dispose of
  the original by deletion or move-over.

:class:`RansomwareSample` executes one parameterised
:class:`SampleProfile`; family modules produce profiles that match each
family's published behaviour, and the factory stamps out the full
492-sample cohort of Table I.  Every sample is deterministic given its
seed, tolerant of per-file errors (locked/read-only files are skipped, as
real samples do), and stops only when finished or suspended.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..fs.errors import FsError
from ..fs.paths import WinPath
from .ciphers import CipherEngine
from .notes import write_note
from .traversal import order_targets, scan_tree

__all__ = ["SampleProfile", "RansomwareSample"]


@dataclass
class SampleProfile:
    """Everything that makes one sample behave the way it does."""

    family: str
    variant: int
    behavior_class: str                  # "A" | "B" | "C"
    seed: int
    cipher_kind: str = "chacha"
    wrap_rsa: bool = False
    traversal: str = "ext_priority"
    extensions: Optional[Tuple[str, ...]] = None
    min_size: int = 0
    max_size: Optional[int] = None
    skip_small: int = 0                  # ignore files below this size
    rename_suffix: Optional[str] = ".encrypted"
    scramble_names: bool = False         # Class B/C random destination names
    note_mode: str = "per_dir"           # per_dir | once | none
    note_first: bool = True              # drop the note before encrypting
    read_chunk: int = 0                  # 0 = whole file
    write_chunk: int = 0
    #: Class A only: encrypt just the leading N bytes (GPcode.AK-style
    #: header corruption; 0 = whole file).  Leaves the tail intact, so
    #: similarity digests still partially match and never collapse.
    encrypt_prefix_bytes: int = 0
    class_c_disposal: str = "delete"     # delete | move_over
    delete_fails: bool = False           # the 2008 GPcode quirk
    delete_shadow_copies: bool = False
    work_in_temp: bool = True            # Class B staging / Class C output
    max_files: Optional[int] = None
    inert_reason: Optional[str] = None   # set => the sample does nothing
    #: "exe_stub" wraps ciphertext in a PE image (Virlock's file infection)
    payload_wrapper: Optional[str] = None
    #: byte signature shared by the family (for the signature-AV baseline)
    family_marker: bytes = b""
    polymorphic: bool = False

    def __post_init__(self) -> None:
        if self.behavior_class not in ("A", "B", "C"):
            raise ValueError(f"bad behavior class {self.behavior_class!r}")
        if self.class_c_disposal not in ("delete", "move_over"):
            raise ValueError(f"bad disposal {self.class_c_disposal!r}")
        if self.note_mode not in ("per_dir", "once", "none"):
            raise ValueError(f"bad note mode {self.note_mode!r}")

    @property
    def sample_name(self) -> str:
        return f"{self.family}-{self.variant:03d}"


class RansomwareSample:
    """One runnable malware instance (a *program* for the sandbox VM)."""

    is_malware = True

    def __init__(self, profile: SampleProfile) -> None:
        self.profile = profile
        self.seed = profile.seed
        self.name = profile.sample_name + (
            ".ps1" if profile.family == "poshcoder" else ".exe")
        self.files_attacked: List[WinPath] = []
        self.files_skipped: int = 0
        self.notes_written: int = 0

    # -- static artefacts ----------------------------------------------------

    @property
    def image_bytes(self) -> bytes:
        """The on-disk image a signature AV would scan.

        Non-polymorphic families share a marker blob (signature matchable);
        polymorphic families (Virlock) and scripts (PoshCoder) vary nearly
        every byte between variants.
        """
        p = self.profile
        rng = random.Random(p.seed ^ 0x1A6E)
        if p.family == "poshcoder":
            body = (
                "$key = [Convert]::FromBase64String('"
                + rng.randbytes(24).hex() + "')\n"
                "Get-ChildItem -Recurse $env:USERPROFILE\\Documents | "
                "ForEach-Object { Encrypt-File $_ $key }\n"
                "# powershell locker build " + str(p.variant) + "\n")
            return body.encode()
        header = b"MZ\x90\x00" + bytes(60)
        if p.polymorphic:
            return header + rng.randbytes(2048)
        return (header + p.family_marker
                + rng.randbytes(256)          # per-variant config block
                + p.family_marker[::-1])

    def __repr__(self) -> str:
        p = self.profile
        return (f"RansomwareSample({p.sample_name}, class={p.behavior_class},"
                f" cipher={p.cipher_kind}, traversal={p.traversal})")

    # -- execution ---------------------------------------------------------------

    def run(self, ctx) -> None:
        p = self.profile
        if p.inert_reason is not None:
            self._run_inert(ctx)
            return
        rng = random.Random(p.seed)
        cipher = CipherEngine(p.cipher_kind, p.seed, p.wrap_rsa)
        if p.delete_shadow_copies:
            ctx.shadow.delete_all(ctx.pid)
        entries = scan_tree(ctx, ctx.docs_root, p.extensions)
        entries = [e for e in entries
                   if e[1] >= max(p.min_size, p.skip_small)
                   and (p.max_size is None or e[1] <= p.max_size)]
        targets = order_targets(entries, p.traversal, rng)
        if p.max_files is not None:
            targets = targets[:p.max_files]
        noted_dirs = set()
        if p.note_mode == "once":
            write_note(ctx, ctx.docs_root, p.family, rng)
            self.notes_written += 1
        for path, _size, _depth in targets:
            directory = path.parent
            if (p.note_mode == "per_dir" and p.note_first
                    and directory not in noted_dirs):
                noted_dirs.add(directory)
                try:
                    write_note(ctx, directory, p.family, rng)
                    self.notes_written += 1
                except FsError:
                    pass
            try:
                self._attack(ctx, rng, cipher, path)
                self.files_attacked.append(path)
            except FsError:
                self.files_skipped += 1
                continue
            if (p.note_mode == "per_dir" and not p.note_first
                    and directory not in noted_dirs):
                noted_dirs.add(directory)
                try:
                    write_note(ctx, directory, p.family, rng)
                    self.notes_written += 1
                except FsError:
                    pass
        self._drop_key_blob(ctx, cipher)

    def _run_inert(self, ctx) -> None:
        """Mislabeled / C2-dead / VM-shy samples: no user-data activity."""
        p = self.profile
        scratch = ctx.temp_root / f"{p.sample_name}.tmp"
        try:
            if p.inert_reason in ("locker", "corrupt"):
                ctx.write_file(scratch, b"\x00" * 64)
            elif p.inert_reason == "c2_dead":
                ctx.write_file(scratch, b"retrying C2 beacon...\n" * 4)
            # "vm_aware" samples exit without touching the filesystem
        except FsError:
            pass

    # -- per-file transforms -------------------------------------------------------

    def _attack(self, ctx, rng: random.Random, cipher: CipherEngine,
                path: WinPath) -> None:
        handler = {"A": self._class_a, "B": self._class_b,
                   "C": self._class_c}[self.profile.behavior_class]
        handler(ctx, rng, cipher, path)

    def _read_whole(self, ctx, handle) -> bytes:
        chunk = self.profile.read_chunk
        if chunk <= 0:
            return ctx.read(handle)
        pieces = []
        while True:
            piece = ctx.read(handle, chunk)
            if not piece:
                return b"".join(pieces)
            pieces.append(piece)

    def _write_whole(self, ctx, handle, payload: bytes) -> None:
        chunk = self.profile.write_chunk
        if chunk <= 0:
            ctx.write(handle, payload)
            return
        for start in range(0, len(payload), chunk):
            ctx.write(handle, payload[start:start + chunk])

    def _dest_name(self, rng: random.Random, path: WinPath) -> WinPath:
        p = self.profile
        if p.scramble_names:
            return path.parent / (rng.randbytes(8).hex()
                                  + (p.rename_suffix or ""))
        if p.rename_suffix:
            return path.parent / (path.name + p.rename_suffix)
        return path

    def _transform(self, data: bytes, cipher: CipherEngine,
                   rng: random.Random) -> bytes:
        """Encrypt, then apply any family payload wrapper."""
        enc = cipher.encrypt(data)
        if self.profile.payload_wrapper == "exe_stub":
            # Virlock-style file infection: the victim file rides inside a
            # freshly mutated PE that will re-infect on launch.
            stub = (b"MZ\x90\x00" + bytes(60)
                    + b".text\x00\x00\x00" + rng.randbytes(384))
            return stub + enc
        return enc

    def _class_a(self, ctx, rng: random.Random, cipher: CipherEngine,
                 path: WinPath) -> None:
        """Open, read, write encrypted in place, close, maybe rename."""
        handle = ctx.open(path, "rw")
        try:
            data = self._read_whole(ctx, handle)
            prefix = self.profile.encrypt_prefix_bytes
            if prefix and len(data) > prefix:
                enc = self._transform(data[:prefix], cipher, rng)[:prefix]
            else:
                enc = self._transform(data, cipher, rng)
            ctx.seek(handle, 0)
            self._write_whole(ctx, handle, enc)
            if prefix == 0 and len(enc) < len(data):
                ctx.vfs.truncate_handle(ctx.pid, handle, len(enc))
        finally:
            if not handle.closed:
                ctx.close(handle)
        dest = self._dest_name(rng, path)
        if dest != path:
            ctx.rename(path, dest)

    def _class_b(self, ctx, rng: random.Random, cipher: CipherEngine,
                 path: WinPath) -> None:
        """Move out of the documents tree, transform, move back."""
        staging = (ctx.temp_root if self.profile.work_in_temp
                   else path.parent)
        tmp = staging / (rng.randbytes(8).hex() + ".tmp")
        ctx.rename(path, tmp)
        handle = ctx.open(tmp, "rw")
        try:
            data = self._read_whole(ctx, handle)
            enc = self._transform(data, cipher, rng)
            ctx.seek(handle, 0)
            self._write_whole(ctx, handle, enc)
        finally:
            if not handle.closed:
                ctx.close(handle)
        ctx.rename(tmp, self._dest_name(rng, path))

    def _class_c(self, ctx, rng: random.Random, cipher: CipherEngine,
                 path: WinPath) -> None:
        """Independent output stream, then dispose of the original."""
        p = self.profile
        data = ctx.read_file(path, self.profile.read_chunk or None)
        enc = self._transform(data, cipher, rng)
        out_dir = ctx.temp_root if (p.work_in_temp
                                    and p.class_c_disposal == "move_over") \
            else path.parent
        out = out_dir / (rng.randbytes(8).hex() + (p.rename_suffix or ".enc")) \
            if p.scramble_names else out_dir / (path.name
                                                + (p.rename_suffix or ".enc"))
        ctx.write_file(out, enc, self.profile.write_chunk or None)
        if p.class_c_disposal == "move_over":
            ctx.rename(out, path)
        elif not p.delete_fails:
            ctx.delete(path)
        # delete_fails: the sample *attempts* deletion but its legacy code
        # path fails on modern attribute handling; originals survive.

    def _drop_key_blob(self, ctx, cipher: CipherEngine) -> None:
        """Stash the (wrapped) key blob the way real families do."""
        try:
            ctx.write_file(ctx.temp_root / f"{self.profile.sample_name}.key",
                           cipher.key_blob())
        except FsError:
            pass
