"""Ransomware family simulators (the paper's 492-sample live corpus).

Behavioural stand-ins for the fourteen families of Table I: each performs
its family's published traversal, transformation class (A/B/C), cipher,
and ransom-note ritual against the virtual filesystem.  CryptoDrop never
inspects the "malware" itself, so behaviour-true simulators exercise the
identical detection channel as live samples.
"""

from .base import RansomwareSample, SampleProfile
from .ciphers import ATTACKER_RSA, CipherEngine
from .factory import (TOTAL_HAUL, TOTAL_INERT, TOTAL_WORKING,
                      cohort_by_family, virustotal_haul, working_cohort)
from .families import FAMILY_NAMES, all_profiles, instantiate
from .notes import NOTE_FILENAMES, note_text, write_note
from .traversal import PRODUCTIVITY_FIRST, STRATEGIES, order_targets, scan_tree

__all__ = [
    "ATTACKER_RSA", "CipherEngine", "FAMILY_NAMES", "NOTE_FILENAMES",
    "PRODUCTIVITY_FIRST", "RansomwareSample", "STRATEGIES",
    "SampleProfile", "TOTAL_HAUL", "TOTAL_INERT", "TOTAL_WORKING",
    "all_profiles", "cohort_by_family", "instantiate", "note_text",
    "order_targets", "scan_tree", "virustotal_haul", "working_cohort",
    "write_note",
]
