"""Sample factory — the VirusTotal haul and the working cohort.

The paper pulled 2,663 samples from VirusTotal; after running each for up
to 20 minutes and verifying document hashes, 2,171 proved inert
(mislabeled screen lockers, dead C2, VM-aware, corrupt) and 492 remained
(§V-A).  :func:`working_cohort` builds those 492 directly;
:func:`virustotal_haul` builds the full 2,663 including inert samples so
the culling methodology itself can be reproduced.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .base import RansomwareSample, SampleProfile
from .families import all_profiles, instantiate
from .families.common import sample_seed

__all__ = ["working_cohort", "virustotal_haul", "cohort_by_family",
           "TOTAL_WORKING", "TOTAL_HAUL", "TOTAL_INERT"]

TOTAL_WORKING = 492
TOTAL_HAUL = 2663
TOTAL_INERT = TOTAL_HAUL - TOTAL_WORKING

_INERT_REASONS = ("locker", "c2_dead", "vm_aware", "corrupt")
#: rough shares of the inert population (screen lockers dominate the
#: mislabel bucket; dead infrastructure dominates everything else)
_INERT_WEIGHTS = (0.30, 0.45, 0.15, 0.10)


def working_cohort(base_seed: int = 0) -> List[RansomwareSample]:
    """The 492 working samples, Table I family/class composition."""
    samples = [instantiate(p) for p in all_profiles(base_seed)]
    if len(samples) != TOTAL_WORKING:
        raise AssertionError(
            f"cohort size {len(samples)} != {TOTAL_WORKING}")
    return samples


def cohort_by_family(base_seed: int = 0) -> Dict[str, List[RansomwareSample]]:
    """The working cohort grouped by family name."""
    grouped: Dict[str, List[RansomwareSample]] = {}
    for sample in working_cohort(base_seed):
        grouped.setdefault(sample.profile.family, []).append(sample)
    return grouped


def _inert_samples(base_seed: int) -> List[RansomwareSample]:
    rng = random.Random(base_seed ^ 0x1E47)
    out: List[RansomwareSample] = []
    for idx in range(TOTAL_INERT):
        reason = rng.choices(_INERT_REASONS, weights=_INERT_WEIGHTS, k=1)[0]
        seed = sample_seed("vt-unlabeled", idx, base_seed)
        out.append(RansomwareSample(SampleProfile(
            family="vt-unlabeled", variant=idx, behavior_class="A",
            seed=seed, inert_reason=reason,
            family_marker=b"VT_MISC\x00")))
    return out


def virustotal_haul(base_seed: int = 0,
                    shuffle: bool = True) -> List[RansomwareSample]:
    """All 2,663 downloads, working and inert interleaved (as received)."""
    samples = working_cohort(base_seed) + _inert_samples(base_seed)
    if shuffle:
        random.Random(base_seed ^ 0x7A11).shuffle(samples)
    return samples
