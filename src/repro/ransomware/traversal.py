"""Victim-selection strategies.

§V-C found each family walks the documents tree its own way — TeslaCrypt
depth-first from the deepest directory, CTB-Locker globally by ascending
file size within targeted extensions, GPcode top-down from the root.  Each
strategy here reproduces one observed ordering; per-sample RNG jitters tie
breaks so samples within a family differ slightly, as real builds did.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from ..fs.paths import WinPath

__all__ = ["FileEntry", "scan_tree", "order_targets", "STRATEGIES",
           "PRODUCTIVITY_FIRST"]

#: (path, size, depth) for one candidate victim file
FileEntry = Tuple[WinPath, int, int]

#: the paper's Fig. 5 ordering: productivity formats lead the attack
PRODUCTIVITY_FIRST: Tuple[str, ...] = (
    ".pdf", ".odt", ".docx", ".pptx", ".doc", ".xlsx", ".xls", ".ppt",
    ".rtf", ".txt", ".csv", ".xml", ".md", ".html", ".jpg", ".png",
    ".gif", ".bmp", ".mp3", ".wav", ".m4a", ".flac", ".zip", ".7z",
)


def scan_tree(ctx, root: WinPath,
              extensions: Optional[Sequence[str]] = None) -> List[FileEntry]:
    """Enumerate candidate files (emits the LIST/STAT ops a real walk does)."""
    entries: List[FileEntry] = []
    ext_set = {e.lower() for e in extensions} if extensions else None
    for dirpath, _dirnames, filenames in ctx.walk(root):
        for name in filenames:
            path = dirpath / name
            if ext_set is not None and path.suffix not in ext_set:
                continue
            st = ctx.stat(path)
            entries.append((path, st.size, path.depth))
    return entries


def _dfs_deepest_first(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    """TeslaCrypt: act only once the deepest directory is reached, then
    unwind — deepest directories first, files grouped per directory."""
    by_dir: dict = {}
    for entry in entries:
        by_dir.setdefault(entry[0].parent, []).append(entry)
    dirs = sorted(by_dir, key=lambda d: (-d.depth, str(d).lower()))
    ordered: List[FileEntry] = []
    for d in dirs:
        bucket = by_dir[d]
        rng.shuffle(bucket)
        ordered.extend(bucket)
    return ordered


def _top_down(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    """GPcode: start at the root of the documents tree and move down."""
    by_dir: dict = {}
    for entry in entries:
        by_dir.setdefault(entry[0].parent, []).append(entry)
    dirs = sorted(by_dir, key=lambda d: (d.depth, str(d).lower()))
    ordered: List[FileEntry] = []
    for d in dirs:
        bucket = sorted(by_dir[d], key=lambda e: str(e[0]).lower())
        ordered.extend(bucket)
    return ordered


def _size_ascending(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    """CTB-Locker: globally smallest files first, directory-oblivious."""
    return sorted(entries, key=lambda e: (e[1], str(e[0]).lower()))


def _size_descending(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    return sorted(entries, key=lambda e: (-e[1], str(e[0]).lower()))


def _dfs(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    """Plain lexicographic depth-first walk order."""
    return sorted(entries, key=lambda e: str(e[0]).lower())


def _shuffled(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    out = list(entries)
    rng.shuffle(out)
    return out


def _ext_priority(entries: List[FileEntry], rng: random.Random) -> List[FileEntry]:
    """Productivity formats first (the aggregate behaviour behind Fig. 5)."""
    rank = {ext: i for i, ext in enumerate(PRODUCTIVITY_FIRST)}
    jitter = {e[0]: rng.random() for e in entries}
    return sorted(entries, key=lambda e: (rank.get(e[0].suffix, 99),
                                          jitter[e[0]]))


STRATEGIES = {
    "dfs_deepest_first": _dfs_deepest_first,
    "top_down": _top_down,
    "size_ascending": _size_ascending,
    "size_descending": _size_descending,
    "dfs": _dfs,
    "shuffled": _shuffled,
    "ext_priority": _ext_priority,
}


def order_targets(entries: Iterable[FileEntry], strategy: str,
                  rng: random.Random) -> List[FileEntry]:
    """Order candidate victims with the named family strategy."""
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown traversal strategy {strategy!r}") from None
    return fn(list(entries), rng)
