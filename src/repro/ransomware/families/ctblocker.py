"""CTB-Locker — 122 samples (24.80%), the paper's hardest family.

Paper observations reproduced here:

* almost entirely **Class B** (120 samples; one A, one C),
* "attacks files with certain extensions (.txt and .md) in **ascending
  order by file size**", hopping directories freely (Fig. 4b),
* because the smallest victims are under 512 bytes, **sdhash cannot score
  them**, union indication is delayed, and the family posts the highest
  median files lost (29) — 26 of the lost files were < 512 B (§V-C),
* moves victims through a staging location and back under a different
  name ("the destination file name may not match the original during any
  move"), historically with the ``.ctbl`` extension.

CTB-Locker's real cipher was unusual too (ECDH + AES); the bulk stream
here is the ChaCha20 engine — indistinguishable to the indicators.
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import TEXT_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "ctb-locker"
MARKER = b"CTB\x01LOCKER\x7f\xe2curve25519"
CLASS_COUNTS = {"A": 1, "B": 120, "C": 1}


def _base(variant: int, behavior: str, seed: int,
          rng: random.Random) -> SampleProfile:
    return SampleProfile(
        family=FAMILY, variant=variant, behavior_class=behavior, seed=seed,
        cipher_kind="chacha", traversal="size_ascending",
        extensions=TEXT_EXTS,
        rename_suffix=".ctbl", scramble_names=True,
        note_mode="once", note_first=True,
        write_chunk=rng.choice([0, 4096]),
        work_in_temp=True,
        family_marker=MARKER,
    )


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    variant = 0
    for behavior, count in (("A", CLASS_COUNTS["A"]),
                            ("B", CLASS_COUNTS["B"]),
                            ("C", CLASS_COUNTS["C"])):
        for _ in range(count):
            seed = sample_seed(FAMILY, variant, base_seed)
            rng = random.Random(seed)
            profile = _base(variant, behavior, seed, rng)
            if behavior == "C":
                # the family's lone off-class build ranged wider than the
                # kit's txt/md list and dropped .encrypted siblings
                profile.class_c_disposal = "delete"
                profile.scramble_names = False
                profile.extensions = None
                profile.traversal = "ext_priority"
                profile.write_chunk = 4096
                profile.read_chunk = 4096
            out.append(profile)
            variant += 1
    return out
