"""CryptoLocker — the family that made crypto-ransomware famous.

31 working samples in the cohort: 13 Class A, 16 Class B, 2 Class C
(Table I; family median 10).  Behaviour modelled on the 2013-2014 builds:
a curated extension list of documents, plain depth-first traversal,
originals kept under their own names (no marker extension), per-directory
DECRYPT_INSTRUCTION notes dropped *after* the directory is processed.
Class B builds stage victims through %TEMP%; the Class C stragglers write
side-by-side ciphertext and delete the original.
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import OFFICE_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "cryptolocker"
MARKER = b"CRYPTOLOCKER\x002048\x00\x13\x37"
CLASS_COUNTS = {"A": 13, "B": 16, "C": 2}


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    variant = 0
    for behavior, count in (("A", 13), ("B", 16), ("C", 2)):
        for _ in range(count):
            seed = sample_seed(FAMILY, variant, base_seed)
            rng = random.Random(seed)
            out.append(SampleProfile(
                family=FAMILY, variant=variant, behavior_class=behavior,
                seed=seed,
                cipher_kind="aes", wrap_rsa=True,
                traversal=rng.choice(["dfs", "ext_priority"]),
                extensions=OFFICE_EXTS,
                rename_suffix=None,          # keeps original names
                scramble_names=behavior == "B",
                note_mode="per_dir", note_first=False,
                read_chunk=0,
                write_chunk=rng.choice([16384, 65536]),
                class_c_disposal="move_over",
                work_in_temp=behavior == "B",
                family_marker=MARKER,
            ))
            variant += 1
    return out
