"""CryptoWall — CryptoDefense's successor (8 samples: 2 A, 6 C).

Modelled behaviour: deletes volume shadow copies first (like its McAfee
writeups), prefers productivity formats, and the Class C majority stages
ciphertext in %TEMP% then **moves it over the original** — the linkable
Class C variant that still reaches union indication (§V-B2).  Family
median files lost: 10.
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import BROAD_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "cryptowall"
MARKER = b"CRYPTOWALL3\x00I2P\x00\xc4\x11"
CLASS_COUNTS = {"A": 2, "C": 6}


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    variant = 0
    for behavior, count in (("A", 2), ("C", 6)):
        for _ in range(count):
            seed = sample_seed(FAMILY, variant, base_seed)
            rng = random.Random(seed)
            out.append(SampleProfile(
                family=FAMILY, variant=variant, behavior_class=behavior,
                seed=seed,
                cipher_kind="aes", wrap_rsa=True,
                traversal="ext_priority",
                extensions=BROAD_EXTS,
                rename_suffix=None,
                note_mode="per_dir", note_first=False,
                write_chunk=rng.choice([16384, 32768]),
                class_c_disposal="move_over",
                work_in_temp=False,  # .encrypted sibling, then move-over
                delete_shadow_copies=True,
                family_marker=MARKER,
            ))
            variant += 1
    return out
