"""TeslaCrypt — the campaign's largest family (149 samples, 30.28%).

Paper observations reproduced here:

* overwhelmingly **Class A** (148 samples; one Class C outlier),
* **depth-first traversal that only starts encrypting once the deepest
  directory is reached** (Fig. 4a),
* writes the ransom demand into a directory *before* encrypting there —
  "the sample did not begin encrypting files in the first directory it
  accessed, instead writing the decryption instructions/ransom demand
  into that directory" (§V-C),
* **disables and removes the Windows volume shadow copies** before the
  attack (§III, citing McAfee's TeslaCrypt analysis),
* historical builds renamed victims with .ecc/.ezz/.exx/.vvv extensions
  and used AES for bulk encryption.
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import BROAD_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "teslacrypt"
MARKER = b"TESLACRYPT_CORE_v2\x00\x88\x41"
CLASS_COUNTS = {"A": 148, "C": 1}

_SUFFIXES = (".ecc", ".ezz", ".exx", ".vvv", ".ccc")


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    for variant in range(CLASS_COUNTS["A"]):
        seed = sample_seed(FAMILY, variant, base_seed)
        rng = random.Random(seed)
        out.append(SampleProfile(
            family=FAMILY, variant=variant, behavior_class="A", seed=seed,
            cipher_kind="aes", traversal="dfs_deepest_first",
            extensions=BROAD_EXTS,
            rename_suffix=rng.choice(_SUFFIXES),
            note_mode="per_dir", note_first=True,
            read_chunk=rng.choice([0, 65536]),
            write_chunk=rng.choice([16384, 32768, 65536]),
            delete_shadow_copies=True,
            family_marker=MARKER,
        ))
    # the lone Class C build: stages ciphertext then moves it over the
    # original, which links old and new content (§V-B2's 41-of-63 path)
    seed = sample_seed(FAMILY, 900, base_seed)
    out.append(SampleProfile(
        family=FAMILY, variant=900, behavior_class="C", seed=seed,
        cipher_kind="aes", traversal="dfs_deepest_first",
        extensions=BROAD_EXTS, rename_suffix=".vvv",
        class_c_disposal="move_over", work_in_temp=False,
        note_mode="per_dir", note_first=True,
        write_chunk=32768, delete_shadow_copies=True,
        family_marker=MARKER,
    ))
    return out
