"""Virlock — 20 samples, all Class C (Table I; family median 8).

Virlock is simultaneously ransomware and a **polymorphic file infector**:
every victim file is swallowed into a freshly mutated PE that re-infects
when launched.  Reproduced quirks:

* **Class C with move-over disposal** — the infected PE is built as an
  independent file and then moved over the original, so CryptoDrop links
  old and new content and reaches union indication (§V-B2's 41-of-63
  linkable subset),
* ``payload_wrapper="exe_stub"`` — outputs are executables, so the type
  transition is "document → PE32 executable" rather than "→ data",
* ``polymorphic=True`` — no stable byte signature exists across variants
  (the signature-AV baseline whiffs on this family),
* the real malware runs as a self-replicating swarm; samples spawn child
  processes, exercising CryptoDrop's process-*family* scoring.
"""

from __future__ import annotations

import random
from typing import List

from ..base import RansomwareSample, SampleProfile
from .common import BROAD_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles", "VirlockSample"]

FAMILY = "virlock"
MARKER = b""  # polymorphic: nothing stable to sign
CLASS_COUNTS = {"C": 20}


class VirlockSample(RansomwareSample):
    """Runs the attack from a spawned child, as the swarm does."""

    def run(self, ctx) -> None:
        child = ctx.spawn_child(self.name.replace(".exe", "-drone.exe"))
        super().run(child)


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    for variant in range(CLASS_COUNTS["C"]):
        seed = sample_seed(FAMILY, variant, base_seed)
        rng = random.Random(seed)
        out.append(SampleProfile(
            family=FAMILY, variant=variant, behavior_class="C", seed=seed,
            cipher_kind="chacha",
            traversal=rng.choice(["dfs", "shuffled"]),
            extensions=BROAD_EXTS,
            rename_suffix=".exe",
            note_mode="once", note_first=True,
            write_chunk=rng.choice([32768, 65536]),
            class_c_disposal="move_over",
            work_in_temp=False,  # infected PE is built beside the victim
            payload_wrapper="exe_stub",
            polymorphic=True,
        ))
    return out
