"""GPcode — the oldest family in the cohort (13 samples, first seen 2008).

Paper observations reproduced here:

* 12 Class A samples plus one notorious Class C,
* "accesses files **starting at the root directory and moving down the
  tree**" (Fig. 4c),
* the Class C sample "did not modify or delete any of our test files
  before being detected": it wrote independent ciphertext files and
  *attempted* to delete originals, but "some of our test files were
  marked read-only on the filesystem, which this sample was uniquely
  unable to work around" — its legacy deletion path fails outright
  (``delete_fails``), so CryptoDrop catches it on the entropy delta with
  **zero files lost**,
* GPcode is the canonical embedded-RSA-public-key family: a per-victim
  session key is wrapped with the attacker's key (``wrap_rsa``).

The Class A builds favour large, information-rich files, which makes them
comparatively slow to convict (family median 22): their early reads are
high-entropy, so the write/read delta — and with it union indication —
emerges late (§V-B1's "samples which attack high entropy files first
experience a delay").
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import OFFICE_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "gpcode"
MARKER = b"GPCODE.AK\x00RSA1024\x00\xde\xad"
CLASS_COUNTS = {"A": 12, "C": 1}


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    for variant in range(CLASS_COUNTS["A"]):
        seed = sample_seed(FAMILY, variant, base_seed)
        rng = random.Random(seed)
        out.append(SampleProfile(
            family=FAMILY, variant=variant, behavior_class="A", seed=seed,
            cipher_kind="rc4", wrap_rsa=True,
            traversal="top_down",
            extensions=OFFICE_EXTS,
            skip_small=rng.choice([6144, 8192]),
            rename_suffix="._CRYPT",
            note_mode="per_dir", note_first=False,
            read_chunk=0, write_chunk=0,  # single whole-file write
            # GPcode.AK corrupts headers rather than whole files: the tail
            # survives, so similarity digests never fully collapse and the
            # family stays slow to convict (median 22 in Table I)
            encrypt_prefix_bytes=rng.choice([2048, 3072]),
            family_marker=MARKER,
        ))
    seed = sample_seed(FAMILY, 900, base_seed)
    out.append(SampleProfile(
        family=FAMILY, variant=900, behavior_class="C", seed=seed,
        cipher_kind="rc4", wrap_rsa=True,
        traversal="top_down", extensions=OFFICE_EXTS,
        rename_suffix="._CRYPT", class_c_disposal="delete",
        delete_fails=True, work_in_temp=False,
        note_mode="per_dir", note_first=False,
        family_marker=MARKER,
    ))
    return out
