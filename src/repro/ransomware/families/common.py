"""Shared vocabulary for family profile builders."""

from __future__ import annotations

import hashlib
from typing import Tuple

__all__ = ["sample_seed", "OFFICE_EXTS", "BROAD_EXTS", "MEDIA_EXTS",
           "TEXT_EXTS"]

#: classic document targets (CryptoLocker-era lists)
OFFICE_EXTS: Tuple[str, ...] = (
    ".doc", ".docx", ".xls", ".xlsx", ".ppt", ".pptx", ".pdf", ".rtf",
    ".odt", ".ods", ".txt", ".csv", ".xml",
)

#: everything a modern family sweeps (TeslaCrypt/CryptoWall-era lists)
BROAD_EXTS: Tuple[str, ...] = OFFICE_EXTS + (
    ".md", ".html", ".jpg", ".png", ".gif", ".bmp", ".mp3", ".wav",
    ".m4a", ".flac", ".sqlite",
)

MEDIA_EXTS: Tuple[str, ...] = (".jpg", ".png", ".gif", ".bmp", ".mp3",
                               ".wav", ".m4a", ".flac")

TEXT_EXTS: Tuple[str, ...] = (".txt", ".md")


def sample_seed(family: str, variant: int, base_seed: int) -> int:
    """Stable per-sample seed: every run of the cohort is identical."""
    digest = hashlib.sha256(
        f"{family}:{variant}:{base_seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")
