"""CryptoDefense — 18 samples, all Class C (Table I; family median 6.5).

The archetype of the union-evading Class C population (§V-B2): ciphertext
goes into an independent ``HOW_DECRYPT``-branded sibling file and the
original is *deleted*, never overwritten — so no baseline linking, no
similarity or type-change measurements, no union indication.  Detection
rides entirely on "the large number of high-entropy writes and deletes":
these builds write in small chunks, so the non-union threshold fills
quickly (the paper's evading-subset median was 6 files).
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import OFFICE_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "cryptodefense"
MARKER = b"CRYPTODEFENSE\x00how_decrypt\x00"
CLASS_COUNTS = {"C": 18}


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    for variant in range(CLASS_COUNTS["C"]):
        seed = sample_seed(FAMILY, variant, base_seed)
        rng = random.Random(seed)
        out.append(SampleProfile(
            family=FAMILY, variant=variant, behavior_class="C", seed=seed,
            cipher_kind="rc4",
            traversal="ext_priority",
            extensions=OFFICE_EXTS,
            rename_suffix=".encrypted",
            note_mode="per_dir", note_first=True,
            read_chunk=rng.choice([2048, 4096]),
            write_chunk=1536,
            class_c_disposal="delete",
            work_in_temp=False,             # ciphertext lands beside victims
            family_marker=MARKER,
        ))
    return out
