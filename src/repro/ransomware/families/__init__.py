"""The fourteen ransomware families of Table I (plus Ransom-FUE).

Each module documents the behaviour the paper observed for its family and
builds deterministic :class:`~repro.ransomware.base.SampleProfile` lists
matching Table I's per-class sample counts.
"""

from typing import Dict, List

from ..base import RansomwareSample, SampleProfile
from . import (cryptodefense, cryptolocker, cryptowall, ctblocker,
               filecoder, gpcode, minor, teslacrypt, virlock, xorist)
from .virlock import VirlockSample

__all__ = ["ALL_FAMILY_MODULES", "all_profiles", "instantiate",
           "FAMILY_NAMES"]

ALL_FAMILY_MODULES = (teslacrypt, ctblocker, cryptolocker, cryptowall,
                      cryptodefense, filecoder, gpcode, virlock, xorist,
                      minor)

#: every family name in the cohort, in Table I order
FAMILY_NAMES = (
    "cryptodefense", "cryptofortress", "cryptolocker",
    "cryptolocker-copycat", "cryptotorlocker2015", "cryptowall",
    "ctb-locker", "filecoder", "gpcode", "mbladvisory", "poshcoder",
    "ransom-fue", "teslacrypt", "virlock", "xorist",
)


def all_profiles(base_seed: int = 0) -> List[SampleProfile]:
    """All 492 working-sample profiles, Table I composition."""
    profiles: List[SampleProfile] = []
    for module in ALL_FAMILY_MODULES:
        profiles.extend(module.profiles(base_seed))
    return profiles


def instantiate(profile: SampleProfile) -> RansomwareSample:
    """Build the runnable sample for a profile (family-specific classes)."""
    if profile.family == "virlock":
        return VirlockSample(profile)
    return RansomwareSample(profile)


def profiles_by_family(base_seed: int = 0) -> Dict[str, List[SampleProfile]]:
    grouped: Dict[str, List[SampleProfile]] = {}
    for profile in all_profiles(base_seed):
        grouped.setdefault(profile.family, []).append(profile)
    return grouped
