"""Filecoder — 72 samples (51 A, 9 B, 12 C; family median 10).

"Filecoder" is less a family than a generic AV detection bucket — the
paper notes it (with CryptoLocker) showed "the greatest diversity" and
that the name is "often used as generic ransomware detection names"
(§V-A).  Accordingly these profiles are deliberately heterogeneous:
ciphers, traversals, chunk sizes, rename habits, and disposal methods all
vary per sample, seeded deterministically.
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import BROAD_EXTS, OFFICE_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "filecoder"
MARKER = b"FILECODER_GENERIC\x00\x99"
CLASS_COUNTS = {"A": 51, "B": 9, "C": 12}

_SUFFIXES = (".crypt", ".locked", ".enc", ".crypted", None)


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    variant = 0
    for behavior, count in (("A", 51), ("B", 9), ("C", 12)):
        for _ in range(count):
            seed = sample_seed(FAMILY, variant, base_seed)
            rng = random.Random(seed)
            out.append(SampleProfile(
                family=FAMILY, variant=variant, behavior_class=behavior,
                seed=seed,
                cipher_kind=rng.choice(["chacha", "rc4", "aes", "xor"]),
                traversal=rng.choice(["dfs", "ext_priority", "shuffled",
                                      "top_down"]),
                extensions=rng.choice([BROAD_EXTS, OFFICE_EXTS]),
                rename_suffix=rng.choice(_SUFFIXES),
                scramble_names=rng.random() < 0.3,
                note_mode=rng.choice(["per_dir", "once"]),
                note_first=rng.random() < 0.5,
                read_chunk=rng.choice([0, 8192, 65536]),
                write_chunk=rng.choice([0, 8192, 16384, 65536]),
                class_c_disposal=("move_over" if rng.random() < 0.8
                                  else "delete"),
                work_in_temp=rng.random() < 0.6,
                family_marker=MARKER,
            ))
            variant += 1
    return out
