"""The cohort's single- and double-sample families (Table I).

* **CryptoFortress** (2 × A, median 14) — a TorrentLocker mimic; plain
  depth-first sweep, whole-file writes, ``READ IF YOU WANT YOUR FILES
  BACK`` note once.
* **CryptoLocker copycat** (1 × B, 1 × C, median 20) — a crude clone;
  shuffled traversal, single whole-file operations, office documents only.
* **CryptoTorLocker2015** (1 × A, median 3) — extremely aggressive: 1 KiB
  chunk I/O hammers the entropy indicator, broad extension list, notes
  everywhere.
* **MBL Advisory** (1 × C, median 9) — stages ciphertext in %TEMP% and
  moves it over the original (linkable Class C).
* **PoshCoder** (1 × A, median 10) — implemented in PowerShell (§V-E);
  its on-disk image is script text, trivially morphed, which the
  signature-AV baseline experiment exploits.
* **Ransom-FUE** (1 × B, median 19) — the sample AV vendors could not
  even agree a family for; excluded from family counts in the paper but
  present in the 492.
"""

from __future__ import annotations

from typing import List

from ..base import SampleProfile
from .common import BROAD_EXTS, OFFICE_EXTS, sample_seed

__all__ = ["MINOR_FAMILIES", "profiles"]


def _fortress(base_seed: int) -> List[SampleProfile]:
    out = []
    for variant in range(2):
        seed = sample_seed("cryptofortress", variant, base_seed)
        out.append(SampleProfile(
            family="cryptofortress", variant=variant, behavior_class="A",
            seed=seed, cipher_kind="aes", traversal="dfs",
            extensions=BROAD_EXTS, rename_suffix=".frtrss",
            note_mode="once", read_chunk=0, write_chunk=0,
            family_marker=b"CRYPTOFORTRESS\x00\x31"))
    return out


def _copycat(base_seed: int) -> List[SampleProfile]:
    out = []
    for variant, behavior in ((0, "B"), (1, "C")):
        seed = sample_seed("cryptolocker-copycat", variant, base_seed)
        out.append(SampleProfile(
            family="cryptolocker-copycat", variant=variant,
            behavior_class=behavior, seed=seed,
            cipher_kind="xor" if behavior == "B" else "chacha",
            traversal="shuffled",
            extensions=OFFICE_EXTS, rename_suffix=None,
            scramble_names=True, note_mode="once", note_first=False,
            read_chunk=0 if behavior == "B" else 4096,
            write_chunk=0 if behavior == "B" else 4096,
            class_c_disposal="delete", work_in_temp=True,
            family_marker=b"CL_COPYCAT\x00\x01"))
    return out


def _torlocker(base_seed: int) -> List[SampleProfile]:
    seed = sample_seed("cryptotorlocker2015", 0, base_seed)
    return [SampleProfile(
        family="cryptotorlocker2015", variant=0, behavior_class="A",
        seed=seed, cipher_kind="chacha", traversal="ext_priority",
        extensions=BROAD_EXTS, rename_suffix=".CryptoTorLocker2015!",
        note_mode="per_dir", note_first=True,
        read_chunk=1024, write_chunk=1024,
        family_marker=b"TORLOCKER2015\x00\x05")]


def _mbl(base_seed: int) -> List[SampleProfile]:
    seed = sample_seed("mbladvisory", 0, base_seed)
    return [SampleProfile(
        family="mbladvisory", variant=0, behavior_class="C", seed=seed,
        cipher_kind="rc4", traversal="ext_priority",
        extensions=OFFICE_EXTS, rename_suffix=None, scramble_names=True,
        note_mode="once", class_c_disposal="move_over", work_in_temp=False,
        write_chunk=8192,
        family_marker=b"MBL_ADVISORY\x00\x77")]


def _poshcoder(base_seed: int) -> List[SampleProfile]:
    seed = sample_seed("poshcoder", 0, base_seed)
    return [SampleProfile(
        family="poshcoder", variant=0, behavior_class="A", seed=seed,
        cipher_kind="aes", traversal="ext_priority",
        extensions=OFFICE_EXTS, rename_suffix=".poshcoder",
        note_mode="per_dir", note_first=False,
        read_chunk=0, write_chunk=32768,
        family_marker=b"")]  # a script: no stable binary signature


def _ransomfue(base_seed: int) -> List[SampleProfile]:
    seed = sample_seed("ransom-fue", 0, base_seed)
    return [SampleProfile(
        family="ransom-fue", variant=0, behavior_class="B", seed=seed,
        cipher_kind="rc4", traversal="shuffled",
        extensions=(".docx", ".xlsx", ".pptx", ".odt"), rename_suffix=".fue", scramble_names=False,
        note_mode="once", read_chunk=0, write_chunk=0, work_in_temp=True,
        family_marker=b"RANSOM_FUE\x00\xfe")]


MINOR_FAMILIES = {
    "cryptofortress": _fortress,
    "cryptolocker-copycat": _copycat,
    "cryptotorlocker2015": _torlocker,
    "mbladvisory": _mbl,
    "poshcoder": _poshcoder,
    "ransom-fue": _ransomfue,
}


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    for builder in MINOR_FAMILIES.values():
        out.extend(builder(base_seed))
    return out
