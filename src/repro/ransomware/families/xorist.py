"""Xorist — 51 samples, all Class A (Table I; family median 3).

A builder-kit family whose kits let operators pick **XOR or TEA** as the
cipher — deliberately weak crypto that nonetheless destroys the data.
Builds are extremely aggressive: tiny write chunks hammer the entropy
indicator many times per file, the ``.EnCiPhErEd`` rename and in-place
overwrite trip type-change and similarity immediately, and notes go into
every directory — which is why the family posts the fastest convictions
in Table I (median 3 files lost).
"""

from __future__ import annotations

import random
from typing import List

from ..base import SampleProfile
from .common import BROAD_EXTS, sample_seed

__all__ = ["FAMILY", "MARKER", "CLASS_COUNTS", "profiles"]

FAMILY = "xorist"
MARKER = b"XORIST_BUILDER\x00TEA\x00\x42"
CLASS_COUNTS = {"A": 51}


def profiles(base_seed: int = 0) -> List[SampleProfile]:
    out: List[SampleProfile] = []
    for variant in range(CLASS_COUNTS["A"]):
        seed = sample_seed(FAMILY, variant, base_seed)
        rng = random.Random(seed)
        out.append(SampleProfile(
            family=FAMILY, variant=variant, behavior_class="A", seed=seed,
            cipher_kind=rng.choice(["xor", "tea"]),
            traversal="ext_priority",
            extensions=BROAD_EXTS,
            rename_suffix=".EnCiPhErEd",
            note_mode="per_dir", note_first=True,
            read_chunk=1024,
            write_chunk=1024,
            family_marker=MARKER,
        ))
    return out
