"""Per-sample encryption engines.

Each sample owns a :class:`CipherEngine` with deterministic key material
derived from its seed.  Engines map family lore onto the from-scratch
primitives in :mod:`repro.crypto`:

* ``aes`` — AES-CTR.  Exact for small payloads; beyond a size cutoff the
  keystream is produced by ChaCha20 instead (pure-Python AES would
  dominate campaign runtime).  Both produce uniformly distributed
  ciphertext, which is all the indicators ever see; DESIGN.md records the
  substitution.
* ``chacha`` — ChaCha20 (NumPy-fast, default bulk engine).
* ``rc4`` — RC4, capped likewise.
* ``tea`` — TEA in ECB over 8-byte blocks (Xorist's cipher): repeated
  plaintext blocks repeat in ciphertext, so text encrypts to visibly
  lower entropy than a real stream cipher.
* ``xor`` — repeating-key XOR (Xorist's other mode, and several
  script-kiddie families).

Engines may wrap their session key with the family's embedded RSA public
key (GPcode/CryptoWall ritual); the wrapped key is what lands in notes.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..crypto import (aes_ctr_xor, chacha20_xor, generate_keypair, rc4_crypt,
                      tea_encrypt_blocks, wrap_key, xor_crypt)

__all__ = ["CipherEngine", "ATTACKER_RSA"]

#: the attacker's embedded public key (fixed across the campaign, like a
#: family's hardcoded key block)
ATTACKER_RSA = generate_keypair(bits=512, seed=0xBADC0DE)

#: above this, "aes"/"rc4" engines switch to the vectorised keystream
_PURE_PYTHON_CUTOFF = 16 * 1024


class CipherEngine:
    """Deterministic per-sample encryption."""

    KINDS = ("aes", "chacha", "rc4", "tea", "xor")

    def __init__(self, kind: str, seed: int, wrap_with_rsa: bool = False) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown cipher kind {kind!r}")
        self.kind = kind
        rng = random.Random(seed ^ 0x5EC3E7)
        self.key32 = rng.randbytes(32)
        self.key16 = self.key32[:16]
        self.nonce = rng.randbytes(12)
        self.xor_key = rng.randbytes(rng.choice([8, 16, 32]))
        self.wrapped_key: Optional[bytes] = None
        if wrap_with_rsa:
            self.wrapped_key = wrap_key(self.key32[:48 // 2],
                                        ATTACKER_RSA.public)
        self._counter = 0

    def encrypt(self, data: bytes) -> bytes:
        """Encrypt one file's bytes (per-file keystream offset)."""
        self._counter += 1
        if self.kind == "xor":
            return xor_crypt(self.xor_key, data)
        if self.kind == "tea":
            return tea_encrypt_blocks(self.key16, data)
        if self.kind == "rc4" and len(data) <= _PURE_PYTHON_CUTOFF:
            return rc4_crypt(self.key16 + self._counter.to_bytes(4, "big"),
                             data)
        if self.kind == "aes" and len(data) <= _PURE_PYTHON_CUTOFF:
            nonce = (int.from_bytes(self.nonce, "big") ^ self._counter)
            return aes_ctr_xor(self.key16, nonce.to_bytes(12, "big"), data)
        # bulk path: vectorised stream cipher, per-file counter block
        return chacha20_xor(self.key32, self.nonce, data,
                            initial_counter=self._counter << 16)

    def key_blob(self) -> bytes:
        """What the malware would exfiltrate / embed in its note."""
        if self.wrapped_key is not None:
            return self.wrapped_key
        return self.key32

    def describe(self) -> Tuple[str, int]:
        return self.kind, len(self.key32) * 8
