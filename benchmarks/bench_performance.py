"""§V-H — per-operation overhead of the analysis engine.

Shape target is the paper's cost ordering — open/read cheapest, then
close (full-file inspection), then write, then rename (move tracking +
linking) — plus real host-side microbenchmarks of the hot paths
(windowed entropy, sdhash digesting, engine post-op handling).
"""

import random

import pytest

from repro.entropy import shannon_entropy, windowed_entropy
from repro.experiments import PAPER_PERF_MS, run_performance
from repro.simhash import compare, sdhash


@pytest.fixture(scope="module")
def perf():
    return run_performance(n_files=60, corpus_files=400, repeats=3)


def test_bench_operation_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_performance(n_files=60, corpus_files=400, repeats=3),
        rounds=1, iterations=1)
    print()
    print(result.render())


class TestPerfShape:
    def test_paper_cost_ordering(self, perf):
        m = perf.modelled_ms
        assert m["open"] < m["close"] < m["write"] < m["rename"]

    def test_modelled_magnitudes_near_paper(self, perf):
        # within 2x of the paper's milliseconds, per op class
        for op in ("close", "write", "rename"):
            assert 0.5 * PAPER_PERF_MS[op] <= perf.modelled_ms[op] \
                <= 2.0 * PAPER_PERF_MS[op], op

    def test_open_read_sub_millisecond(self, perf):
        assert perf.modelled_ms["open"] < 1.0
        assert perf.modelled_ms.get("read", 0.0) < 1.0

    def test_host_overhead_measured(self, perf):
        # the engine does real work on writes/closes; the probe must see it
        assert perf.measured_overhead_us["write"] >= 0.0
        assert any(v > 0 for v in perf.measured_overhead_us.values())


# ---------------------------------------------------------------------------
# real microbenchmarks of the engine's hot paths
# ---------------------------------------------------------------------------

_PAYLOAD_32K = random.Random(0).randbytes(32768)


def test_bench_shannon_entropy_32k(benchmark):
    result = benchmark(shannon_entropy, _PAYLOAD_32K)
    assert result > 7.9


def test_bench_windowed_entropy_32k(benchmark):
    values = benchmark(windowed_entropy, _PAYLOAD_32K)
    assert values.size > 0


def test_bench_sdhash_digest_32k(benchmark):
    digest = benchmark(sdhash, _PAYLOAD_32K)
    assert digest is not None


def test_bench_sdhash_compare(benchmark):
    a = sdhash(_PAYLOAD_32K)
    b = sdhash(random.Random(1).randbytes(32768))
    score = benchmark(compare, a, b)
    assert score <= 5


def test_bench_chacha20_bulk_1mb(benchmark):
    from repro.crypto import chacha20_xor
    data = random.Random(2).randbytes(1 << 20)
    out = benchmark(chacha20_xor, bytes(32), bytes(12), data)
    assert len(out) == len(data)
