"""Corpus-composition sensitivity (extension experiment).

Same family subset, four victim profiles.  Shape target: detection stays
at 100% with single-digit-to-low-teens medians across every composition —
the robustness §V-B1's mechanism implies but the paper never measured.
"""

import pytest

from repro.experiments import SMALL, run_sensitivity


@pytest.fixture(scope="module")
def sensitivity():
    return run_sensitivity(SMALL)


def test_bench_sensitivity(benchmark):
    result = benchmark.pedantic(lambda: run_sensitivity(SMALL),
                                rounds=1, iterations=1)
    print()
    print(result.render())


class TestSensitivityShape:
    def test_every_profile_fully_detected(self, sensitivity):
        for row in sensitivity.rows:
            assert row.detection_rate == 1.0, row.profile

    def test_medians_stay_in_band(self, sensitivity):
        """Robustness: no victim profile pushes the median past ~2x the
        paper's generic-corpus result."""
        for row in sensitivity.rows:
            assert row.median_files_lost <= 20, row.profile

    def test_all_profiles_reach_union_regularly(self, sensitivity):
        for row in sensitivity.rows:
            assert row.union_rate >= 0.5, row.profile
