"""Figure 6 / §V-F — benign applications vs the non-union threshold.

Shape targets: Word and ImageMagick at exactly 0; Excel the highest
scorer but under the 200 threshold; Lightroom in between; iTunes small;
zero false positives at 200 across the analysed five; 7-zip the single
(expected) detection in the full thirty-app suite.
"""

import pytest

from repro.experiments import run_fig6


@pytest.fixture(scope="module")
def fig6_five(scale):
    return run_fig6(scale, suite="five")


@pytest.fixture(scope="module")
def fig6_all(scale):
    return run_fig6(scale, suite="all")


def test_bench_regenerate_fig6(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig6(scale, suite="five"),
                                rounds=1, iterations=1)
    print()
    print(result.render())


def test_bench_full_benign_suite(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig6(scale, suite="all"),
                                rounds=1, iterations=1)
    print()
    print(result.render())


class TestFig6Shape:
    def test_word_and_mogrify_zero(self, fig6_five):
        scores = fig6_five.final_scores()
        assert scores["WINWORD.EXE"] == 0.0       # paper: 0
        assert scores["mogrify.exe"] == 0.0       # paper: 0

    def test_excel_highest_but_safe(self, fig6_five):
        scores = fig6_five.final_scores()
        assert scores["EXCEL.EXE"] == max(scores.values())
        assert scores["EXCEL.EXE"] < 200.0        # paper: 150

    def test_lightroom_second(self, fig6_five):
        scores = fig6_five.final_scores()
        assert 50 <= scores["lightroom.exe"] < scores["EXCEL.EXE"]

    def test_itunes_small(self, fig6_five):
        assert fig6_five.final_scores()["iTunes.exe"] <= 40  # paper: 16

    def test_zero_false_positives_at_200(self, fig6_five):
        assert fig6_five.false_positives_at(200.0) == 0

    def test_sweep_shows_crossovers(self, fig6_five):
        """Lower thresholds start flagging Excel, then Lightroom —
        exactly the trade-off Fig. 6 plots."""
        sweep = fig6_five.sweep()
        assert sweep[100] >= 1
        assert sweep[100] >= sweep[150] >= sweep[200] == 0

    def test_union_never_fires_for_benign(self, fig6_all):
        """§III-E: no benign program trips all three primaries."""
        assert all(not r.union_fired for r in fig6_all.results)

    def test_sevenzip_only_detection_in_thirty(self, fig6_all):
        assert fig6_all.detected_apps() == ["7z.exe"]
