"""Figure 5 — file-extension attack frequency across the cohort.

Shape target: "the samples attacked common productivity formats first" —
.pdf leads, and the paper's top four (.pdf, .odt, .docx, .pptx) are all
compressed high-entropy formats that nonetheless get caught.
"""

import pytest

from repro.experiments import PAPER_FIG5_TOP, run_fig5


@pytest.fixture(scope="module")
def fig5(campaign, scale):
    return run_fig5(scale, campaign=campaign)


def test_bench_regenerate_fig5(benchmark, campaign, scale):
    result = benchmark.pedantic(
        lambda: run_fig5(scale, campaign=campaign), rounds=1, iterations=1)
    print()
    print(result.render())


class TestFig5Shape:
    def test_pdf_leads(self, fig5):
        assert fig5.top(1)[0][0] == ".pdf"

    def test_papers_top_formats_rank_high(self, full_scale_only, fig5):
        # .odt is rare in our corpus mix, so we ask for 3 of the paper's
        # 4 headline formats inside our top 10
        top10 = {ext for ext, _ in fig5.top(10)}
        present = sum(1 for ext in PAPER_FIG5_TOP if ext in top10)
        assert present >= 3

    def test_productivity_beats_media(self, fig5):
        """'a strong preference for attacking productivity files over
        other kinds of media including pictures and music'."""
        freq = fig5.frequencies
        productivity = max(freq.get(e, 0) for e in (".pdf", ".docx", ".doc"))
        media = max(freq.get(e, 0) for e in (".mp3", ".wav", ".m4a",
                                             ".flac"))
        assert productivity > media

    def test_no_attack_artifacts_leak_in(self, fig5):
        assert not {".ecc", ".locked", ".ctbl"} & set(fig5.frequencies)
