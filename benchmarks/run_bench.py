"""Hot-path benchmark harness → ``BENCH_2.json``.

Times the engine's performance-critical paths directly (no pytest
overhead) and writes a machine-comparable JSON report:

* ``hot_paths`` — best-of-N seconds per call for each named path.  These
  are the regression-gated numbers: ``check_regression.py`` fails the
  build when any of them slows down more than 25% against the committed
  baseline.
* ``speedups`` — vectorised-vs-scalar ratios for the sdhash digest and
  the batched all-pairs compare, plus cached-vs-uncached ratio for the
  close-heavy engine campaign.
* ``counters`` — the perfstats snapshot of the close-heavy campaign,
  including the single-digest invariant (bytes digested ≤ bytes closed).

Run via ``make bench`` (full scale) or with ``--smoke`` for a seconds-long
structural pass (used by the tier-1 smoke test; smoke numbers are not
comparable to a full-scale baseline).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.wordlists import paragraphs
from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.fs import DOCUMENTS, VirtualFileSystem
from repro.perfstats import collect
from repro.simhash.sdhash import (compare, compare_scalar, sdhash,
                                  sdhash_scalar)

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_2.json"
SCHEMA_VERSION = 2


def _text(seed: int, approx_bytes: int) -> bytes:
    data = paragraphs(random.Random(seed), approx_bytes).encode()
    while len(data) < approx_bytes:
        data += paragraphs(random.Random(seed + len(data)),
                           approx_bytes).encode()
    return data[:approx_bytes]


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time.  The minimum is the noise-robust estimator
    for regression gating: scheduler preemption and cache pollution only
    ever add time, so the fastest observed run is the closest to the
    code's true cost."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _digest_with_filters(min_filters: int):
    """Text content large enough to span ``min_filters`` Bloom filters."""
    size = min_filters * 24 * 1024
    while True:
        digest = sdhash(_text(7, size))
        if digest is not None and len(digest) >= min_filters:
            return digest
        size *= 2


def close_heavy_campaign(n_files: int, rewrites: int, payload: int,
                         digest_cache_entries: int = 256):
    """Rewrite-then-close the same documents repeatedly.

    Steady state is exactly the workload the digest cache exists for:
    every close re-inspects content the engine has digested before.
    Returns ``(elapsed_seconds, PerfStats)``.
    """
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS)
    paths = []
    for i in range(n_files):
        path = DOCUMENTS / f"doc{i}.txt"
        vfs.peek_write(path, _text(i, payload))
        paths.append(path)
    config = CryptoDropConfig(digest_cache_entries=digest_cache_entries)
    monitor = CryptoDropMonitor(vfs, config).attach()
    pid = vfs.processes.spawn("editor.exe").pid
    started = time.perf_counter()
    for _ in range(rewrites):
        for path in paths:
            handle = vfs.open(pid, path, "rw")
            data = vfs.read(pid, handle)
            vfs.seek(pid, handle, 0)
            vfs.write(pid, handle, data)
            vfs.close(pid, handle)
    elapsed = time.perf_counter() - started
    stats = collect(monitor)
    monitor.detach()
    return elapsed, stats


def run(smoke: bool = False) -> dict:
    if smoke:
        digest_payload = 32 * 1024
        repeats, scalar_repeats = 3, 2
        n_filters = 8
        campaign = dict(n_files=6, rewrites=3, payload=24 * 1024)
    else:
        digest_payload = 128 * 1024
        repeats, scalar_repeats = 9, 3
        n_filters = 32
        campaign = dict(n_files=24, rewrites=6, payload=48 * 1024)

    payload = _text(3, digest_payload)
    hot_paths = {}
    speedups = {}

    hot_paths["sdhash_digest"] = _best_seconds(
        lambda: sdhash(payload), repeats)
    scalar_digest = _best_seconds(
        lambda: sdhash_scalar(payload), scalar_repeats)
    speedups["sdhash_vectorised_vs_scalar"] = (
        scalar_digest / hot_paths["sdhash_digest"])

    big_a = _digest_with_filters(n_filters)
    big_b = _digest_with_filters(n_filters)
    hot_paths["compare_batched"] = _best_seconds(
        lambda: compare(big_a, big_b), repeats)
    scalar_compare = _best_seconds(
        lambda: compare_scalar(big_a, big_b), scalar_repeats)
    speedups["compare_batched_vs_scalar"] = (
        scalar_compare / hot_paths["compare_batched"])

    campaign_rounds = 1 if smoke else 3
    cached_runs = [close_heavy_campaign(**campaign)
                   for _ in range(campaign_rounds)]
    stats = cached_runs[0][1]
    cached_s = min(elapsed for elapsed, _ in cached_runs)
    uncached_s = min(close_heavy_campaign(**campaign,
                                          digest_cache_entries=0)[0]
                     for _ in range(campaign_rounds))
    hot_paths["close_heavy_campaign"] = cached_s
    speedups["close_path_cached_vs_uncached"] = uncached_s / cached_s

    counters = stats.as_dict()
    return {
        "schema": SCHEMA_VERSION,
        "scale": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "hot_paths": {name: {"seconds": round(s, 6)}
                      for name, s in hot_paths.items()},
        "speedups": {name: round(ratio, 2)
                     for name, ratio in speedups.items()},
        "counters": counters,
        "invariants": {
            # single-digest close path: steady-state closes never digest
            # more than they close
            "bytes_digested_le_bytes_closed": counters["single_digest_holds"],
            "digest_cache_hits_positive": counters["digest_cache"]["hits"] > 0,
        },
        "filters_compared": len(big_a),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long structural pass (not comparable "
                             "to a full-scale baseline)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {args.output}")
    for name, entry in sorted(report["hot_paths"].items()):
        print(f"  {name:28s} {entry['seconds'] * 1000:9.3f} ms")
    for name, ratio in sorted(report["speedups"].items()):
        print(f"  {name:36s} {ratio:6.2f}x")
    ok = all(report["invariants"].values())
    print(f"  invariants: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
