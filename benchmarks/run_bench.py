"""Hot-path benchmark harness → ``BENCH_8.json``.

Times the engine's performance-critical paths directly (no pytest
overhead) and writes a machine-comparable JSON report:

* ``hot_paths`` — best-of-N seconds per call for each named path.  These
  are the regression-gated numbers: ``check_regression.py`` fails the
  build when any of them slows down more than 25% against the committed
  baseline.
* ``speedups`` — vectorised-vs-scalar ratios for the sdhash digest and
  the batched all-pairs compare, cached-vs-uncached for the close-heavy
  engine campaign, store-vs-BENCH_2-era-path for the campaign
  throughput sweep (the ISSUE-3 headline: shared BaselineStore + lazy
  close digests versus per-sample eager digesting), and the ISSUE-5
  batch-kernel ratios: ``digest_many`` versus a per-file digest loop on
  a small-document batch, and the batched store build versus the serial
  reference loop.
* ``counters`` — the perfstats snapshot of the close-heavy campaign,
  including the single-digest invariant (bytes digested ≤ bytes closed).
* ``campaign`` — throughput and merged engine counters for the
  store-backed campaign sweep, plus the one-time store build cost.
* ``telemetry_overhead`` — the ISSUE-4 guardrail: the close-heavy
  workload run as interleaved baseline/off/on triples, each leg
  best-of-N.  The disabled path must stay within noise of the (equally
  telemetry-free) baseline leg (<2%, gated in
  ``tests/test_bench_smoke.py``), engine counters must be identical
  either way, and a small detection campaign must produce bit-identical
  results with telemetry on.
* ``streaming_digest`` — the ISSUE-7 section: a large append-only file
  (256 MiB at full scale) written chunk by chunk and closed, with
  ``streaming_digests`` on vs off.  The streamed close finalises its
  sdhash from the incremental per-handle stream in O(tail); the whole
  leg re-reads and digests the full content.  Gates: the digests are
  bit-identical, a storeless campaign produces identical detection
  output either way, and at full scale the streamed close is ≥5× faster
  (``streaming_close_speedup_ge_5``).
* ``store_persistence`` — the ISSUE-9 section: the single-file on-disk
  baseline store (``repro.store``).  A scaling sweep builds a ``.cdbs``
  at 10k and 100k entries (1M with ``--big``; ~1k in smoke) via the
  sharded parallel builder, then measures what persistence exists for:
  reopening is O(header) (gated ≤50 ms and ≥100× faster than
  rebuilding at full scale), a pristine re-inspection sweep over the
  reopened store digests zero bytes, paged-in residency stays bounded
  by the hot-entry cap, and every file passes the structural fsck.  A
  dict-vs-mmap campaign pair asserts bit-identical verdicts — the
  backend is storage, never semantics.
* ``ingest_resilience`` — the ISSUE-6 section: a multi-endpoint ingest
  session (64 tenants at full scale) run fault-free, then again under a
  combined fault storm (shard kills, poison events, queue stalls,
  transient denials) with breaker + watchdog on, then under overload
  with load shedding.  Gates: sustained throughput under faults ≥ 70%
  of fault-free, post-restart verdicts bit-identical to the unfaulted
  reference, zero cross-tenant event leakage, and every shed decision
  observable as telemetry (with non-shed tenants unchanged).

Run via ``make bench`` (full scale) or with ``--smoke`` for a seconds-long
structural pass (used by the tier-1 smoke test; smoke numbers are not
comparable to a full-scale baseline and the ≥3× throughput gate only
applies at full scale).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path
from types import SimpleNamespace

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.filestate import FileStateCache
from repro.corpus.baselines import BaselineStore, content_key
from repro.corpus.builder import generate
from repro.corpus.spec import default_spec
from repro.corpus.wordlists import paragraphs
from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.faults import ingest_chaos, transient_faults
from repro.fs import DOCUMENTS, VirtualFileSystem
from repro.ingest import (EndpointSessionManager, ShedPolicy,
                          record_endpoint_stream)
from repro.perfstats import collect
from repro.ransomware import instantiate
from repro.ransomware.factory import working_cohort
from repro.sandbox import (VirtualMachine, run_campaign,
                           run_campaign_parallel, store_for_config)
from repro.sandbox.parallel import build_store_parallel
from repro.simhash.sdhash import (compare, compare_scalar, digest_many,
                                  sdhash, sdhash_scalar)
from repro.store import fsck_store

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_8.json"
SCHEMA_VERSION = 8

#: minimum store-vs-eager campaign speedup gated at full scale
CAMPAIGN_SPEEDUP_FLOOR = 3.0
#: minimum digest_many-vs-per-file speedup on a 32-document batch
DIGEST_MANY_SPEEDUP_FLOOR = 2.0
#: minimum batched-vs-serial store build speedup on a small-doc corpus
STORE_BUILD_SPEEDUP_FLOOR = 3.0
#: minimum faulted-vs-fault-free ingest throughput gated at full scale
INGEST_THROUGHPUT_FLOOR = 0.70
#: minimum streamed-vs-whole-file close speedup gated at full scale
STREAMING_CLOSE_SPEEDUP_FLOOR = 5.0
#: maximum store reopen time gated at full scale (header + mmap only)
STORE_OPEN_CEILING_S = 0.050
#: minimum open-vs-rebuild ratio for the largest store at full scale
STORE_OPEN_VS_REBUILD_FLOOR = 100.0


def _text(seed: int, approx_bytes: int) -> bytes:
    data = paragraphs(random.Random(seed), approx_bytes).encode()
    while len(data) < approx_bytes:
        data += paragraphs(random.Random(seed + len(data)),
                           approx_bytes).encode()
    return data[:approx_bytes]


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time.  The minimum is the noise-robust estimator
    for regression gating: scheduler preemption and cache pollution only
    ever add time, so the fastest observed run is the closest to the
    code's true cost."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _fast_vs_slow(fast_fn, slow_fn, fast_repeats: int,
                  slow_repeats: int) -> tuple:
    """Time a fast path against its slow reference, interleaved.

    Returns ``(fast_min_seconds, speedup)``.  The speedup is the max of
    the best *paired-round* ratio (the legs of a round run back-to-back,
    so a contention burst hits both rather than eating one side of the
    ratio) and the ratio of per-leg minima (each leg's quietest moment,
    which need not be the same round).  Noise has to penalise the fast
    leg in every paired round *and* at the global minima to understate
    the speedup, while a genuinely broken fast path drags every estimate
    down — the same two-estimator scheme as ``telemetry_overhead``,
    mirrored for a lower-bound gate.
    """
    fast_times, slow_times, paired = [], [], []
    for i in range(max(fast_repeats, slow_repeats)):
        started = time.perf_counter()
        fast_fn()
        t_fast = time.perf_counter() - started
        fast_times.append(t_fast)
        if i < slow_repeats:
            started = time.perf_counter()
            slow_fn()
            t_slow = time.perf_counter() - started
            slow_times.append(t_slow)
            paired.append(t_slow / t_fast)
    fast_min = min(fast_times)
    speedup = max(max(paired), min(slow_times) / fast_min)
    return fast_min, speedup


def _digest_with_filters(min_filters: int):
    """Text content large enough to span ``min_filters`` Bloom filters."""
    size = min_filters * 24 * 1024
    while True:
        digest = sdhash(_text(7, size))
        if digest is not None and len(digest) >= min_filters:
            return digest
        size *= 2


def close_heavy_campaign(n_files: int, rewrites: int, payload: int,
                         digest_cache_entries: int = 256,
                         telemetry: bool = False):
    """Rewrite-then-close the same documents repeatedly.

    Steady state is exactly the workload the digest cache exists for:
    every close re-inspects content the engine has digested before.
    Returns ``(elapsed_seconds, PerfStats, telemetry_export_or_None)``.
    """
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS)
    paths = []
    for i in range(n_files):
        path = DOCUMENTS / f"doc{i}.txt"
        vfs.peek_write(path, _text(i, payload))
        paths.append(path)
    config = CryptoDropConfig(digest_cache_entries=digest_cache_entries,
                              telemetry_enabled=telemetry)
    monitor = CryptoDropMonitor(vfs, config).attach()
    pid = vfs.processes.spawn("editor.exe").pid
    started = time.perf_counter()
    for _ in range(rewrites):
        for path in paths:
            handle = vfs.open(pid, path, "rw")
            data = vfs.read(pid, handle)
            vfs.seek(pid, handle, 0)
            vfs.write(pid, handle, data)
            vfs.close(pid, handle)
    elapsed = time.perf_counter() - started
    stats = collect(monitor)
    export = monitor.telemetry_export()
    monitor.detach()
    return elapsed, stats, export


# -- campaign throughput (ISSUE 3) ----------------------------------------


def _bench_corpus(n_files: int, n_dirs: int):
    """A large-file corpus for the throughput sweep.

    Every document is pushed above the samples' pure-Python cipher
    cutoff, so the workload cost is dominated by the detector's digest
    path — the thing the BaselineStore exists to amortise — rather than
    by toy-cipher arithmetic on small payloads.
    """
    spec = default_spec()
    big = dataclasses.replace(
        spec, types=[dataclasses.replace(t, median_bytes=327680,
                                         min_bytes=262144,
                                         max_bytes=524288)
                     for t in spec.types])
    return generate(seed=977, n_files=n_files, n_dirs=n_dirs, spec=big)


def _bench_cohort(total: int):
    """A deterministic class-C/delete cohort of ``total`` samples.

    Class C with delete disposal (read original → write ciphertext to a
    new file → delete original) is the paper's third behaviour class,
    and it is the shape where the store + lazy digests pay most:
    pristine reads resolve from the store, and the ciphertext drops are
    write-once files whose digests are never needed — so the BENCH_2-era
    path's per-file digest pair is eliminated outright, not just
    halved.  The 25 working (C, delete) profiles are cycled to fill the
    cohort; each slot is freshly instantiated by the caller so repeated
    profiles don't share sample state across runs.
    """
    deleters = [s.profile for s in working_cohort(base_seed=0)
                if s.profile.behavior_class == "C"
                and s.profile.class_c_disposal == "delete"]
    return [deleters[i % len(deleters)] for i in range(total)]


def _result_fingerprint(campaign) -> list:
    """The detection outcome of every sample, order-sensitive."""
    return [(r.sample_name, r.detected, r.files_lost, round(r.score, 6),
             r.union_fired, sorted(r.flags)) for r in campaign.results]


def campaign_throughput(n_files: int, n_dirs: int, cohort: int,
                        rounds: int) -> dict:
    """Store-backed lazy campaign vs the BENCH_2-era path, plus the
    parallel executor as an identity cross-check.

    The BENCH_2-era leg is the exact pre-ISSUE-3 configuration: no
    baseline store, eager close digests.  Detection results must be
    bit-identical across all three legs.
    """
    corpus = _bench_corpus(n_files, n_dirs)
    profiles = _bench_cohort(cohort)
    eager = CryptoDropConfig(lazy_close_digests=False)
    lazy = CryptoDropConfig()

    def fresh():
        return [instantiate(p) for p in profiles]

    build_started = time.perf_counter()
    store = store_for_config(corpus, lazy)
    store_build_s = time.perf_counter() - build_started

    legs = {}

    def bench2_leg():
        legs["bench2"] = run_campaign(fresh(), corpus, eager,
                                      use_baseline_store=False)
        return legs["bench2"]

    def store_leg():
        legs["store"] = run_campaign(fresh(), corpus, lazy,
                                     use_baseline_store=True)
        return legs["store"]

    bench2_s = _best_seconds(bench2_leg, rounds)
    store_s = _best_seconds(store_leg, rounds)
    legs["parallel"] = run_campaign_parallel(
        fresh(), corpus, lazy, workers=2, use_baseline_store=True)

    fingerprints = {name: _result_fingerprint(result)
                    for name, result in legs.items()}
    identical = (fingerprints["bench2"] == fingerprints["store"]
                 == fingerprints["parallel"])

    perf = legs["store"].perf_stats()
    return {
        "seconds_store": store_s,
        "seconds_bench2_path": bench2_s,
        "speedup": bench2_s / store_s,
        "samples": cohort,
        "corpus_files": len(corpus.files),
        "store_build_seconds": round(store_build_s, 6),
        "store_entries": len(store),
        "results_identical": identical,
        "samples_per_second": round(cohort / store_s, 3),
        "store_hits": perf["digest_cache"]["store_hits"],
        "store_misses": perf["digest_cache"]["store_misses"],
        "deferred_digests": perf["deferred_digests"],
        "bytes_digested": perf["bytes_digested"],
        "workers_parallel_leg": legs["parallel"].perf["workers"],
    }


def telemetry_overhead(campaign: dict, rounds: int,
                       identity: dict) -> dict:
    """The ISSUE-4 guardrail: same close-heavy workload, telemetry off vs
    on, with a baseline leg interleaved in every round so machine-load
    drift hits all three legs equally; each leg taken best-of-N.

    The baseline leg is the regression-gated ``close_heavy_campaign``
    hot path itself (equally telemetry-free), measured *here* rather
    than reused from ``hot_paths`` so the disabled-vs-baseline ratio is
    load-drift-free — the <2% gate in ``tests/test_bench_smoke.py``
    must hold even mid-suite on a busy machine.

    The gated ratios take the min of two estimators: the best
    *per-round* ratio (within a round the legs run back-to-back, so
    shared machine load cancels) and the ratio of per-leg best-of-N
    times (each leg's quietest moment, which need not be the same
    round).  A genuine systematic overhead — say, a removed null
    guard — inflates every round's ratio *and* the leg mins, so both
    estimators catch it; a contention spike has to penalise the
    disabled leg in every single round and across the global mins to
    produce a false failure.

    Beyond the timing ratio, two identity checks: the engine's perf
    counters (wall times excluded — they are timing) must match exactly
    between the legs, and a small detection campaign run off-then-on
    must produce bit-identical results.
    """
    baseline_times, off_times, on_times = [], [], []
    off_ratios, on_ratios = [], []
    off_stats = on_stats = events = None
    for _ in range(rounds):
        t_base = close_heavy_campaign(**campaign)[0]
        t_off, s_off, _export = close_heavy_campaign(**campaign)
        t_on, s_on, export = close_heavy_campaign(**campaign,
                                                  telemetry=True)
        baseline_times.append(t_base)
        off_times.append(t_off)
        on_times.append(t_on)
        off_ratios.append(t_off / t_base)
        on_ratios.append(t_on / t_off)
        off_stats, on_stats, events = s_off, s_on, export
    seconds_baseline = min(baseline_times)
    seconds_disabled = min(off_times)
    seconds_enabled = min(on_times)

    def counter_view(stats) -> dict:
        view = stats.as_dict()
        view.pop("op_wall_us")   # measured time, not a counter
        return view

    corpus = _bench_corpus(identity["n_files"], identity["n_dirs"])
    profiles = _bench_cohort(identity["cohort"])
    runs = {}
    for label, enabled in (("off", False), ("on", True)):
        config = CryptoDropConfig(telemetry_enabled=enabled)
        runs[label] = run_campaign([instantiate(p) for p in profiles],
                                   corpus, config)
    return {
        "seconds_baseline": round(seconds_baseline, 6),
        "seconds_disabled": round(seconds_disabled, 6),
        "seconds_enabled": round(seconds_enabled, 6),
        "disabled_vs_baseline": round(
            min(min(off_ratios), seconds_disabled / seconds_baseline), 4),
        "enabled_vs_disabled": round(
            min(min(on_ratios), seconds_enabled / seconds_disabled), 4),
        "events_captured": events["bus"]["emitted"],
        "counters_identical": counter_view(off_stats)
                              == counter_view(on_stats),
        "campaign_results_identical": (_result_fingerprint(runs["off"])
                                       == _result_fingerprint(runs["on"])),
    }


def untouched_corpus_digest_bytes(n_files: int, n_dirs: int,
                                  rewrites: int = 2) -> int:
    """Bytes digested by a store-backed monitor over rewrite-same traffic.

    Every open→read→rewrite-identical→close cycle on a pristine corpus
    file should resolve both its baseline capture and its close
    inspection from the BaselineStore, so this returns 0 when the store
    path works.
    """
    corpus = _bench_corpus(n_files, n_dirs)
    config = CryptoDropConfig()
    store = store_for_config(corpus, config)
    machine = VirtualMachine(corpus, baseline_store=store)
    monitor = CryptoDropMonitor(machine.vfs, config,
                                baseline_store=store).attach()
    pid = machine.vfs.processes.spawn("editor.exe").pid
    paths = [machine.docs_root.joinpath(*(row.rel_dir + (row.name,)))
             for row in corpus.files]
    for _ in range(rewrites):
        for path in paths:
            handle = machine.vfs.open(pid, path, "rw")
            data = machine.vfs.read(pid, handle)
            machine.vfs.seek(pid, handle, 0)
            machine.vfs.write(pid, handle, data)
            machine.vfs.close(pid, handle)
    stats = collect(monitor)
    monitor.detach()
    return stats.bytes_digested


# -- batched digest kernel + scheduler (ISSUE 5) ---------------------------


def _small_docs(n_docs: int, seed_base: int) -> list:
    """600–1200 byte text documents — the small-file tail of the paper's
    corpus (§V-A measures a median document under 10 KB), which is where
    per-file dispatch overhead dominates the digest arithmetic and the
    batched kernel pays most."""
    return [_text(seed_base + i, 600 + (i * 37) % 601)
            for i in range(n_docs)]


def digest_many_section(n_docs: int, repeats: int,
                        scalar_repeats: int) -> tuple:
    """``digest_many`` vs a per-file ``sdhash`` loop over one batch.

    Returns ``(seconds, speedup, identical)`` — the identity leg checks
    every batched digest against its per-file hexdigest before any
    timing is trusted.
    """
    docs = _small_docs(n_docs, seed_base=100)
    per_file = [sdhash(d) for d in docs]
    batched = digest_many(docs)
    identical = len(batched) == len(per_file) and all(
        (a is None and b is None)
        or (a is not None and b is not None
            and a.hexdigest() == b.hexdigest())
        for a, b in zip(batched, per_file))
    seconds, speedup = _fast_vs_slow(
        lambda: digest_many(docs),
        lambda: [sdhash(d) for d in docs],
        repeats, scalar_repeats)
    return seconds, speedup, identical


def store_build_section(n_docs: int, repeats: int,
                        scalar_repeats: int) -> dict:
    """Batched vs serial :meth:`BaselineStore.build` on small documents.

    The serial reference loop pays identify + digest + entropy dispatch
    per file; the batched build runs one ``digest_many`` pass and shared
    histogram scatters.  Entries must be bit-identical (fingerprint,
    digests, entropies) before the timing ratio counts.
    """
    contents = {f"docs/note{i}.txt": doc
                for i, doc in enumerate(_small_docs(n_docs, seed_base=500))}
    corpus = SimpleNamespace(contents=contents, seed=977)
    serial = BaselineStore.build(corpus, batched=False)
    batched = BaselineStore.build(corpus, batched=True)
    identical = (serial.fingerprint == batched.fingerprint
                 and serial.total_bytes == batched.total_bytes
                 and all(
                     a.entropy == b.entropy and a.file_type == b.file_type
                     and (a.digest.hexdigest() if a.digest else None)
                         == (b.digest.hexdigest() if b.digest else None)
                     for a, b in ((serial._entries[k], batched._entries[k])
                                  for k in serial._entries)))
    seconds, speedup = _fast_vs_slow(
        lambda: BaselineStore.build(corpus, batched=True),
        lambda: BaselineStore.build(corpus, batched=False),
        repeats, scalar_repeats)
    return {
        "documents": n_docs,
        "entries": len(batched),
        "seconds_batched": round(seconds, 6),
        "speedup": speedup,
        "entries_identical": identical,
    }


def batch_digests_identity(identity: dict) -> bool:
    """Detection output must be independent of ``batch_digests``.

    Storeless legs on purpose: with a corpus store attached, captures
    resolve from the store and never defer, so the storeless
    configuration is the one that actually routes deferred captures
    through the scheduler's batched flushes.
    """
    corpus = _bench_corpus(identity["n_files"], identity["n_dirs"])
    profiles = _bench_cohort(identity["cohort"])
    runs = {}
    for label, batching in (("on", True), ("off", False)):
        config = CryptoDropConfig(batch_digests=batching)
        runs[label] = run_campaign([instantiate(p) for p in profiles],
                                   corpus, config,
                                   use_baseline_store=False)
    return (_result_fingerprint(runs["on"])
            == _result_fingerprint(runs["off"]))


# -- streaming incremental digests (ISSUE 7) -------------------------------


def streaming_digest_section(file_bytes: int, chunk_bytes: int,
                             rounds: int) -> dict:
    """One large append-only file, written chunk by chunk and closed,
    with ``streaming_digests`` on vs off.

    What the close pays is the thing under test, so the legs pin down
    everything else: eager close digests (a lazy close defers and would
    time nothing), a disabled digest LRU (the legs write identical bytes
    every round, and a key hit would skip the digest being measured),
    and ``max_inspect_bytes`` raised above the file size (the default
    4 MiB cap would refuse to digest the file at all — and would drop
    the stream as ``oversize``).  Legs run interleaved per round, same
    two-estimator ratio as ``_fast_vs_slow``.

    Text content on purpose: high-entropy random bytes would fire the
    write-entropy indicator and suspend the writer mid-benchmark.
    """
    base = _text(41, chunk_bytes)
    n_chunks = file_bytes // chunk_bytes
    chunks = [base] * n_chunks

    def leg(streaming: bool) -> dict:
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        config = CryptoDropConfig(streaming_digests=streaming,
                                  lazy_close_digests=False,
                                  digest_cache_entries=0,
                                  max_inspect_bytes=file_bytes * 2)
        monitor = CryptoDropMonitor(vfs, config).attach()
        pid = vfs.processes.spawn("writer.exe").pid
        path = DOCUMENTS / "archive.dat"
        handle = vfs.open(pid, path, "w", create=True)
        started = time.perf_counter()
        for chunk in chunks:
            vfs.write(pid, handle, chunk)
        write_s = time.perf_counter() - started
        started = time.perf_counter()
        vfs.close(pid, handle)
        close_s = time.perf_counter() - started
        record = monitor.engine.cache.get(vfs.peek_stat(path).node_id)
        digest = (record.base_digest.hexdigest()
                  if record is not None and record.base_digest is not None
                  else None)
        streams = monitor.engine.stream_stats()
        cache = monitor.engine.cache.digest_cache.stats()
        monitor.detach()
        return {"write_s": write_s, "close_s": close_s, "digest": digest,
                "streams": streams, "cache": cache}

    streamed_close, whole_close, paired = [], [], []
    streamed_write = whole_write = None
    streamed = whole = None
    for _ in range(rounds):
        streamed = leg(True)
        whole = leg(False)
        streamed_close.append(streamed["close_s"])
        whole_close.append(whole["close_s"])
        paired.append(whole["close_s"] / streamed["close_s"])
        streamed_write = min(streamed["write_s"], streamed_write
                             or streamed["write_s"])
        whole_write = min(whole["write_s"], whole_write
                          or whole["write_s"])
    close_streamed = min(streamed_close)
    close_whole = min(whole_close)
    speedup = max(max(paired), close_whole / close_streamed)
    stream_stats = streamed["streams"]
    return {
        "file_bytes": file_bytes,
        "chunk_bytes": chunk_bytes,
        "chunks": n_chunks,
        "seconds_close_streamed": round(close_streamed, 6),
        "seconds_close_whole": round(close_whole, 6),
        "close_speedup": round(speedup, 2),
        "seconds_writes_streamed": round(streamed_write, 6),
        "seconds_writes_whole": round(whole_write, 6),
        "streams_finalized": stream_stats["finalized"],
        "stream_fallbacks": stream_stats["fallbacks"],
        # every content byte reached the digest incrementally: the close
        # itself digested O(tail), not O(file)
        "bytes_streamed": stream_stats["bytes_streamed"],
        "bytes_digested_per_close": streamed["cache"]["bytes_digested"],
        "incremental_bytes_per_close": (
            stream_stats["bytes_streamed"]
            // max(1, stream_stats["finalized"])),
        "digests_identical": (streamed["digest"] is not None
                              and streamed["digest"] == whole["digest"]),
    }


def streaming_digests_identity(identity: dict) -> bool:
    """Detection output must be independent of ``streaming_digests``.

    Storeless, with the buffered threshold at zero, so every in-place
    rewrite actually runs the incremental pipeline rather than resolving
    from the store or staying buffered.
    """
    corpus = _bench_corpus(identity["n_files"], identity["n_dirs"])
    profiles = _bench_cohort(identity["cohort"])
    runs = {}
    for label, streaming in (("on", True), ("off", False)):
        config = CryptoDropConfig(streaming_digests=streaming,
                                  stream_digest_min_bytes=0)
        runs[label] = run_campaign([instantiate(p) for p in profiles],
                                   corpus, config,
                                   use_baseline_store=False)
    return (_result_fingerprint(runs["on"])
            == _result_fingerprint(runs["off"]))


# -- persistent baseline store (ISSUE 9) -----------------------------------


def _synthetic_store_corpus(n_files: int, seed: int, doc_bytes: int):
    """``n_files`` small unique text documents, cheap enough to mint by
    the hundred thousand — the store scaling sweep sizes by entry count,
    and small blobs keep even the ``--big`` million-entry build inside
    the memory budget."""
    base = _text(seed, max(doc_bytes * 2, 4096))
    half = max(1, doc_bytes // 2)
    contents = {}
    for i in range(n_files):
        prefix = f"document {i:07d}\n".encode()
        contents[f"d{i:07d}.txt"] = prefix + base[:half + (i * 37) % half]
    return SimpleNamespace(contents=contents, seed=seed)


def store_scaling_leg(n_files: int, doc_bytes: int, open_repeats: int,
                      sweep_lookups: int, hot_entries: int,
                      workers: int, tmp_dir: str) -> dict:
    """One ``.cdbs`` at ``n_files`` entries: sharded parallel build,
    then the three things persistence exists for — reopening is
    O(header), residency stays bounded while lookups page in on demand,
    and a pristine re-inspection sweep digests nothing."""
    corpus = _synthetic_store_corpus(n_files, seed=601 + n_files,
                                     doc_bytes=doc_bytes)
    path = str(Path(tmp_dir) / f"store_{n_files}.cdbs")
    started = time.perf_counter()
    store = build_store_parallel(corpus, workers=workers, path=path)
    build_s = time.perf_counter() - started
    entries = len(store)
    file_bytes = os.path.getsize(path)
    store.close()

    open_s = _best_seconds(lambda: BaselineStore.open(path).close(),
                           open_repeats)

    store = BaselineStore.open(path, hot_entries=hot_entries)
    cache = FileStateCache(baseline_store=store)
    blobs = list(corpus.contents.values())
    step = max(1, len(blobs) // sweep_lookups)
    sample = blobs[::step][:sweep_lookups]
    started = time.perf_counter()
    for blob in sample:
        cache.inspect(blob)
    sweep_s = time.perf_counter() - started
    paging = store.page_stats()
    sweep_bytes_digested = cache.digest_cache.bytes_digested
    sweep_store_hits = cache.digest_cache.store_hits
    store.close()
    structural = fsck_store(path, check_records=False)
    os.unlink(path)
    return {
        "files": n_files,
        "entries": entries,
        "file_bytes": file_bytes,
        "build_seconds": round(build_s, 6),
        "open_seconds": round(open_s, 6),
        "open_vs_rebuild": round(build_s / open_s, 1),
        "lookups": len(sample),
        "lookups_per_second": round(len(sample) / sweep_s, 1),
        "sweep_bytes_digested": sweep_bytes_digested,
        "sweep_store_hits": sweep_store_hits,
        "page_ins": paging["page_ins"],
        "resident": paging["resident"],
        "hot_entries": hot_entries,
        "resident_bounded": paging["resident"] <= hot_entries,
        "fsck_ok": structural["ok"],
    }


def store_backend_identity(identity: dict) -> dict:
    """Dict vs mmap backend over the same campaign: verdicts must be
    bit-identical and the fingerprints must agree — the backend is
    storage, never semantics — and the mmap leg must actually have
    served baselines from disk."""
    corpus = _bench_corpus(identity["n_files"], identity["n_dirs"])
    profiles = _bench_cohort(identity["cohort"])
    legs = {}
    for storage in ("dict", "mmap"):
        config = CryptoDropConfig(store_backend=storage)
        legs[storage] = run_campaign([instantiate(p) for p in profiles],
                                     corpus, config)
    described = {name: leg.perf["baseline_store"]
                 for name, leg in legs.items()}
    return {
        "results_identical": (_result_fingerprint(legs["dict"])
                              == _result_fingerprint(legs["mmap"])),
        "fingerprint_identical": (described["dict"]["fingerprint"]
                                  == described["mmap"]["fingerprint"]),
        "storage_legs": [described["dict"]["storage"],
                         described["mmap"]["storage"]],
        # whether campaign lookups *hit* depends on the cohort's attack
        # shapes (class-C deleters mostly write fresh ciphertext files);
        # the scaling sweep pins hits == lookups on pristine content
        "mmap_store_hits":
            legs["mmap"].perf_stats()["digest_cache"]["store_hits"],
        "mmap_store_misses":
            legs["mmap"].perf_stats()["digest_cache"]["store_misses"],
    }


def store_persistence_section(sizes, identity: dict, open_repeats: int,
                              sweep_lookups: int, hot_entries: int,
                              workers: int) -> dict:
    """ISSUE-9 section: the on-disk store across entry-count scales,
    plus the dict-vs-mmap identity pair.  The headline numbers (and the
    full-scale gates) come from the largest store in the sweep."""
    tmp_dir = tempfile.mkdtemp(prefix="cryptodrop-bench-store-")
    try:
        scaling = [store_scaling_leg(n, doc_bytes, open_repeats,
                                     sweep_lookups, hot_entries,
                                     workers, tmp_dir)
                   for n, doc_bytes in sizes]
    finally:
        try:
            os.rmdir(tmp_dir)
        except OSError:
            pass
    section = store_backend_identity(identity)
    largest = scaling[-1]
    section.update({
        "scaling": scaling,
        "open_seconds": largest["open_seconds"],
        "open_vs_rebuild": largest["open_vs_rebuild"],
        "largest_files": largest["files"],
    })
    return section


def _ingest_streams(corpus, endpoints: int, stream_events: int) -> dict:
    """Record one endpoint event stream per tenant, cycling the cohort.

    Recording is monitor-free (pure VFS tracing), so this is cheap even
    at 64 endpoints; ``stream_events`` caps replayed work per tenant.
    """
    profiles = [s.profile for s in working_cohort(base_seed=0)]
    streams = {}
    for i in range(endpoints):
        sample = instantiate(profiles[(i * 7) % len(profiles)])
        streams[f"ep{i:03d}"] = record_endpoint_stream(
            corpus, sample, seed=i, max_events=stream_events)
    return streams


def ingest_resilience(endpoints: int, stream_events: int,
                      n_files: int, n_dirs: int, rounds: int) -> dict:
    """ISSUE-6 section: multi-endpoint ingest under a fault storm.

    Three legs over identical recorded streams:

    * **fault-free** — the reference: its verdict fingerprints and wall
      time are what the other legs are held to;
    * **faulted** — tenants round-robin across shard kills, poison
      events, queue stalls, and transient denials, with the breaker and
      watchdog on.  Restart-and-replay must reproduce the reference
      verdicts bit-for-bit, and sustained throughput (reference events /
      faulted wall time) must stay ≥ 70% of fault-free at full scale;
    * **overload** — tiny queues with a shed policy on every other
      tenant.  Every shed decision must surface as a ``LoadShed`` bus
      event, and tenants *without* a shed policy (pure backpressure)
      must still match the reference verdicts exactly.

    Cross-tenant isolation is asserted on every leg.
    """
    corpus = generate(seed=1721, n_files=n_files, n_dirs=n_dirs)
    streams = _ingest_streams(corpus, endpoints, stream_events)
    tenants = sorted(streams)
    config = CryptoDropConfig(telemetry_enabled=True)

    def session(fault_map=None, shed_tenants=(), **manager_kw):
        manager = EndpointSessionManager(corpus, config=config,
                                         **manager_kw)
        shed_policy = ShedPolicy(watermark=8, sample_every=4)
        for tenant in tenants:
            plan = (fault_map or {}).get(tenant)
            if tenant in shed_tenants:
                manager.add_endpoint(tenant, streams[tenant],
                                     fault_plan=plan,
                                     shed_policy=shed_policy)
            else:
                manager.add_endpoint(tenant, streams[tenant],
                                     fault_plan=plan)
        started = time.perf_counter()
        manager.run()
        return manager, time.perf_counter() - started

    def best_leg(**kw):
        best, manager = None, None
        for _ in range(rounds):
            manager, seconds = session(**kw)
            best = seconds if best is None else min(best, seconds)
        return manager, best

    reference, seconds_fault_free = best_leg()
    ref_verdicts = reference.verdicts()
    ref_leaks = reference.cross_tenant_events()
    events_applied = sum(s["applied"]
                         for s in reference.stats()["tenants"].values())
    reference.close()

    fault_map = {}
    for i, tenant in enumerate(tenants):
        kind = i % 4
        if kind == 0:
            fault_map[tenant] = ingest_chaos(
                seed=31 + i, kill_shard_at_events=(25,))
        elif kind == 1:
            fault_map[tenant] = ingest_chaos(
                seed=31 + i, poison_event_rate=0.04)
        elif kind == 2:
            fault_map[tenant] = ingest_chaos(
                seed=31 + i, queue_stall_rate=0.02)
        else:
            fault_map[tenant] = transient_faults(
                seed=31 + i, deny_rate=0.15, short_read_rate=0.0,
                latency_spike_rate=0.0, max_denials=20)

    faulted, seconds_faulted = best_leg(fault_map=fault_map)
    faulted_stats = faulted.stats()
    faulted_verdicts = faulted.verdicts()
    faulted_leaks = faulted.cross_tenant_events()
    watchdog_stats = faulted_stats["watchdog"] or {}
    recovery_ticks = watchdog_stats.get("recovery_ticks", [])
    shard_kills = sum(s["kills"]
                      for s in faulted_stats["tenants"].values())
    faulted.close()

    shed_tenants = frozenset(tenants[::2])
    overload, _ = best_leg(shed_tenants=shed_tenants,
                           queue_capacity=16, pump_batch=16,
                           tick_budget=2)
    overload_stats = overload.stats()["tenants"]
    sheds = sum(s["queue"]["shed"] for s in overload_stats.values())
    shed_events = 0
    shed_observable = sheds > 0
    for tenant in tenants:
        session = overload.sessions.get(tenant)
        bus_sheds = (len(session.bus.events(kind="load_shed"))
                     if session is not None else 0)
        shed_events += bus_sheds
        if bus_sheds != overload_stats[tenant]["queue"]["shed"]:
            shed_observable = False
    overload_verdicts = overload.verdicts()
    nonshed_unchanged = all(
        overload_verdicts[t] == ref_verdicts[t]
        for t in tenants if t not in shed_tenants)
    overload_leaks = overload.cross_tenant_events()
    overload.close()

    eps_fault_free = events_applied / seconds_fault_free
    eps_faulted = events_applied / seconds_faulted
    return {
        "endpoints": endpoints,
        "stream_events": stream_events,
        "events_applied": events_applied,
        "seconds_fault_free": round(seconds_fault_free, 6),
        "seconds_faulted": round(seconds_faulted, 6),
        "events_per_second_fault_free": round(eps_fault_free, 1),
        "events_per_second_faulted": round(eps_faulted, 1),
        "throughput_ratio": round(eps_faulted / eps_fault_free, 4),
        "restarts": watchdog_stats.get("restarts", 0),
        "recovery_ticks_max": max(recovery_ticks, default=0),
        "shard_kills": shard_kills,
        "sheds": sheds,
        "shed_events_observed": shed_events,
        "verdicts_identical": faulted_verdicts == ref_verdicts,
        "no_cross_tenant_leaks": not (ref_leaks or faulted_leaks
                                      or overload_leaks),
        "shed_observable": shed_observable,
        "nonshed_unchanged": nonshed_unchanged,
    }


def run(smoke: bool = False, big: bool = False) -> dict:
    if smoke:
        digest_payload = 32 * 1024
        repeats, scalar_repeats = 3, 2
        n_filters = 8
        campaign = dict(n_files=6, rewrites=3, payload=24 * 1024)
        throughput = dict(n_files=8, n_dirs=4, cohort=6, rounds=1)
        overhead_rounds = 4
        identity = dict(n_files=6, n_dirs=3, cohort=4)
        batch_docs, store_docs = 16, 128
        batch_repeats, batch_scalar_repeats = 3, 2
        ingest = dict(endpoints=8, stream_events=200,
                      n_files=24, n_dirs=5, rounds=1)
        streaming = dict(file_bytes=8 << 20, chunk_bytes=256 * 1024,
                         rounds=2)
        store_persist = dict(sizes=[(1000, 900)], open_repeats=3,
                             sweep_lookups=400, hot_entries=256, workers=2)
    else:
        digest_payload = 128 * 1024
        repeats, scalar_repeats = 9, 3
        n_filters = 32
        campaign = dict(n_files=24, rewrites=6, payload=48 * 1024)
        throughput = dict(n_files=36, n_dirs=10, cohort=50, rounds=3)
        overhead_rounds = 5
        identity = dict(n_files=12, n_dirs=6, cohort=10)
        batch_docs, store_docs = 32, 1024
        batch_repeats, batch_scalar_repeats = 9, 4
        ingest = dict(endpoints=64, stream_events=600,
                      n_files=40, n_dirs=8, rounds=2)
        streaming = dict(file_bytes=256 << 20, chunk_bytes=1 << 20,
                         rounds=3)
        store_persist = dict(sizes=[(10_000, 900), (100_000, 900)],
                             open_repeats=7, sweep_lookups=4000,
                             hot_entries=1024, workers=2)
    if big:
        # the million-entry tier: ~240-byte documents keep the content
        # set (and each fork's shard build) inside the memory budget
        store_persist["sizes"] = list(store_persist["sizes"]) \
            + [(1_000_000, 240)]

    payload = _text(3, digest_payload)
    hot_paths = {}
    speedups = {}

    (hot_paths["sdhash_digest"],
     speedups["sdhash_vectorised_vs_scalar"]) = _fast_vs_slow(
        lambda: sdhash(payload), lambda: sdhash_scalar(payload),
        repeats, scalar_repeats)

    big_a = _digest_with_filters(n_filters)
    big_b = _digest_with_filters(n_filters)
    (hot_paths["compare_batched"],
     speedups["compare_batched_vs_scalar"]) = _fast_vs_slow(
        lambda: compare(big_a, big_b),
        lambda: compare_scalar(big_a, big_b),
        repeats, scalar_repeats)

    # cached/uncached legs run interleaved (same reasoning as
    # telemetry_overhead): a contention burst hits both legs of a round
    # rather than eating one side of the ratio
    campaign_rounds = 2 if smoke else 3
    cached_runs, uncached_times, cache_ratios = [], [], []
    for _ in range(campaign_rounds):
        cached_runs.append(close_heavy_campaign(**campaign))
        uncached_times.append(
            close_heavy_campaign(**campaign, digest_cache_entries=0)[0])
        cache_ratios.append(uncached_times[-1] / cached_runs[-1][0])
    stats = cached_runs[0][1]
    cached_s = min(r[0] for r in cached_runs)
    uncached_s = min(uncached_times)
    hot_paths["close_heavy_campaign"] = cached_s
    speedups["close_path_cached_vs_uncached"] = max(
        max(cache_ratios), uncached_s / cached_s)

    (hot_paths["digest_many_batch"],
     speedups["digest_many_vs_per_file"],
     digest_many_identical) = digest_many_section(
        batch_docs, batch_repeats, batch_scalar_repeats)

    store_build = store_build_section(store_docs, batch_repeats,
                                      batch_scalar_repeats)
    hot_paths["store_build_batched"] = store_build["seconds_batched"]
    speedups["store_build_batched_vs_serial"] = store_build["speedup"]

    sweep = campaign_throughput(**throughput)
    hot_paths["campaign_throughput"] = sweep["seconds_store"]
    speedups["campaign_store_vs_bench2_path"] = sweep["speedup"]
    untouched_bytes = untouched_corpus_digest_bytes(
        n_files=throughput["n_files"] // 2, n_dirs=throughput["n_dirs"])

    overhead = telemetry_overhead(campaign, overhead_rounds, identity)
    batch_identical = batch_digests_identity(identity)

    stream_section = streaming_digest_section(**streaming)
    hot_paths["streaming_close"] = stream_section["seconds_close_streamed"]
    speedups["streaming_close_vs_whole_file"] = \
        stream_section["close_speedup"]
    streaming_identical = streaming_digests_identity(identity)

    persistence = store_persistence_section(identity=identity,
                                            **store_persist)
    hot_paths["store_open"] = persistence["open_seconds"]
    speedups["store_open_vs_rebuild"] = persistence["open_vs_rebuild"]

    resilience = ingest_resilience(**ingest)
    hot_paths["ingest_session"] = resilience["seconds_fault_free"]
    speedups["ingest_faulted_vs_fault_free"] = \
        resilience["throughput_ratio"]

    counters = stats.as_dict()
    invariants = {
        # single-digest close path: steady-state closes never digest
        # more than they close
        "bytes_digested_le_bytes_closed": counters["single_digest_holds"],
        "digest_cache_hits_positive": counters["digest_cache"]["hits"] > 0,
        # ISSUE 3: detection outcomes are independent of store/laziness/
        # parallelism, and a store-backed monitor digests nothing for
        # untouched corpus content
        "campaign_results_identical": sweep["results_identical"],
        "store_untouched_bytes_digested_zero": untouched_bytes == 0,
        # ISSUE 4: telemetry may cost time when enabled, but must never
        # change what the detector counts or decides
        "telemetry_counters_identical": overhead["counters_identical"],
        "telemetry_results_identical":
            overhead["campaign_results_identical"],
        # ISSUE 5: the batched kernel and the deferred-inspection
        # scheduler are pure plumbing — every digest bit-identical to the
        # per-file path, every store entry bit-identical to the serial
        # build, and detection output independent of batch_digests
        "digest_many_identical": digest_many_identical,
        "store_build_identical": store_build["entries_identical"],
        "batch_results_identical": batch_identical,
        # ISSUE 7: the incremental stream is the same digest by another
        # route — bit-identical results, and the append-only close never
        # fell back
        "streaming_digest_identical": stream_section["digests_identical"],
        "streaming_results_identical": streaming_identical,
        "streaming_no_fallbacks": not stream_section["stream_fallbacks"],
        # ISSUE 9: the persistent store is the same store by another
        # route — dict and mmap backends produce bit-identical verdicts
        # from identical fingerprints, pristine rerun sweeps digest
        # nothing, residency stays under the hot-entry cap, and every
        # file written by the sweep fscks clean
        "store_backend_results_identical": persistence["results_identical"],
        "store_fingerprint_identical": persistence["fingerprint_identical"],
        "store_rerun_bytes_digested_zero": all(
            leg["sweep_bytes_digested"] == 0
            for leg in persistence["scaling"]),
        "store_resident_bounded": all(leg["resident_bounded"]
                                      for leg in persistence["scaling"]),
        "store_fsck_clean": all(leg["fsck_ok"]
                                for leg in persistence["scaling"]),
        # ISSUE 6: faults, restarts, and load shedding must never change
        # what the detector decides for an unaffected tenant, leak events
        # across tenants, or drop records invisibly
        "ingest_verdicts_identical": resilience["verdicts_identical"],
        "ingest_no_cross_tenant_events":
            resilience["no_cross_tenant_leaks"],
        "ingest_shed_observable": resilience["shed_observable"],
        "ingest_nonshed_unchanged": resilience["nonshed_unchanged"],
    }
    if not smoke:
        invariants["campaign_speedup_ge_3"] = (
            sweep["speedup"] >= CAMPAIGN_SPEEDUP_FLOOR)
        invariants["digest_many_speedup_ge_2"] = (
            speedups["digest_many_vs_per_file"]
            >= DIGEST_MANY_SPEEDUP_FLOOR)
        invariants["store_build_speedup_ge_3"] = (
            speedups["store_build_batched_vs_serial"]
            >= STORE_BUILD_SPEEDUP_FLOOR)
        invariants["ingest_throughput_ratio_ge_0p7"] = (
            resilience["throughput_ratio"] >= INGEST_THROUGHPUT_FLOOR)
        invariants["streaming_close_speedup_ge_5"] = (
            stream_section["close_speedup"]
            >= STREAMING_CLOSE_SPEEDUP_FLOOR)
        invariants["store_open_le_50ms"] = (
            persistence["open_seconds"] <= STORE_OPEN_CEILING_S)
        invariants["store_open_vs_rebuild_ge_100"] = (
            persistence["open_vs_rebuild"]
            >= STORE_OPEN_VS_REBUILD_FLOOR)
    return {
        "schema": SCHEMA_VERSION,
        "scale": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "hot_paths": {name: {"seconds": round(s, 6)}
                      for name, s in hot_paths.items()},
        "speedups": {name: round(ratio, 2)
                     for name, ratio in speedups.items()},
        "counters": counters,
        "campaign": {k: v for k, v in sweep.items()
                     if k not in ("seconds_store",)},
        "store_build": {k: (round(v, 2) if k == "speedup" else v)
                        for k, v in store_build.items()},
        "digest_batch_documents": batch_docs,
        "streaming_digest": stream_section,
        "store_persistence": persistence,
        "telemetry_overhead": overhead,
        "ingest_resilience": resilience,
        "invariants": invariants,
        "filters_compared": len(big_a),
    }


def validate_report(report: dict) -> list:
    """Structural schema check; returns a list of problems (empty = ok).

    Guards the report shape the regression gate and the docs rely on,
    without pinning machine-dependent numbers.
    """
    problems = []

    def need(cond, what):
        if not cond:
            problems.append(what)

    need(report.get("schema") == SCHEMA_VERSION,
         f"schema != {SCHEMA_VERSION}")
    need(report.get("scale") in ("smoke", "full"), "bad scale")
    hot_paths = report.get("hot_paths", {})
    for name in ("sdhash_digest", "compare_batched", "close_heavy_campaign",
                 "campaign_throughput", "digest_many_batch",
                 "store_build_batched", "ingest_session",
                 "streaming_close", "store_open"):
        entry = hot_paths.get(name)
        need(isinstance(entry, dict)
             and isinstance(entry.get("seconds"), (int, float))
             and entry.get("seconds", -1) > 0,
             f"hot_paths[{name}] missing or non-positive")
    need(isinstance(report.get("speedups"), dict), "speedups missing")
    speedups = report.get("speedups", {})
    for name in ("sdhash_vectorised_vs_scalar", "compare_batched_vs_scalar",
                 "close_path_cached_vs_uncached",
                 "campaign_store_vs_bench2_path",
                 "digest_many_vs_per_file",
                 "store_build_batched_vs_serial",
                 "streaming_close_vs_whole_file",
                 "store_open_vs_rebuild"):
        need(isinstance(speedups.get(name), (int, float)),
             f"speedups[{name}] missing")
    stream_section = report.get("streaming_digest", {})
    for name in ("file_bytes", "chunk_bytes", "chunks",
                 "seconds_close_streamed", "seconds_close_whole",
                 "close_speedup", "seconds_writes_streamed",
                 "seconds_writes_whole", "streams_finalized",
                 "bytes_streamed", "bytes_digested_per_close",
                 "incremental_bytes_per_close", "digests_identical"):
        need(name in stream_section, f"streaming_digest[{name}] missing")
    store_build = report.get("store_build", {})
    for name in ("documents", "entries", "seconds_batched", "speedup",
                 "entries_identical"):
        need(name in store_build, f"store_build[{name}] missing")
    persistence = report.get("store_persistence", {})
    for name in ("open_seconds", "open_vs_rebuild", "largest_files",
                 "results_identical", "fingerprint_identical",
                 "mmap_store_hits", "storage_legs", "scaling"):
        need(name in persistence, f"store_persistence[{name}] missing")
    scaling = persistence.get("scaling") or []
    need(len(scaling) >= 1, "store_persistence[scaling] empty")
    for leg in scaling:
        for name in ("files", "entries", "file_bytes", "build_seconds",
                     "open_seconds", "open_vs_rebuild", "lookups",
                     "lookups_per_second", "sweep_bytes_digested",
                     "sweep_store_hits", "page_ins", "resident",
                     "hot_entries", "resident_bounded", "fsck_ok"):
            need(name in leg,
                 f"store_persistence scaling[{name}] missing")
    campaign = report.get("campaign", {})
    for name in ("seconds_bench2_path", "speedup", "samples",
                 "corpus_files", "store_build_seconds", "store_entries",
                 "results_identical", "samples_per_second", "store_hits",
                 "store_misses", "deferred_digests", "bytes_digested"):
        need(name in campaign, f"campaign[{name}] missing")
    overhead = report.get("telemetry_overhead", {})
    for name in ("seconds_baseline", "seconds_disabled", "seconds_enabled",
                 "enabled_vs_disabled", "disabled_vs_baseline"):
        need(isinstance(overhead.get(name), (int, float))
             and overhead.get(name, -1) > 0,
             f"telemetry_overhead[{name}] missing or non-positive")
    need(isinstance(overhead.get("events_captured"), int)
         and overhead.get("events_captured", 0) > 0,
         "telemetry_overhead[events_captured] missing or zero")
    resilience = report.get("ingest_resilience", {})
    for name in ("endpoints", "stream_events", "events_applied",
                 "seconds_fault_free", "seconds_faulted",
                 "throughput_ratio", "restarts", "recovery_ticks_max",
                 "shard_kills", "sheds", "shed_events_observed"):
        need(isinstance(resilience.get(name), (int, float)),
             f"ingest_resilience[{name}] missing")
    invariants = report.get("invariants", {})
    for name in ("bytes_digested_le_bytes_closed",
                 "digest_cache_hits_positive",
                 "campaign_results_identical",
                 "store_untouched_bytes_digested_zero",
                 "telemetry_counters_identical",
                 "telemetry_results_identical",
                 "ingest_verdicts_identical",
                 "ingest_no_cross_tenant_events",
                 "ingest_shed_observable",
                 "ingest_nonshed_unchanged",
                 "streaming_digest_identical",
                 "streaming_results_identical",
                 "streaming_no_fallbacks",
                 "store_backend_results_identical",
                 "store_fingerprint_identical",
                 "store_rerun_bytes_digested_zero",
                 "store_resident_bounded",
                 "store_fsck_clean"):
        need(isinstance(invariants.get(name), bool),
             f"invariants[{name}] missing")
    if report.get("scale") == "full":
        need(isinstance(invariants.get("campaign_speedup_ge_3"), bool),
             "invariants[campaign_speedup_ge_3] missing at full scale")
        need(isinstance(invariants.get("ingest_throughput_ratio_ge_0p7"),
                        bool),
             "invariants[ingest_throughput_ratio_ge_0p7] missing at "
             "full scale")
        need(isinstance(invariants.get("streaming_close_speedup_ge_5"),
                        bool),
             "invariants[streaming_close_speedup_ge_5] missing at "
             "full scale")
        need(isinstance(invariants.get("store_open_le_50ms"), bool),
             "invariants[store_open_le_50ms] missing at full scale")
        need(isinstance(invariants.get("store_open_vs_rebuild_ge_100"),
                        bool),
             "invariants[store_open_vs_rebuild_ge_100] missing at "
             "full scale")
    need(isinstance(report.get("counters"), dict), "counters missing")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long structural pass (not comparable "
                             "to a full-scale baseline)")
    parser.add_argument("--big", action="store_true",
                        help="add the million-entry tier to the store "
                             "persistence sweep (minutes of build time)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke, big=args.big)
    problems = validate_report(report)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {args.output}")
    for name, entry in sorted(report["hot_paths"].items()):
        print(f"  {name:28s} {entry['seconds'] * 1000:9.3f} ms")
    for name, ratio in sorted(report["speedups"].items()):
        print(f"  {name:36s} {ratio:6.2f}x")
    sweep = report["campaign"]
    print(f"  campaign: {sweep['samples']} samples, "
          f"{sweep['samples_per_second']:.2f}/s, "
          f"store build {sweep['store_build_seconds'] * 1000:.1f} ms")
    overhead = report["telemetry_overhead"]
    print(f"  telemetry: disabled {overhead['disabled_vs_baseline']:.4f}x "
          f"baseline, enabled {overhead['enabled_vs_disabled']:.2f}x "
          f"disabled, {overhead['events_captured']} events")
    stream_section = report["streaming_digest"]
    print(f"  streaming: {stream_section['file_bytes'] >> 20} MiB close "
          f"{stream_section['seconds_close_streamed'] * 1000:.1f} ms "
          f"streamed vs {stream_section['seconds_close_whole'] * 1000:.1f}"
          f" ms whole ({stream_section['close_speedup']:.1f}x)")
    persistence = report["store_persistence"]
    largest = persistence["scaling"][-1]
    print(f"  store: {largest['files']} files reopen "
          f"{largest['open_seconds'] * 1000:.2f} ms "
          f"({largest['open_vs_rebuild']:.0f}x vs rebuild), "
          f"{largest['lookups_per_second']:.0f} lookups/s, "
          f"{largest['resident']}/{largest['hot_entries']} resident")
    resilience = report["ingest_resilience"]
    print(f"  ingest: {resilience['endpoints']} endpoints, "
          f"faulted/fault-free ratio {resilience['throughput_ratio']:.2f}, "
          f"{resilience['restarts']} restarts, "
          f"{resilience['sheds']} sheds observed")
    ok = all(report["invariants"].values()) and not problems
    for problem in problems:
        print(f"  schema problem: {problem}")
    print(f"  invariants: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
