"""ISSUE 2 — batched sdhash compare vs the scalar per-pair loop.

The acceptance bar is a ≥5× speedup on 32-filter digests (multi-hundred-
KB documents) with bit-identical scores; the equivalence itself is pinned
by tests/test_simhash_vectorised.py, this file pins the speed.
"""

import pytest

from run_bench import _digest_with_filters
from repro.simhash.sdhash import compare, compare_scalar


@pytest.fixture(scope="module")
def digests():
    a = _digest_with_filters(32)
    b = _digest_with_filters(32)
    return a, b


def test_bench_compare_batched_32f(benchmark, digests):
    a, b = digests
    score = benchmark(compare, a, b)
    assert score == compare_scalar(a, b)


def test_bench_compare_scalar_32f(benchmark, digests):
    a, b = digests
    benchmark.pedantic(compare_scalar, args=digests, rounds=3, iterations=1)


def test_batched_speedup_at_least_5x(digests):
    import time
    a, b = digests

    def best_of(fn, n):
        times = []
        for _ in range(n):
            started = time.perf_counter()
            fn(a, b)
            times.append(time.perf_counter() - started)
        return min(times)

    compare(a, b)  # warm the packed-matrix caches
    scalar = best_of(compare_scalar, 3)
    batched = best_of(compare, 5)
    assert scalar / batched >= 5.0, f"only {scalar / batched:.1f}x"
