"""Ablations: the §V-C CTB-Locker rerun + indicator-isolation sweep.

Shape targets: removing the sub-512-byte files collapses CTB-Locker's
files-lost count by roughly 4× (paper: 29 → 7); each indicator alone is
either slower or noisier than the full union configuration.
"""

import pytest

from repro.experiments import (TINY, run_ctb_small_file_rerun,
                               run_indicator_ablation)


@pytest.fixture(scope="module")
def ctb(scale):
    return run_ctb_small_file_rerun(scale)


@pytest.fixture(scope="module")
def ablation():
    return run_indicator_ablation(TINY)


def test_bench_ctb_small_file_rerun(benchmark, scale):
    result = benchmark.pedantic(lambda: run_ctb_small_file_rerun(scale),
                                rounds=1, iterations=1)
    print()
    print(result.render())


def test_bench_indicator_ablation(benchmark):
    result = benchmark.pedantic(lambda: run_indicator_ablation(TINY),
                                rounds=1, iterations=1)
    print()
    print(result.render())


class TestCtbRerunShape:
    def test_small_files_inflate_losses(self, ctb, scale):
        if scale.per_family is not None:
            pytest.skip("needs the full small-file population")
        # paper: 29 with vs 7 without; our corpus keeps the direction
        # and a substantial gap (the exact factor depends on how many
        # borderline 512B-1KB files the generator draws)
        assert ctb.lost_without_small <= ctb.lost_with_small * 0.65

    def test_plenty_of_small_files_removed(self, ctb, scale):
        if scale.per_family is not None:
            pytest.skip("needs the full corpus")
        assert ctb.small_files_removed >= 15


class TestAblationShape:
    def test_full_config_detects_everything(self, ablation):
        assert ablation.row("full").detection_rate == 1.0

    def test_full_config_quiet_on_benign(self, ablation):
        assert ablation.row("full").benign_flagged == 0

    def test_secondary_only_misses_class_a(self, ablation):
        """Deletion + funneling alone cannot convict in-place
        encryptors: detection rate collapses."""
        assert ablation.row("secondary_only").detection_rate < \
            ablation.row("full").detection_rate

    def test_single_indicators_slower_or_blind(self, ablation):
        full = ablation.row("full")
        for name in ("entropy_only", "type_change_only",
                     "similarity_only"):
            row = ablation.row(name)
            assert (row.detection_rate < 1.0
                    or row.median_files_lost >= full.median_files_lost), name

    def test_no_union_never_faster(self, ablation):
        assert ablation.row("no_union").median_files_lost >= \
            ablation.row("full").median_files_lost

    def test_ctph_backend_works_too(self, ablation):
        row = ablation.row("ctph_backend")
        assert row.detection_rate == 1.0


# ---------------------------------------------------------------------------
# §V-C future work: dynamic scoring
# ---------------------------------------------------------------------------

from repro.experiments import run_dynamic_scoring  # noqa: E402


@pytest.fixture(scope="module")
def dynamic(scale):
    return run_dynamic_scoring(scale)


def test_bench_dynamic_scoring(benchmark, scale):
    result = benchmark.pedantic(lambda: run_dynamic_scoring(scale),
                                rounds=1, iterations=1)
    print()
    print(result.render())


class TestDynamicScoringShape:
    def test_small_file_sweep_convicts_sooner(self, dynamic):
        assert dynamic.ctb_lost_dynamic < dynamic.ctb_lost_static

    def test_word_and_mogrify_stay_zero(self, dynamic):
        assert dynamic.benign_scores_dynamic["WINWORD.EXE"] == 0.0
        assert dynamic.benign_scores_dynamic["mogrify.exe"] == 0.0

    def test_no_new_benign_flags(self, dynamic):
        assert all(score < 200.0
                   for score in dynamic.benign_scores_dynamic.values())
