"""ISSUE 2 — the single-digest close path, measured and counter-verified.

The close-heavy campaign rewrites the same documents repeatedly: the
workload whose steady state the digest LRU turns from digest-per-close
into lookup-per-close.  Beyond raw time, the counter assertions pin the
tentpole's invariant: each closed version is digested at most once, so
``bytes_digested`` never exceeds ``bytes_closed`` plus the one-off
baseline captures.
"""

import pytest

from run_bench import close_heavy_campaign

_CAMPAIGN = dict(n_files=24, rewrites=6, payload=48 * 1024)


def test_bench_close_heavy_cached(benchmark):
    _, stats = benchmark.pedantic(
        lambda: close_heavy_campaign(**_CAMPAIGN), rounds=3, iterations=1)
    assert stats.single_digest_holds


def test_bench_close_heavy_uncached(benchmark):
    _, stats = benchmark.pedantic(
        lambda: close_heavy_campaign(**_CAMPAIGN, digest_cache_entries=0),
        rounds=3, iterations=1)
    # no cache → every close digests, but still exactly once per close
    assert stats.digest_cache_hits == 0


class TestSingleDigestCounters:
    @pytest.fixture(scope="class")
    def campaign(self):
        return close_heavy_campaign(**_CAMPAIGN)

    def test_bytes_digested_le_bytes_closed(self, campaign):
        _, stats = campaign
        assert stats.bytes_digested <= stats.bytes_closed

    def test_only_baselines_were_digested(self, campaign):
        # the rewrites reuse content: only the initial per-file baseline
        # capture should ever have digested anything
        _, stats = campaign
        assert stats.bytes_digested == (_CAMPAIGN["n_files"]
                                        * _CAMPAIGN["payload"])

    def test_steady_state_closes_all_hit(self, campaign):
        _, stats = campaign
        n_closes = _CAMPAIGN["n_files"] * _CAMPAIGN["rewrites"]
        assert stats.op_counts["close"] == n_closes
        assert stats.digest_cache_hits == n_closes

    def test_cache_beats_no_cache(self, campaign):
        cached_s, _ = campaign
        uncached_s, _ = close_heavy_campaign(**_CAMPAIGN,
                                             digest_cache_entries=0)
        assert uncached_s / cached_s >= 2.0
