"""§V-E — PoshCoder: script malware vs signatures vs CryptoDrop.

Shape targets (matched exactly by construction of the AV model, measured
end-to-end here): 8/57 engines detect the script, a one-character change
blinds two of them, the held-out polymorphic variant goes undetected by
signatures — and CryptoDrop convicts the script after ~10 files without
ever reading its code.
"""

import pytest

from repro.experiments import run_scripts_experiment


@pytest.fixture(scope="module")
def scripts(scale):
    return run_scripts_experiment(scale)


def test_bench_scripts_experiment(benchmark, scale):
    result = benchmark.pedantic(lambda: run_scripts_experiment(scale),
                                rounds=1, iterations=1)
    print()
    print(result.render())


class TestScriptsShape:
    def test_minority_av_coverage(self, scripts):
        assert scripts.original_scan.count == 8          # paper: 8/57
        assert scripts.original_scan.total_engines == 57

    def test_one_char_mutation_sheds_engines(self, scripts):
        assert scripts.engines_lost == 2                 # paper: 2

    def test_polymorphic_variant_evades_signatures(self, scripts):
        assert scripts.unseen_virlock_detections <= 2

    def test_conventional_variant_still_signed(self, scripts):
        assert scripts.unseen_teslacrypt_detections > \
            scripts.unseen_virlock_detections + 10

    def test_cryptodrop_indifferent_to_packaging(self, scripts):
        assert scripts.cryptodrop_detected
        assert scripts.cryptodrop_files_lost <= 15       # paper: 11
