"""Figure 3 — cumulative % of samples detected vs files lost.

The paper's curve: median 10, every sample detected with ≤ 33 files
lost, and a fast-rising front (union-indication samples convicted within
a handful of files).
"""

import pytest

from repro.experiments import run_fig3


@pytest.fixture(scope="module")
def fig3(campaign, scale):
    return run_fig3(scale, campaign=campaign)


def test_bench_regenerate_fig3(benchmark, campaign, scale):
    result = benchmark.pedantic(
        lambda: run_fig3(scale, campaign=campaign), rounds=1, iterations=1)
    print()
    print(result.render())


class TestFig3Shape:
    def test_median_near_ten(self, fig3):
        assert 6 <= fig3.median <= 14                       # paper: 10

    def test_everything_detected_within_bound(self, fig3):
        assert fig3.maximum <= 45                           # paper: 33
        assert fig3.fraction_detected_within(fig3.maximum) == \
            pytest.approx(1.0)

    def test_fast_front_exists(self, fig3):
        """A solid block of samples is caught within 5 files (the union
        fast path the paper highlights)."""
        assert fig3.fraction_detected_within(5) >= 0.10

    def test_curve_is_a_cdf(self, fig3):
        fractions = [frac for _x, frac in fig3.points]
        assert fractions == sorted(fractions)
        losses = [x for x, _frac in fig3.points]
        assert losses == sorted(losses)

    def test_majority_within_paper_median_band(self, fig3):
        assert fig3.fraction_detected_within(14) >= 0.5
