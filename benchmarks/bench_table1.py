"""Table I — the 492-sample campaign, by family and class.

Regenerates the paper's central table and asserts its shape: 100%
detection, overall median ≈ 10 files lost, losses bounded near the
paper's 0–33 range, and the family ordering (CTB-Locker slowest to
convict, Xorist/CryptoTorLocker fastest).
"""

import pytest

from repro.experiments import PAPER_TABLE1, run_table1


@pytest.fixture(scope="module")
def table1(campaign, scale):
    return run_table1(scale, campaign=campaign)


def test_bench_regenerate_table1(benchmark, campaign, scale):
    result = benchmark.pedantic(
        lambda: run_table1(scale, campaign=campaign),
        rounds=1, iterations=1)
    print()
    print(result.render())


class TestTable1Shape:
    def test_every_sample_detected(self, table1):
        assert table1.campaign.detection_rate == 1.0   # paper: 100%

    def test_overall_median_near_paper(self, table1):
        assert 6 <= table1.campaign.median_files_lost <= 14  # paper: 10

    def test_loss_range_near_paper(self, table1):
        assert table1.campaign.min_files_lost == 0           # paper: 0
        assert table1.campaign.max_files_lost <= 45          # paper: 33

    def test_family_composition_exact(self, table1, scale):
        if scale.per_family is not None:
            pytest.skip("exact counts need the full cohort")
        for row in table1.rows:
            a, b, c, total, _ = PAPER_TABLE1[row.family]
            assert (row.class_a, row.class_b, row.class_c, row.total) == \
                (a, b, c, total), row.family

    def test_ctb_locker_is_slowest_family(self, full_scale_only, table1):
        medians = {r.family: r.median_files_lost for r in table1.rows}
        assert medians["ctb-locker"] == max(medians.values())

    def test_fast_families_fastest(self, table1):
        medians = {r.family: r.median_files_lost for r in table1.rows}
        assert medians["xorist"] <= 6
        assert medians["cryptotorlocker2015"] <= 6

    def test_gpcode_slow_like_paper(self, table1):
        medians = {r.family: r.median_files_lost for r in table1.rows}
        assert medians["gpcode"] >= 15                       # paper: 22

    def test_family_medians_track_paper_ordering(self, table1):
        """Spearman-style check: families the paper found slow should be
        slow here too (rank correlation > 0.5)."""
        ours, paper = [], []
        for row in table1.rows:
            ours.append(row.median_files_lost)
            paper.append(PAPER_TABLE1[row.family][4])

        def ranks(values):
            order = sorted(range(len(values)), key=lambda i: values[i])
            out = [0.0] * len(values)
            for rank, idx in enumerate(order):
                out[idx] = float(rank)
            return out

        ra, rb = ranks(ours), ranks(paper)
        n = len(ra)
        d2 = sum((x - y) ** 2 for x, y in zip(ra, rb))
        rho = 1 - (6 * d2) / (n * (n * n - 1))
        assert rho > 0.5, f"rank correlation {rho:.2f}"
