"""§V-B2 — union indicator effectiveness.

Shape targets: a large majority of samples reach union indication
(paper: 93%); the Class C population splits into linkable move-over
samples (which still union) and delete-disposal evaders caught by
entropy + deletion at a median near 6 files.
"""

import pytest

from repro.experiments import run_union_effect


@pytest.fixture(scope="module")
def union(campaign, scale):
    return run_union_effect(scale, campaign=campaign)


def test_bench_regenerate_union_accounting(benchmark, campaign, scale):
    result = benchmark.pedantic(
        lambda: run_union_effect(scale, campaign=campaign),
        rounds=1, iterations=1)
    print()
    print(result.render())


class TestUnionShape:
    def test_union_rate_high(self, full_scale_only, union):
        assert union.union_rate >= 0.75            # paper: 0.93

    def test_class_c_split_exists(self, union):
        assert union.class_c_linkable()
        assert union.class_c_evaders()

    def test_linkable_majority_reach_union(self, union):
        linkable = union.class_c_linkable()
        fired = sum(1 for r in linkable if r.union_fired)
        assert fired / len(linkable) >= 0.8

    def test_evaders_never_union(self, union):
        assert all(not r.union_fired for r in union.class_c_evaders())

    def test_evaders_still_convicted_quickly(self, union):
        """Paper: the 22 evaders were caught at a median of 6 files."""
        assert all(r.detected for r in union.class_c_evaders())
        assert union.evader_median_files_lost() <= 12

    def test_union_samples_faster_than_non_union(self, full_scale_only, union):
        import statistics
        with_union = [r.files_lost for r in union.working if r.union_fired]
        without = [r.files_lost for r in union.working
                   if not r.union_fired]
        if with_union and without:
            assert statistics.median(with_union) <= \
                statistics.median(without)
