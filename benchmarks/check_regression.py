"""Compare a fresh bench report against the committed baseline.

``make bench-check`` runs the harness into a scratch file and calls this
script; it exits non-zero when any named hot path regressed more than the
threshold (default 25%) against the baseline, printing a per-path table
either way.  Speedups getting *faster* never fail the check.

The ``store_persistence`` scaling sweep is gated per size tier: each
store size present in both reports is compared on its reopen time like a
hot path (the headline largest-tier time is already gated via
``hot_paths[store_open]``; the per-tier check catches a regression that
only bites at small or mid scale).

The baseline defaults to the newest committed ``BENCH_<N>.json`` (highest
``N``), so landing a new bench generation retargets the gate without
touching this script; ``--baseline`` still pins an explicit file.

Scales must match: comparing a ``--smoke`` run against a full-scale
baseline is meaningless and is rejected up front.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_THRESHOLD = 0.25


def newest_baseline(root: Path = REPO_ROOT) -> Path:
    """The committed ``BENCH_<N>.json`` with the highest generation."""
    generations = []
    for path in root.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            generations.append((int(match.group(1)), path))
    if not generations:
        raise FileNotFoundError(f"no BENCH_<N>.json baseline in {root}")
    return max(generations)[1]


def compare_reports(baseline: dict, current: dict,
                    threshold: float = DEFAULT_THRESHOLD) -> list:
    """Regressions as ``(name, baseline_s, current_s, ratio)`` tuples.

    A hot path regresses when its current time exceeds the baseline by
    more than ``threshold`` (0.25 → 25% slower).  Paths present only in
    one report are ignored — adding a new bench must not fail the gate
    retroactively.
    """
    if baseline.get("scale") != current.get("scale"):
        raise ValueError(
            f"scale mismatch: baseline {baseline.get('scale')!r} vs "
            f"current {current.get('scale')!r}")
    regressions = []
    base_paths = baseline.get("hot_paths", {})
    for name, entry in sorted(current.get("hot_paths", {}).items()):
        base = base_paths.get(name)
        if base is None:
            continue
        base_s, cur_s = base["seconds"], entry["seconds"]
        if base_s <= 0:
            continue
        ratio = cur_s / base_s
        if ratio > 1.0 + threshold:
            regressions.append((name, base_s, cur_s, ratio))
    regressions.extend(compare_store_scaling(baseline, current, threshold))
    return regressions


def compare_store_scaling(baseline: dict, current: dict,
                          threshold: float) -> list:
    """Per-tier reopen-time regressions in the store persistence sweep.

    Tiers are matched by entry count; tiers present in only one report
    are ignored, same as hot paths.
    """
    base_legs = {leg["files"]: leg for leg in
                 (baseline.get("store_persistence") or {})
                 .get("scaling", [])}
    regressions = []
    for leg in (current.get("store_persistence") or {}).get("scaling", []):
        base = base_legs.get(leg["files"])
        if base is None or base["open_seconds"] <= 0:
            continue
        ratio = leg["open_seconds"] / base["open_seconds"]
        if ratio > 1.0 + threshold:
            regressions.append((f"store_open[{leg['files']}]",
                                base["open_seconds"], leg["open_seconds"],
                                ratio))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline report (default: newest committed "
                             "BENCH_<N>.json)")
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="fractional slowdown that fails (0.25 = 25%%)")
    args = parser.parse_args(argv)
    baseline_path = args.baseline or newest_baseline()
    baseline = json.loads(baseline_path.read_text())
    current = json.loads(args.current.read_text())
    if not isinstance(baseline.get("speedups"), dict):
        # A baseline without its speedups section is corrupt or truncated;
        # silently passing against it would hide real regressions.
        print(f"error: baseline {baseline_path.name} has no 'speedups' "
              f"section — regenerate it with benchmarks/run_bench.py",
              file=sys.stderr)
        return 2
    try:
        regressions = compare_reports(baseline, current, args.threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    base_paths = baseline.get("hot_paths", {})
    for name, entry in sorted(current.get("hot_paths", {}).items()):
        base = base_paths.get(name)
        if base is None:
            print(f"  {name:28s} {entry['seconds'] * 1000:9.3f} ms   (new)")
            continue
        ratio = entry["seconds"] / base["seconds"]
        flag = "REGRESSED" if ratio > 1.0 + args.threshold else "ok"
        print(f"  {name:28s} {base['seconds'] * 1000:9.3f} -> "
              f"{entry['seconds'] * 1000:9.3f} ms  {ratio:5.2f}x  {flag}")
    base_legs = {leg["files"]: leg for leg in
                 (baseline.get("store_persistence") or {})
                 .get("scaling", [])}
    for leg in (current.get("store_persistence") or {}).get("scaling", []):
        name = f"store_open[{leg['files']}]"
        base = base_legs.get(leg["files"])
        if base is None:
            print(f"  {name:28s} {leg['open_seconds'] * 1000:9.3f} ms   "
                  "(new)")
            continue
        ratio = leg["open_seconds"] / base["open_seconds"]
        flag = "REGRESSED" if ratio > 1.0 + args.threshold else "ok"
        print(f"  {name:28s} {base['open_seconds'] * 1000:9.3f} -> "
              f"{leg['open_seconds'] * 1000:9.3f} ms  {ratio:5.2f}x  "
              f"{flag}")
    if regressions:
        print(f"{len(regressions)} hot path(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("no hot-path regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
