"""Figure 4 — directory-access trees for three contrasting samples.

Shape targets from §V-C: TeslaCrypt works the deepest directories first;
CTB-Locker hops directories following global file size; GPcode sweeps
top-down from the root and — for the 2008 Class C build — loses zero
files thanks to its broken deletion path on read-only files.
"""

import pytest

from repro.experiments import run_fig4


@pytest.fixture(scope="module")
def fig4(scale):
    return run_fig4(scale)


def test_bench_regenerate_fig4(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig4(scale),
                                rounds=1, iterations=1)
    print()
    print(result.render())


class TestFig4Shape:
    def test_teslacrypt_deepest_first(self, fig4):
        tesla = fig4.by_family("teslacrypt")
        assert tesla.mean_touched_depth > fig4.corpus_mean_depth

    def test_ctb_locker_directory_oblivious(self, fig4):
        """Size-ascending attack scatters across many directories."""
        ctb = fig4.by_family("ctb-locker")
        assert ctb.touched_dirs >= 8

    def test_gpcode_top_down(self, fig4):
        gpcode = fig4.by_family("gpcode")
        assert gpcode.mean_touched_depth < fig4.corpus_mean_depth

    def test_gpcode_read_only_quirk(self, fig4):
        """'This sample ... did not modify or delete any of our test
        files before being detected' (§V-C)."""
        gpcode = fig4.by_family("gpcode")
        assert gpcode.behavior_class == "C"
        assert gpcode.files_lost == 0

    def test_all_three_detected_early(self, fig4):
        for sample in fig4.samples:
            assert sample.result.detected
            assert sample.touched_dirs < sample.total_dirs
