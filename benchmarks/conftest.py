"""Benchmark configuration.

Every bench regenerates one of the paper's tables/figures at full paper
scale (5,099-file corpus, all 492 samples) by default.  Set
``REPRO_BENCH_SCALE=small`` for a faster structural pass.  The cohort
campaign is executed once and shared across benches via the experiment
cache.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import FULL, SMALL, campaign_at_scale


def bench_scale():
    return SMALL if os.environ.get("REPRO_BENCH_SCALE") == "small" else FULL


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def campaign(scale):
    """The one big cohort sweep every table/figure reads from."""
    return campaign_at_scale(scale)


@pytest.fixture
def full_scale_only(scale):
    """Skip shape assertions whose constants are calibrated to the paper's
    full corpus (small-scale corpora have different small-file statistics)."""
    if scale.per_family is not None:
        pytest.skip("shape constant calibrated for full paper scale")
