"""sdhash internals: anchoring, feature selection, digest geometry."""

import random

import pytest

from repro.simhash import MAX_FEATURES, WINDOW, sdhash
from repro.simhash.sdhash import (ANCHOR_MASK, MIN_FEATURE_ENTROPY,
                                  _anchor_positions, _select_features)

import numpy as np


def _buf(data):
    return np.frombuffer(bytes(data), dtype=np.uint8)


class TestAnchoring:
    def test_density_near_one_sixteenth(self):
        data = random.Random(0).randbytes(100000)
        starts = _anchor_positions(_buf(data))
        density = starts.size / len(data)
        assert 1 / 24 < density < 1 / 11   # expectation 1/16

    def test_anchors_are_shift_invariant(self):
        """The same byte run anchors the same windows at any offset —
        the property fixed-stride scanning lacks."""
        shared = random.Random(1).randbytes(4000)
        a = b"x" * 7 + shared          # arbitrary, non-16-aligned prefix
        b = b"y" * 123 + shared
        wa = {bytes(a[s:s + WINDOW]) for s in _anchor_positions(_buf(a))
              if s >= 7 + 8}
        wb = {bytes(b[s:s + WINDOW]) for s in _anchor_positions(_buf(b))
              if s >= 123 + 8}
        overlap = len(wa & wb) / max(1, min(len(wa), len(wb)))
        assert overlap > 0.8

    def test_too_short_input_no_anchors(self):
        assert _anchor_positions(_buf(b"tiny")).size == 0

    def test_anchors_leave_room_for_window(self):
        data = random.Random(2).randbytes(3000)
        starts = _anchor_positions(_buf(data))
        assert all(s + WINDOW <= len(data) for s in starts)

    def test_mask_controls_density(self):
        # the configured mask implies the 1/(mask+1) expectation
        assert ANCHOR_MASK == 15


class TestFeatureSelection:
    def test_zero_regions_yield_no_features(self):
        features = _select_features(bytes(5000))
        assert features == []

    def test_features_meet_entropy_floor(self):
        from repro.entropy import shannon_entropy
        data = bytes(1000) + random.Random(3).randbytes(3000) + bytes(1000)
        for feature in _select_features(data):
            assert shannon_entropy(feature) >= MIN_FEATURE_ENTROPY

    def test_features_are_window_sized(self):
        data = random.Random(4).randbytes(4000)
        features = _select_features(data)
        assert features and all(len(f) == WINDOW for f in features)

    def test_selection_deterministic(self):
        data = random.Random(5).randbytes(6000)
        assert _select_features(data) == _select_features(data)


class TestDigestGeometry:
    def test_filter_chaining_respects_capacity(self):
        big = random.Random(6).randbytes(400000)
        digest = sdhash(big)
        assert len(digest) >= 2
        for filt in digest.filters[:-1]:
            assert filt.count == MAX_FEATURES
        assert 0 < digest.filters[-1].count <= MAX_FEATURES

    def test_feature_count_recorded(self):
        data = random.Random(7).randbytes(20000)
        digest = sdhash(data)
        assert digest.n_features == sum(f.count for f in digest.filters)
        assert digest.source_len == len(data)

    def test_hexdigest_stable_and_distinct(self):
        a = sdhash(random.Random(8).randbytes(5000))
        b = sdhash(random.Random(9).randbytes(5000))
        assert a.hexdigest() != b.hexdigest()
        assert len(a.hexdigest()) == 40
