"""Magic-number identification."""

import random

import pytest

from repro.corpus import content
from repro.magic import DATA, EMPTY, Category, FileType, identify, \
    identify_name


@pytest.fixture(scope="module")
def rng():
    return random.Random(42)


class TestSignatureFormats:
    @pytest.mark.parametrize("maker,expected", [
        (content.make_pdf, "pdf"),
        (content.make_docx, "docx"),
        (content.make_xlsx, "xlsx"),
        (content.make_pptx, "pptx"),
        (content.make_odt, "odt"),
        (content.make_doc, "doc"),
        (content.make_xls, "xls"),
        (content.make_ppt, "ppt"),
        (content.make_rtf, "rtf"),
        (content.make_jpeg, "jpg"),
        (content.make_png, "png"),
        (content.make_gif, "gif"),
        (content.make_bmp, "bmp"),
        (content.make_mp3, "mp3"),
        (content.make_wav, "wav"),
        (content.make_m4a, "m4a"),
        (content.make_flac, "flac"),
        (content.make_sqlite, "sqlite"),
    ])
    def test_generated_content_identified(self, rng, maker, expected):
        data = maker(random.Random(7), 12000)
        assert identify_name(data) == expected

    def test_plain_zip_not_misidentified_as_office(self):
        import io
        import zipfile
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            zf.writestr("readme.txt", "plain archive")
        assert identify_name(buf.getvalue()) == "zip"

    def test_sevenzip_magic(self):
        assert identify_name(b"7z\xbc\xaf\x27\x1c" + bytes(100)) == "7z"

    def test_exe_magic(self):
        assert identify_name(b"MZ\x90\x00" + bytes(100)) == "exe"

    def test_gzip_magic(self):
        import gzip
        assert identify_name(gzip.compress(b"payload")) == "gzip"


class TestTextHeuristics:
    def test_plain_text(self, rng):
        assert identify_name(content.make_txt(rng, 2000)) == "txt"

    def test_markdown(self, rng):
        assert identify_name(content.make_md(rng, 2000)) == "md"

    def test_csv(self, rng):
        assert identify_name(content.make_csv(rng, 2000)) == "csv"

    def test_html(self, rng):
        assert identify_name(content.make_html(rng, 2000)) == "html"

    def test_xml(self, rng):
        assert identify_name(content.make_xml(rng, 2000)) == "xml"

    def test_text_with_binary_bytes_is_data(self):
        blob = b"looks like text until" + bytes(range(256)) * 8
        assert identify(blob) is DATA


class TestCiphertextAndEdges:
    def test_random_bytes_identify_as_data(self):
        noise = random.Random(1).randbytes(4096)
        assert identify(noise) is DATA

    def test_encrypted_document_identifies_as_data(self, rng):
        from repro.crypto import chacha20_xor
        doc = content.make_docx(rng, 9000)
        cipher = chacha20_xor(bytes(32), bytes(12), doc)
        assert identify(cipher) is DATA

    def test_empty_is_empty(self):
        assert identify(b"") is EMPTY

    def test_single_byte(self):
        assert identify(b"A").name in ("txt", "data")

    def test_only_prefix_inspected(self, rng):
        # appending garbage after a valid header must not change the type
        pdf = content.make_pdf(rng, 4000)
        assert identify_name(pdf + random.Random(2).randbytes(100000)) == "pdf"

    def test_truncated_container_keeps_magic(self, rng):
        docx = content.make_docx(rng, 9000)
        # even a ransomware-truncated docx still *starts* like a zip
        assert identify_name(docx[:2000]) in ("docx", "zip")


class TestFileTypeObjects:
    def test_categories_assigned(self):
        from repro.magic import FILE_TYPES
        assert FILE_TYPES["pdf"].category == Category.DOCUMENT
        assert FILE_TYPES["xlsx"].category == Category.SPREADSHEET
        assert FILE_TYPES["jpg"].category == Category.IMAGE
        assert FILE_TYPES["mp3"].category == Category.AUDIO

    def test_high_entropy_hints(self):
        from repro.magic import FILE_TYPES
        assert FILE_TYPES["docx"].is_high_entropy
        assert not FILE_TYPES["txt"].is_high_entropy

    def test_filetype_is_hashable_value_object(self):
        a = FileType("x", "X file", Category.DATA)
        b = FileType("x", "X file", Category.DATA)
        assert a == b and hash(a) == hash(b)
