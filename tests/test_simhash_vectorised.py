"""Golden equivalence of the vectorised sdhash paths to the scalar ones.

The vectorised feature selector, digest builder, and batched all-pairs
compare must be *bit-identical* to the scalar reference implementations —
identical hexdigests, identical integer scores — over diverse corpora:
text, random bytes, compressed data, zero padding, and multi-filter
(300 KB+) documents.  Any last-ulp float divergence in the entropy
selection or any popcount discrepancy in the compare shows up here.
"""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.wordlists import paragraphs
from repro.simhash.bloom import BloomFilter, feature_positions, packed_popcount
from repro.simhash.sdhash import (SdDigest, _select_features,
                                  _select_features_scalar, compare,
                                  compare_scalar, sdhash, sdhash_scalar)


def _corpus():
    rng = random.Random(2024)
    samples = [
        paragraphs(rng, 4000).encode(),
        paragraphs(rng, 20000).encode(),
        paragraphs(rng, 300_000).encode(),          # multi-filter
        rng.randbytes(600),
        rng.randbytes(8192),
        rng.randbytes(70_000),
        zlib.compress(paragraphs(rng, 30000).encode()),
        paragraphs(rng, 3000).encode() + bytes(4000),
        bytes(2048),                                 # all zeros: no features
        paragraphs(rng, 2000).encode() * 3,          # repetitive
    ]
    # near-duplicates: high (not near-zero) scores exercise the formula
    base = paragraphs(rng, 15000).encode()
    samples.append(base[:7000] + b"edited here" + base[7000:])
    return samples


CORPUS = _corpus()


@pytest.mark.parametrize("idx", range(len(CORPUS)))
def test_feature_selection_identical(idx):
    data = CORPUS[idx]
    assert _select_features(data) == _select_features_scalar(data)


@pytest.mark.parametrize("idx", range(len(CORPUS)))
def test_digest_identical(idx):
    data = CORPUS[idx]
    vec = sdhash(data)
    ref = sdhash_scalar(data)
    if ref is None:
        assert vec is None
        return
    assert vec.hexdigest() == ref.hexdigest()
    assert vec.n_features == ref.n_features
    assert len(vec) == len(ref)


def test_multi_filter_digest_spans_filters():
    digest = sdhash(CORPUS[2])
    assert digest is not None and len(digest) >= 2


def test_all_pairs_compare_identical():
    digests = [sdhash(d) for d in CORPUS]
    for a in digests:
        for b in digests:
            assert compare(a, b) == compare_scalar(a, b)


def test_compare_against_golden_values():
    # identity is 100; unrelated random blobs are near zero
    text = sdhash(CORPUS[1])
    assert compare(text, text) == 100
    assert compare(text, sdhash(CORPUS[5])) <= 5
    # a light edit keeps a high score
    base = sdhash(CORPUS[0])
    edited = sdhash(CORPUS[0][:2000] + b"x" + CORPUS[0][2000:])
    assert compare(base, edited) >= 80


def test_feature_positions_match_scalar_bloom():
    import hashlib

    import numpy as np
    features = _select_features(CORPUS[0])[:50]
    raw = b"".join(hashlib.sha1(f).digest() for f in features)
    rows = feature_positions(
        np.frombuffer(raw, dtype=np.uint8).reshape(len(features), 20))
    for feature, row in zip(features, rows):
        assert sorted(BloomFilter.positions(
            hashlib.sha1(feature).digest())) == sorted(row.tolist())


def test_packed_popcount_matches_bits():
    filt = BloomFilter()
    rng = random.Random(5)
    for _ in range(80):
        filt.add(rng.randbytes(20))
    assert packed_popcount(filt.packed()) == int(filt.bits.sum())


def test_state_roundtrip_preserves_packed_matrix():
    digest = sdhash(CORPUS[2])
    clone = SdDigest.from_state(digest.to_state())
    assert clone.hexdigest() == digest.hexdigest()
    assert compare(clone, digest) == 100


# ---------------------------------------------------------------------------
# property: compare is symmetric on both paths
# ---------------------------------------------------------------------------

_blob = st.binary(min_size=0, max_size=6000)


@settings(max_examples=40, deadline=None)
@given(seed_a=st.integers(0, 2**16), seed_b=st.integers(0, 2**16),
       size_a=st.integers(512, 24_000), size_b=st.integers(512, 24_000))
def test_compare_symmetric_random_corpora(seed_a, seed_b, size_a, size_b):
    a = sdhash(random.Random(seed_a).randbytes(size_a)
               + paragraphs(random.Random(seed_a), size_a).encode())
    b = sdhash(random.Random(seed_b).randbytes(size_b)
               + paragraphs(random.Random(seed_b), size_b).encode())
    assert compare(a, b) == compare(b, a)
    assert compare_scalar(a, b) == compare_scalar(b, a)
    assert compare(a, b) == compare_scalar(a, b)


@settings(max_examples=25, deadline=None)
@given(data=_blob)
def test_digest_equivalence_arbitrary_bytes(data):
    vec = sdhash(data)
    ref = sdhash_scalar(data)
    if ref is None:
        assert vec is None
    else:
        assert vec.hexdigest() == ref.hexdigest()
