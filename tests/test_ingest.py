"""Resilient multi-endpoint ingest: the chaos matrix.

Every ingest fault kind (poison event, queue stall, shard kill) crossed
with breaker on/off and watchdog on/off, asserting the two invariants
the layer exists for:

* **verdict identity** — post-fault (and post-restart) verdicts are
  bit-identical to an unfaulted reference session, except for the one
  documented loss mode: a killed shard with no watchdog is abandoned;
* **bulkhead isolation** — no tenant-tagged telemetry event ever
  appears on another tenant's bus, and untouched tenants' verdicts are
  unchanged.

Plus unit coverage for the queue/shed/breaker/watchdog pieces, the
graceful-shutdown flush pin (a digest queued just before close must
land in the final state), the transient-error taxonomy, and the
campaign dispatcher's deterministic retry backoff.
"""

from __future__ import annotations

import pytest

from repro.core import CryptoDropMonitor
from repro.core.config import CryptoDropConfig
from repro.corpus import generate
from repro.faults import (FaultPlan, MonitorSupervisor, PoisonedEvent,
                          ingest_chaos, transient_faults)
from repro.fs import VirtualFileSystem, DOCUMENTS
from repro.fs.errors import (FileNotFound, FsError, InvalidHandle,
                             OperationDenied, ProcessSuspended, is_transient)
from repro.ingest import (Admission, BoundedIngestQueue, CircuitBreaker,
                          EndpointEvent, EndpointSessionManager,
                          HeartbeatWatchdog, ShedPolicy,
                          record_endpoint_stream)
from repro.ransomware import working_cohort
from repro.sandbox.parallel import retry_backoff_s
from repro.telemetry import TelemetrySession, ingest_snapshot
from repro.trace import TraceRecord

pytestmark = pytest.mark.chaos

TELEMETRY = CryptoDropConfig(telemetry_enabled=True)


@pytest.fixture(scope="module")
def ingest_corpus():
    # private tiny corpus: each tenant plants its own machine, so the
    # session-scoped 420-file corpus would dominate the matrix runtime
    return generate(4242, 60, 8)


@pytest.fixture(scope="module")
def streams(ingest_corpus):
    cohort = working_cohort(base_seed=0)
    return {
        f"tenant-{i}": record_endpoint_stream(
            ingest_corpus, cohort[i * 7], seed=i, max_events=260)
        for i in range(3)
    }


def run_session(corpus, streams, fault_map=None, breaker=True,
                watchdog=True, **kwargs):
    manager = EndpointSessionManager(
        corpus, config=TELEMETRY, breaker=breaker, watchdog=watchdog,
        checkpoint_every=kwargs.pop("checkpoint_every", 16), **kwargs)
    fault_map = fault_map or {}
    for tenant in sorted(streams):
        manager.add_endpoint(tenant, streams[tenant],
                             fault_plan=fault_map.get(tenant))
    report = manager.run()
    return manager, report


@pytest.fixture(scope="module")
def reference(ingest_corpus, streams):
    """The unfaulted run every chaos cell is compared against."""
    _, report = run_session(ingest_corpus, streams)
    assert not report["abandoned"]
    assert all(v is not None for v in report["verdicts"].values())
    # the streams are ransomware: the reference must actually detect,
    # otherwise identity checks would pass vacuously
    assert all(v["detections"] for v in report["verdicts"].values())
    return report


FAULTS = {
    "poison": lambda: ingest_chaos(seed=5, poison_event_rate=0.08),
    "stall": lambda: ingest_chaos(seed=5, queue_stall_rate=0.04,
                                  queue_stall_ticks=6),
    "kill": lambda: ingest_chaos(seed=5, kill_shard_at_events=(25, 70)),
}


class TestChaosMatrix:
    @pytest.mark.parametrize("breaker", [True, False],
                             ids=["breaker", "no-breaker"])
    @pytest.mark.parametrize("watchdog", [True, False],
                             ids=["watchdog", "no-watchdog"])
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_verdict_identity_and_isolation(self, ingest_corpus, streams,
                                            reference, fault, breaker,
                                            watchdog):
        faulted_tenant = "tenant-0"
        manager, report = run_session(
            ingest_corpus, streams, {faulted_tenant: FAULTS[fault]()},
            breaker=breaker, watchdog=watchdog)
        # bulkhead isolation holds in every cell
        assert report["cross_tenant_leaks"] == []
        for tenant in streams:
            if tenant == faulted_tenant:
                continue
            assert report["verdicts"][tenant] == \
                reference["verdicts"][tenant], \
                f"unfaulted {tenant} drifted under {fault} on neighbour"
        stats = report["stats"]["tenants"][faulted_tenant]
        if fault == "kill" and not watchdog:
            # the one documented loss mode: dead shard, nobody to revive
            assert report["abandoned"] == [faulted_tenant]
            assert report["verdicts"][faulted_tenant] is None
            assert stats["kills"] >= 1
            return
        assert report["abandoned"] == []
        assert report["verdicts"][faulted_tenant] == \
            reference["verdicts"][faulted_tenant], \
            f"{fault} (breaker={breaker}, watchdog={watchdog}) drifted"
        if fault == "poison":
            assert stats["poisoned"] > 0
        elif fault == "stall":
            assert stats["wedges"] > 0
        elif fault == "kill":
            assert stats["kills"] >= 1
            assert stats["restarts"] >= 1
            assert stats["replayed"] > 0
            session = manager.sessions[faulted_tenant]
            restarts = session.bus.events("shard_restarted")
            assert len(restarts) == stats["restarts"]
            assert all(e.tenant == faulted_tenant for e in restarts)

    @pytest.mark.parametrize("breaker", [True, False],
                             ids=["breaker", "no-breaker"])
    def test_transient_denial_storm(self, ingest_corpus, streams,
                                    reference, breaker):
        plan = transient_faults(seed=9, deny_rate=0.6, max_denials=30)
        manager, report = run_session(ingest_corpus, streams,
                                      {"tenant-1": plan}, breaker=breaker)
        assert report["cross_tenant_leaks"] == []
        assert report["verdicts"] == reference["verdicts"]
        stats = report["stats"]["tenants"]["tenant-1"]
        assert stats["transient_failures"] > 0
        if breaker:
            session = manager.sessions["tenant-1"]
            trips = stats["breaker"]["trips"]
            assert len(session.bus.events("breaker_tripped")) == trips
            assert session.registry.get(
                "cryptodrop_breaker_trips_total").value(
                    tenant="tenant-1") == trips
        else:
            assert stats["breaker"] is None

    def test_combined_storm_all_tenants(self, ingest_corpus, streams,
                                        reference):
        fault_map = {
            "tenant-0": ingest_chaos(seed=13, kill_shard_at_events=(40,)),
            "tenant-1": ingest_chaos(seed=13, poison_event_rate=0.05,
                                     queue_stall_rate=0.02),
            "tenant-2": transient_faults(seed=13, deny_rate=0.2,
                                         max_denials=25),
        }
        _, report = run_session(ingest_corpus, streams, fault_map)
        assert report["cross_tenant_leaks"] == []
        assert report["abandoned"] == []
        assert report["verdicts"] == reference["verdicts"]


class TestLoadShedding:
    def test_shed_observable_and_bounded(self, ingest_corpus, streams,
                                         reference):
        manager = EndpointSessionManager(
            ingest_corpus, config=TELEMETRY, queue_capacity=16,
            pump_batch=16, tick_budget=2)
        manager.add_endpoint("tenant-0", streams["tenant-0"],
                             shed_policy=ShedPolicy(watermark=8,
                                                    sample_every=4))
        manager.add_endpoint("tenant-1", streams["tenant-1"])
        report = manager.run()
        assert report["cross_tenant_leaks"] == []
        queue = report["stats"]["tenants"]["tenant-0"]["queue"]
        assert queue["shed"] > 0
        # every shed decision is observable: event per shed + counter
        session = manager.sessions["tenant-0"]
        assert len(session.bus.events("load_shed")) == queue["shed"]
        assert session.registry.get("cryptodrop_load_shed_total").value(
            tenant="tenant-0") == queue["shed"]
        # the no-shed-policy neighbour only ever felt backpressure, and
        # its verdict is unchanged by the overload
        neighbour = report["stats"]["tenants"]["tenant-1"]["queue"]
        assert neighbour["shed"] == 0
        assert neighbour["blocked"] > 0
        assert report["verdicts"]["tenant-1"] == \
            reference["verdicts"]["tenant-1"]

    def test_backpressure_alone_preserves_verdicts(self, ingest_corpus,
                                                   streams, reference):
        _, report = run_session(ingest_corpus, streams, queue_capacity=4,
                                pump_batch=16)
        blocked = sum(t["queue"]["blocked"]
                      for t in report["stats"]["tenants"].values())
        assert blocked > 0
        assert report["verdicts"] == reference["verdicts"]


def _record(kind="read", path="C:\\x.txt", **kw):
    return TraceRecord(kind=kind, pid=1, path=path, **kw)


def _event(seq, kind="read", poison=False):
    return EndpointEvent("t", seq, _record(kind), poison=poison)


class TestBoundedIngestQueue:
    def test_blocks_at_capacity(self):
        queue = BoundedIngestQueue(capacity=2)
        assert queue.offer(_event(0)) is Admission.ACCEPTED
        assert queue.offer(_event(1)) is Admission.ACCEPTED
        assert queue.offer(_event(2)) is Admission.BLOCKED
        assert queue.stats()["blocked"] == 1
        queue.pop()
        assert queue.offer(_event(2)) is Admission.ACCEPTED

    def test_shed_keeps_every_nth_sheddable(self):
        queue = BoundedIngestQueue(
            capacity=64, shed_policy=ShedPolicy(watermark=1, sample_every=3))
        queue.offer(_event(0))  # below watermark
        outcomes = [queue.offer(_event(i)) for i in range(1, 10)]
        # counter-based: every 3rd sheddable offer is kept
        assert outcomes == [Admission.SHED, Admission.SHED,
                            Admission.ACCEPTED] * 3

    def test_never_sheds_mutations_or_poison(self):
        queue = BoundedIngestQueue(
            capacity=64, shed_policy=ShedPolicy(watermark=1, sample_every=2))
        queue.offer(_event(0))
        assert queue.offer(_event(1, kind="write")) is Admission.ACCEPTED
        assert queue.offer(_event(2, kind="close")) is Admission.ACCEPTED
        # poison must reach the shard to be counted as a discarded fault
        assert queue.offer(_event(3, poison=True)) is Admission.ACCEPTED

    def test_rejects_watermark_above_capacity(self):
        with pytest.raises(ValueError):
            BoundedIngestQueue(capacity=8,
                               shed_policy=ShedPolicy(watermark=9))


class TestCircuitBreaker:
    def test_trips_after_threshold_and_backs_off_exponentially(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ticks=4,
                                 jitter=0.0)
        tick = 0
        assert not breaker.record_failure(tick)
        assert not breaker.record_failure(tick)
        assert breaker.record_failure(tick)  # third consecutive: trips
        assert breaker.stats()["state"] == "open"
        assert breaker.reopen_at == 4
        assert not breaker.allow(3)
        assert breaker.allow(4)  # half-open probe
        assert breaker.stats()["state"] == "half_open"
        assert breaker.record_failure(4)  # probe fails: re-trip, doubled
        assert breaker.reopen_at == 4 + 8
        assert breaker.allow(12)
        breaker.record_success()  # probe succeeds: closed, streak reset
        assert breaker.stats()["state"] == "closed"
        for _ in range(3):
            breaker.record_failure(20)
        assert breaker.reopen_at == 20 + 4  # back to the base cooldown

    def test_cooldown_capped(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ticks=4,
                                 max_cooldown_ticks=16, jitter=0.0)
        tick = 0
        for _ in range(6):
            breaker.record_failure(tick)
            tick = breaker.reopen_at
            breaker.allow(tick)
        assert breaker.reopen_at - tick <= 16

    def test_jitter_is_deterministic_per_tenant(self):
        def trip_point(tenant):
            b = CircuitBreaker(failure_threshold=1, seed=7, tenant=tenant)
            b.record_failure(0)
            return b.reopen_at
        assert trip_point("a") == trip_point("a")

    def test_disabled_counts_but_never_blocks(self):
        breaker = CircuitBreaker(failure_threshold=1, enabled=False)
        for tick in range(5):
            breaker.record_failure(tick)
            assert breaker.allow(tick)
        assert breaker.trips == 0
        assert breaker.failures_total == 5
        assert breaker.stats()["state"] == "closed"


class TestWatchdogUnit:
    class _FlatlinedShard:
        def __init__(self):
            self.alive = False
            self.finished = False
            self.done = False
            self.last_beat = 0
            self.restarted_with = None

        def restart(self, tick, reason="", down_ticks=0):
            self.restarted_with = (tick, reason, down_ticks)
            self.alive = True

    def test_restarts_after_missed_beats(self):
        shard = self._FlatlinedShard()
        watchdog = HeartbeatWatchdog(miss_threshold=3)
        assert watchdog.scan(2, [shard]) == 0
        assert watchdog.scan(3, [shard]) == 1
        assert shard.restarted_with == (3, "killed", 3)
        assert watchdog.stats()["recovery_ticks"] == [3]

    def test_ignores_finished_shards(self):
        shard = self._FlatlinedShard()
        shard.finished = True
        assert HeartbeatWatchdog(miss_threshold=1).scan(100, [shard]) == 0


class TestIngestFaultPlan:
    def test_ingest_faults_do_not_arm_op_injector(self):
        plan = ingest_chaos(seed=1, poison_event_rate=0.5,
                            queue_stall_rate=0.5,
                            kill_shard_at_events=(10,))
        assert plan.armed_ingest
        assert not plan.armed

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, poison_event_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, queue_stall_rate=0.1, queue_stall_ticks=0)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, kill_shard_at_events=(0,))


class TestTransientTaxonomy:
    def test_classification(self):
        assert is_transient(OperationDenied("op", "locked"))
        assert not is_transient(FsError("x"))
        assert not is_transient(FileNotFound("x"))
        assert not is_transient(InvalidHandle("x"))
        assert not is_transient(PoisonedEvent("t", 3))
        assert not is_transient(ProcessSuspended(1, "scored"))
        assert not is_transient(RuntimeError("x"))


class TestGracefulShutdownFlush:
    def _machine_with_pending(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        pid = vfs.processes.spawn("writer.exe").pid
        return vfs, pid

    def test_close_drains_digest_queued_just_before_shutdown(self):
        vfs, pid = self._machine_with_pending()
        config = CryptoDropConfig(lazy_close_digests=True,
                                  batch_digests=True)
        with CryptoDropMonitor(vfs, config) as monitor:
            path = DOCUMENTS / "pending.txt"
            handle = vfs.open(pid, path, "rw", create=True)
            vfs.write(pid, handle, b"verdict-relevant bytes " * 64)
            vfs.close(pid, handle)
            scheduler = monitor.engine.scheduler
            assert scheduler is not None
            assert len(scheduler) > 0  # digest really was deferred
        # context exit routed through close(): flushed, not dropped
        stats = scheduler.stats()
        assert stats["pending"] == 0
        assert stats["closes"] == 1
        assert stats["materialised"] >= 1
        assert not monitor.attached

    def test_supervisor_stop_flushes_like_close(self):
        vfs, pid = self._machine_with_pending()
        supervisor = MonitorSupervisor(
            vfs, CryptoDropConfig(lazy_close_digests=True,
                                  batch_digests=True))
        monitor = supervisor.start()
        path = DOCUMENTS / "pending.txt"
        handle = vfs.open(pid, path, "rw", create=True)
        vfs.write(pid, handle, b"payload " * 128)
        vfs.close(pid, handle)
        scheduler = monitor.engine.scheduler
        assert len(scheduler) > 0
        supervisor.stop()
        assert scheduler.stats()["pending"] == 0
        assert scheduler.stats()["closes"] == 1

    def test_close_is_idempotent(self):
        vfs, _ = self._machine_with_pending()
        monitor = CryptoDropMonitor(vfs).attach()
        monitor.close()
        monitor.close()
        assert not monitor.attached


class TestRetryBackoff:
    def test_deterministic(self):
        assert retry_backoff_s(3, 2) == retry_backoff_s(3, 2)

    def test_exponential_until_cap(self):
        delays = [retry_backoff_s(0, attempt) for attempt in range(1, 8)]
        # base curve is exponential; jitter only stretches upward <= 25%
        for attempt, delay in enumerate(delays, start=1):
            base = min(4.0, 0.25 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25
        assert max(delays) <= 4.0 * 1.25

    def test_jitter_varies_by_sample(self):
        assert len({retry_backoff_s(i, 1) for i in range(16)}) > 1


class TestIngestMetricsSnapshot:
    def test_gauges_mirror_manager_stats(self, ingest_corpus, streams):
        manager, report = run_session(
            ingest_corpus, streams,
            {"tenant-0": ingest_chaos(seed=5, kill_shard_at_events=(25,))})
        registry = ingest_snapshot(manager)
        stats = report["stats"]["tenants"]["tenant-0"]
        assert registry.get("cryptodrop_ingest_events_applied").value(
            tenant="tenant-0") == stats["applied"]
        assert registry.get("cryptodrop_ingest_shard_restarts").value(
            tenant="tenant-0") == stats["restarts"]
        assert registry.get("cryptodrop_ingest_ticks").value() == \
            report["ticks"]
