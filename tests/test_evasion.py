"""Indicator-evasion scenarios (§III-F).

"Evading the union of our three primary indicators will require
significant effort ... while padding a file with low entropy bits may
cause our detector to miss it, such behavior will also concurrently skew
similarity hashes."  Each adversary here defeats exactly one indicator
and is convicted by the remainder.
"""

import random

import pytest

from repro.core import CryptoDropMonitor
from repro.corpus.wordlists import paragraphs
from repro.crypto import chacha20_xor
from repro.fs import DOCUMENTS, ProcessSuspended, VirtualFileSystem

KEY, NONCE = bytes(32), bytes(12)
N_FILES = 32


@pytest.fixture
def env():
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS)
    for i in range(N_FILES):
        vfs.peek_write(DOCUMENTS / f"doc{i:02d}.txt",
                       paragraphs(random.Random(i), 24000).encode())
    monitor = CryptoDropMonitor(vfs).attach()
    pid = vfs.processes.spawn("evader.exe").pid
    return vfs, monitor, pid


def _attack(vfs, pid, transform):
    for i in range(N_FILES):
        path = DOCUMENTS / f"doc{i:02d}.txt"
        handle = vfs.open(pid, path, "rw")
        try:
            data = vfs.read(pid, handle)
            vfs.seek(pid, handle, 0)
            vfs.write(pid, handle, transform(data))
        finally:
            if not handle.closed:
                vfs.close(pid, handle)


class TestSingleIndicatorEvasion:
    def test_entropy_evader_convicted_by_type_and_similarity(self, env):
        """Pad every write 1:1 with zero bytes: measured write entropy
        halves, the delta never trips — type change + similarity still
        carry the process over threshold."""
        vfs, monitor, pid = env

        def pad_with_zeros(data):
            # 1 part ciphertext to 3 parts filler: write entropy ~2.6,
            # well under the text it replaces
            cipher = chacha20_xor(KEY, NONCE, data)
            padded = bytearray()
            for i in range(0, len(cipher), 64):
                padded += cipher[i:i + 64] + bytes(192)
            return bytes(padded)

        with pytest.raises(ProcessSuspended):
            _attack(vfs, pid, pad_with_zeros)
        row = monitor.engine.row_of(pid)
        assert "entropy" not in row.flags
        assert {"type_change", "similarity"} <= row.flags
        assert monitor.detected

    def test_cheap_type_evasion_fails(self, env):
        """Keeping a token 1 KiB of plaintext does not fool magic —
        identification samples an 8 KiB prefix, the type flips to
        'data', and the attack convicts normally."""
        vfs, monitor, pid = env

        def keep_small_header(data):
            return data[:1024] + chacha20_xor(KEY, NONCE, data[1024:])

        with pytest.raises(ProcessSuspended):
            _attack(vfs, pid, keep_small_header)
        assert "type_change" in monitor.engine.row_of(pid).flags

    def test_real_type_evasion_costs_the_attacker_the_file(self, env):
        """To actually keep `file` saying 'text', the whole 8 KiB
        inspection prefix must stay plaintext — which both feeds the
        similarity match *and* leaves a third of every document
        readable.  The §III-F 'difficult engineering trade-off'."""
        vfs, monitor, pid = env

        def keep_magic_prefix(data):
            keep = 8400
            return data[:keep] + chacha20_xor(KEY, NONCE, data[keep:])

        try:
            _attack(vfs, pid, keep_magic_prefix)
        except ProcessSuspended:
            pass
        row = monitor.engine.row_of(pid)
        assert "type_change" not in row.flags
        assert "similarity" not in row.flags    # shared prefix keeps sim high
        assert "entropy" in row.flags           # the one surviving signal
        # the concession: every victim keeps its first 8 KiB readable
        sample = vfs.peek_read(DOCUMENTS / "doc00.txt")
        original = paragraphs(random.Random(0), 24000).encode()
        assert sample[:8400] == original[:8400]

    def test_similarity_evader_convicted_by_entropy_and_type(self, env):
        """Append ciphertext while keeping the original content intact
        (archiver-style hoarding): similarity stays high, but the bulk
        high-entropy writes and type damage still add up."""
        vfs, monitor, pid = env

        def append_cipher(data):
            return data + chacha20_xor(KEY, NONCE, data)

        try:
            _attack(vfs, pid, append_cipher)
        except ProcessSuspended:
            pass
        row = monitor.engine.row_of(pid)
        assert "similarity" not in row.flags
        assert "entropy" in row.flags
        # appended files keep their magic, so this adversary is slower —
        # but the score is real and nonzero
        assert row.score > 0

    def test_full_evasion_requires_keeping_files_usable(self, env):
        """The end of the §III-F argument: an output that preserves type,
        similarity, AND entropy is ... not encrypted in any useful sense.
        A 1%-tail tweak scores nothing, and also destroys nothing."""
        vfs, monitor, pid = env

        def nibble_at_the_tail(data):
            keep = len(data) - max(1, len(data) // 100)
            return data[:keep] + chacha20_xor(KEY, NONCE, data[keep:])

        _attack(vfs, pid, nibble_at_the_tail)
        assert not monitor.detected
        # ... and the victim's documents are still ~99% readable: the
        # attacker gained no leverage
        sample = vfs.peek_read(DOCUMENTS / "doc00.txt")
        original = paragraphs(random.Random(0), 24000).encode()
        assert sample[:len(original) * 98 // 100] == \
            original[:len(original) * 98 // 100]


class TestScoreHasNoDecay:
    def test_slow_roll_attack_still_accumulates(self, env):
        """§V-F: a time-window metric could be gamed by slow attacks;
        the reputation score deliberately never decays, so arbitrarily
        slow bulk transformation is still convicted eventually."""
        vfs, monitor, pid = env
        other = vfs.processes.spawn("background.exe").pid
        detected_at = None
        try:
            for i in range(N_FILES):
                path = DOCUMENTS / f"doc{i:02d}.txt"
                handle = vfs.open(pid, path, "rw")
                data = vfs.read(pid, handle)
                vfs.seek(pid, handle, 0)
                vfs.write(pid, handle, chacha20_xor(KEY, NONCE, data))
                vfs.close(pid, handle)
                # hours of idle simulated time between victims
                vfs.clock.advance_us(3600 * 1e6)
                vfs.read_file(other, DOCUMENTS / f"doc{N_FILES - 1:02d}.txt")
        except ProcessSuspended:
            detected_at = i
        assert detected_at is not None
