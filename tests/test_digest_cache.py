"""The digest LRU and the single-digest close path (ISSUE 2 tentpole).

Covers the cache in isolation (hit/miss accounting, LRU eviction at
capacity) and through the engine: Class-B move-back re-inspections and
same-content rewrites must hit, checkpoint/restore must carry counters
but never entries, and the close path must digest each version at most
once (``bytes_digested <= bytes_closed`` on steady-state rewrites).
"""

import random

import pytest

from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.core.filestate import DigestCache, FileStateCache
from repro.corpus.wordlists import paragraphs
from repro.fs import DOCUMENTS, TEMP, VirtualFileSystem
from repro.perfstats import collect

def _text(seed, n=9000):
    return paragraphs(random.Random(seed), n).encode()


class TestDigestCacheUnit:
    def test_hit_and_miss_accounting(self):
        cache = FileStateCache()
        a = cache.inspect(_text(1))
        assert cache.digest_cache.misses == 1
        assert cache.digest_cache.hits == 0
        again = cache.inspect(_text(1))
        assert cache.digest_cache.hits == 1
        assert again is a
        cache.inspect(_text(2))
        assert cache.digest_cache.misses == 2

    def test_hit_skips_digesting(self):
        cache = FileStateCache()
        content = _text(3)
        cache.inspect(content)
        digested = cache.digest_cache.bytes_digested
        cache.inspect(content)
        assert cache.digest_cache.bytes_digested == digested

    def test_eviction_at_capacity(self):
        cache = FileStateCache(digest_cache_entries=4)
        for i in range(6):
            cache.inspect(_text(i, 2000))
        dc = cache.digest_cache
        assert len(dc) == 4
        assert dc.evictions == 2
        # oldest entries (0, 1) were evicted; 5 is still resident
        cache.inspect(_text(5, 2000))
        assert dc.hits == 1
        cache.inspect(_text(0, 2000))
        assert dc.misses == 7

    def test_lru_order_respects_recency(self):
        cache = FileStateCache(digest_cache_entries=2)
        cache.inspect(_text(0, 2000))
        cache.inspect(_text(1, 2000))
        cache.inspect(_text(0, 2000))   # refresh 0 → 1 becomes oldest
        cache.inspect(_text(2, 2000))   # evicts 1
        cache.inspect(_text(0, 2000))
        assert cache.digest_cache.hits == 2
        cache.inspect(_text(1, 2000))
        assert cache.digest_cache.misses == 4

    def test_zero_capacity_disables_caching(self):
        cache = FileStateCache(digest_cache_entries=0)
        content = _text(4)
        first = cache.inspect(content)
        second = cache.inspect(content)
        assert first is not second
        assert len(cache.digest_cache) == 0
        assert cache.digest_cache.hits == 0
        assert cache.digest_cache.misses == 2

    def test_oversize_content_not_digested_but_typed(self):
        cache = FileStateCache(max_inspect_bytes=1000)
        result = cache.inspect(_text(5, 4000))
        assert not result.digested
        assert result.digest is None
        assert result.file_type is not None
        assert cache.digest_cache.bytes_digested == 0
        # the non-digested result is still cacheable
        assert cache.inspect(_text(5, 4000)).digested is False
        assert cache.digest_cache.hits == 1

    def test_counters_exposed_in_stats(self):
        cache = FileStateCache()
        cache.inspect(_text(6))
        stats = cache.digest_cache.stats()
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["bytes_digested"] > 0

    def test_key_is_content_hash(self):
        assert DigestCache.key(b"abc") == DigestCache.key(b"abc")
        assert DigestCache.key(b"abc") != DigestCache.key(b"abd")


@pytest.fixture
def env():
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS)
    vfs._ensure_dirs(TEMP)
    for i in range(6):
        vfs.peek_write(DOCUMENTS / f"doc{i}.txt", _text(i))
    monitor = CryptoDropMonitor(vfs).attach()
    pid = vfs.processes.spawn("app.exe").pid
    return vfs, monitor, pid


def _rewrite_same(vfs, pid, path):
    handle = vfs.open(pid, path, "rw")
    data = vfs.read(pid, handle)
    vfs.seek(pid, handle, 0)
    vfs.write(pid, handle, data)
    vfs.close(pid, handle)


class TestEngineCachePath:
    def test_same_content_rewrite_hits(self, env):
        vfs, monitor, pid = env
        path = DOCUMENTS / "doc0.txt"
        _rewrite_same(vfs, pid, path)
        dc = monitor.engine.cache.digest_cache
        # pre-op baseline capture misses; the close inspects identical
        # bytes and hits
        assert dc.hits >= 1
        hits = dc.hits
        _rewrite_same(vfs, pid, path)
        assert dc.hits > hits

    def test_single_digest_invariant_on_rewrites(self, env):
        vfs, monitor, pid = env
        for _ in range(4):
            for i in range(6):
                _rewrite_same(vfs, pid, DOCUMENTS / f"doc{i}.txt")
        stats = collect(monitor)
        assert stats.bytes_closed > 0
        assert stats.bytes_digested <= stats.bytes_closed
        assert stats.single_digest_holds
        # only the six baseline captures ever digested
        assert stats.bytes_digested == sum(len(_text(i)) for i in range(6))

    def test_class_b_move_back_reuses_digest(self, env):
        """Move out to temp, back into Documents, close unchanged: the
        re-inspections reuse the cached digest of the baseline bytes."""
        vfs, monitor, pid = env
        src = DOCUMENTS / "doc1.txt"
        staged = TEMP / "doc1.txt"
        vfs.rename(pid, src, staged)
        dc = monitor.engine.cache.digest_cache
        vfs.rename(pid, staged, src)
        _rewrite_same(vfs, pid, src)
        assert dc.hits >= 1
        stats = collect(monitor)
        assert stats.bytes_digested <= stats.bytes_inspected

    def test_no_scoreboard_row_for_hit_free_ops(self, env):
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc2.txt")
        # benign identical rewrite applies no indicator hit: the engine
        # must not have materialised a scoreboard row for the process
        assert all(row.root_pid != pid
                   for row in monitor.engine.scoreboard.rows())

    def test_wall_time_counters_accumulate(self, env):
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc3.txt")
        wall = monitor.engine.op_wall_us
        assert wall.get("close", 0.0) > 0.0
        assert wall.get("write", 0.0) > 0.0

    def test_stats_surface_cache_counters(self, env):
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc4.txt")
        stats = monitor.stats()
        assert stats["digest_cache"]["hits"] >= 1
        assert stats["bytes_closed"] > 0
        assert "close" in stats["op_wall_us"]


class TestCheckpointInteraction:
    def test_checkpoint_carries_counters_not_entries(self, env):
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc0.txt")
        state = monitor.checkpoint()
        cache_state = state["cache"]["digest_cache"]
        assert cache_state["hits"] >= 1
        # counters only: no entry contents, and no ephemeral entry count
        # (a restored cache starts empty, so including it would make
        # checkpoint → restore → checkpoint non-idempotent)
        assert "entries" not in cache_state
        assert not any(isinstance(v, dict) for v in cache_state.values())

    def test_restore_does_not_resurrect_entries(self, env):
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc0.txt")
        state = monitor.checkpoint()
        restored = CryptoDropMonitor.from_checkpoint(
            VirtualFileSystem(), state)
        dc = restored.engine.cache.digest_cache
        assert len(dc) == 0                    # no stale cached inspections
        assert dc.hits == monitor.engine.cache.digest_cache.hits
        assert dc.bytes_digested == \
            monitor.engine.cache.digest_cache.bytes_digested

    def test_restored_engine_rescores_identically(self, env):
        """A restored engine re-digests (cold cache) but keeps scoring
        exactly as the original would."""
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc5.txt")
        state = monitor.checkpoint()
        monitor.detach()
        resumed = CryptoDropMonitor.from_checkpoint(vfs, state).attach()
        _rewrite_same(vfs, pid, DOCUMENTS / "doc5.txt")
        assert not resumed.detected
        assert resumed.engine.cache.digest_cache.misses > 0
        resumed.detach()

    def test_old_checkpoints_without_cache_stats_load(self, env):
        vfs, monitor, pid = env
        _rewrite_same(vfs, pid, DOCUMENTS / "doc0.txt")
        state = monitor.checkpoint()
        del state["cache"]["digest_cache"]     # pre-ISSUE-2 snapshot shape
        del state["bytes_closed"]
        del state["op_wall_us"]
        restored = CryptoDropMonitor.from_checkpoint(
            VirtualFileSystem(), state)
        assert restored.engine.bytes_closed == 0
        assert restored.engine.cache.digest_cache.hits == 0
