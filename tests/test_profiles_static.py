"""Static invariants over all 492 sample profiles (no execution)."""

import collections

import pytest

from repro.ransomware import all_profiles, working_cohort
from repro.ransomware.traversal import STRATEGIES

PROFILES = all_profiles()

KNOWN_EXTENSIONS = {
    ".pdf", ".doc", ".docx", ".xls", ".xlsx", ".ppt", ".pptx", ".odt",
    ".ods", ".rtf", ".txt", ".md", ".csv", ".xml", ".html", ".jpg",
    ".png", ".gif", ".bmp", ".mp3", ".wav", ".m4a", ".flac", ".sqlite",
    ".zip", ".7z",
}


class TestProfileInvariants:
    def test_seeds_unique(self):
        seeds = [p.seed for p in PROFILES]
        assert len(set(seeds)) == len(seeds)

    def test_sample_names_unique(self):
        names = [p.sample_name for p in PROFILES]
        assert len(set(names)) == len(names)

    def test_traversals_are_registered(self):
        for profile in PROFILES:
            assert profile.traversal in STRATEGIES, profile.sample_name

    def test_extensions_are_known(self):
        for profile in PROFILES:
            if profile.extensions is None:
                continue
            unknown = set(profile.extensions) - KNOWN_EXTENSIONS
            assert not unknown, (profile.sample_name, unknown)

    def test_chunk_sizes_sane(self):
        for profile in PROFILES:
            assert 0 <= profile.read_chunk <= 1 << 20
            assert 0 <= profile.write_chunk <= 1 << 20

    def test_cipher_kinds_valid(self):
        from repro.ransomware import CipherEngine
        for profile in PROFILES:
            assert profile.cipher_kind in CipherEngine.KINDS

    def test_no_working_profile_is_inert(self):
        assert all(p.inert_reason is None for p in PROFILES)

    def test_class_c_profiles_have_disposal(self):
        for profile in PROFILES:
            if profile.behavior_class == "C":
                assert profile.class_c_disposal in ("delete", "move_over")

    def test_prefix_encryption_only_on_class_a(self):
        for profile in PROFILES:
            if profile.encrypt_prefix_bytes:
                assert profile.behavior_class == "A", profile.sample_name

    def test_exe_wrapper_only_on_virlock(self):
        for profile in PROFILES:
            if profile.payload_wrapper:
                assert profile.family == "virlock"

    def test_polymorphic_families_have_no_marker(self):
        for profile in PROFILES:
            if profile.polymorphic:
                assert not profile.family_marker

    def test_shadow_wipers_are_the_expected_families(self):
        wipers = {p.family for p in PROFILES if p.delete_shadow_copies}
        assert wipers == {"teslacrypt", "cryptowall"}

    def test_image_bytes_deterministic(self):
        first = working_cohort()[0]
        again = working_cohort()[0]
        assert first.image_bytes == again.image_bytes

    def test_class_mix_per_family_matches_table1(self):
        from repro.experiments import PAPER_TABLE1
        counts = collections.defaultdict(lambda: [0, 0, 0])
        for profile in PROFILES:
            index = {"A": 0, "B": 1, "C": 2}[profile.behavior_class]
            counts[profile.family][index] += 1
        for family, (a, b, c, _total, _median) in PAPER_TABLE1.items():
            assert counts[family] == [a, b, c], family
