"""Additional coverage: walk determinism, ssdeep internals, workload
helpers, the ordered magic database, and report rendering corners."""

import random

import pytest

from repro.fs import DOCUMENTS, VirtualFileSystem


class TestWalkDeterminism:
    @pytest.fixture
    def populated(self, vfs, pid):
        for name in ("b", "A", "c"):
            vfs.mkdir(pid, DOCUMENTS / name)
            vfs.write_file(pid, DOCUMENTS / name / f"{name}.txt", b"x")
        return vfs, pid

    def test_walk_order_is_stable(self, populated):
        vfs, pid = populated
        first = [str(d) for d, _dirs, _files in vfs.walk(pid, DOCUMENTS)]
        second = [str(d) for d, _dirs, _files in vfs.walk(pid, DOCUMENTS)]
        assert first == second

    def test_walk_root_first(self, populated):
        vfs, pid = populated
        dirs = [d for d, *_ in vfs.walk(pid, DOCUMENTS)]
        assert dirs[0] == DOCUMENTS

    def test_peek_walk_matches_filtered_walk(self, populated):
        vfs, pid = populated
        via_ops = set()
        for dirpath, _dirs, files in vfs.walk(pid, DOCUMENTS):
            via_ops.update(str(dirpath / f) for f in files)
        via_peek = {str(p) for p, _n in vfs.peek_walk_files(DOCUMENTS)}
        assert via_ops == via_peek


class TestSsdeepInternals:
    def test_blocksize_scales_with_input(self):
        from repro.simhash import ctph
        small = ctph(b"abcdefgh" * 40)
        large = ctph(random.Random(0).randbytes(200000))
        assert large.blocksize > small.blocksize

    def test_signature_capped_length(self):
        from repro.simhash import ctph
        from repro.simhash.ssdeep import SPAMSUM_LENGTH
        sig = ctph(random.Random(1).randbytes(500000))
        assert len(sig.sig1) <= SPAMSUM_LENGTH

    def test_rolling_hash_windows(self):
        from repro.simhash.ssdeep import _RollingHash
        roll = _RollingHash()
        values = [roll.update(b) for b in b"abcdefghij"]
        assert len(set(values)) > 1

    def test_edit_distance(self):
        from repro.simhash.ssdeep import _edit_distance
        assert _edit_distance("kitten", "sitting") == 3
        assert _edit_distance("", "abc") == 3
        assert _edit_distance("same", "same") == 0


class TestMagicDatabaseIntegrity:
    def test_signatures_have_unique_effect(self):
        """No earlier signature may shadow a later one byte-for-byte."""
        from repro.magic import SIGNATURES
        seen = []
        for sig in SIGNATURES:
            for offset, pattern, _ft in seen:
                if offset == sig.offset and sig.pattern.startswith(pattern):
                    # shadowing is only allowed when a refiner
                    # distinguishes them
                    earlier = next(s for s in SIGNATURES
                                   if (s.offset, s.pattern) == (offset, pattern))
                    assert earlier.refine is not None, \
                        (pattern, sig.pattern)
            seen.append((sig.offset, sig.pattern, sig.filetype))

    def test_every_signature_matches_its_own_pattern(self):
        from repro.magic import SIGNATURES, identify
        for sig in SIGNATURES:
            synthetic = bytes(sig.offset) + sig.pattern + bytes(64)
            assert sig.matches(synthetic)

    def test_ole2_refinement_distinguishes_office_apps(self):
        import random as _random
        from repro.corpus.content import make_doc, make_ppt, make_xls
        from repro.magic import identify_name
        rng = _random.Random(5)
        assert identify_name(make_doc(rng, 8000)) == "doc"
        assert identify_name(make_xls(rng, 8000)) == "xls"
        assert identify_name(make_ppt(rng, 8000)) == "ppt"

    def test_generic_ole2_falls_back(self):
        from repro.magic import identify_name
        blob = b"\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1" + bytes(600)
        assert identify_name(blob) == "ole2"


class TestWorkloadHelper:
    def test_standard_io_workload_counts(self, small_corpus):
        from repro.experiments import standard_io_workload
        from repro.sandbox import VirtualMachine
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        pid = machine.vfs.processes.spawn("perf.exe").pid
        counts = standard_io_workload(machine, pid, n_files=20)
        assert counts["open"] == 20
        assert counts["write"] == 20
        assert counts["rename"] == 10    # every 4th file, twice
        machine.revert()


class TestRenderingCorners:
    def test_table1_render_includes_paper_column(self, small_corpus):
        from repro.experiments import TINY, campaign_at_scale, run_table1
        table = run_table1(TINY, campaign=campaign_at_scale(TINY))
        text = table.render()
        assert "Paper FL" in text
        assert "0-" in text or "Range" in text

    def test_attribution_render_orders_indicators(self):
        from repro.analysis import IndicatorAttribution
        attribution = IndicatorAttribution(
            totals={"entropy": 10.0, "type_change": 30.0},
            prevalence={"entropy": 1.0, "type_change": 0.5},
            samples=2)
        text = attribution.render()
        assert text.index("type_change") < text.index("entropy")

    def test_detection_summary_text(self):
        from repro.core import Detection
        detection = Detection(
            root_pid=1000, process_name="evil.exe", score=205.0,
            threshold=200.0, union_fired=True,
            flags={"entropy"}, timestamp_us=1.0,
            trigger_op="close", trigger_path="C:\\x")
        assert "suspended" in detection.summary()
        assert "[union]" in detection.summary()
