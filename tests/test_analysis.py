"""Post-campaign analytics."""

import pytest

from repro.analysis import (attribute_indicators, class_statistics,
                            detection_latency_summary)
from repro.ransomware import working_cohort
from repro.sandbox import run_campaign


@pytest.fixture(scope="module")
def campaign(small_corpus):
    cohort = working_cohort()
    subset = ([s for s in cohort if s.profile.family == "teslacrypt"][:3]
              + [s for s in cohort if s.profile.family == "ctb-locker"][:3]
              + [s for s in cohort
                 if s.profile.family == "cryptodefense"][:3])
    return run_campaign(subset, small_corpus)


class TestAttribution:
    def test_totals_cover_all_scored_indicators(self, campaign):
        attribution = attribute_indicators(campaign.working)
        assert attribution.samples == 9
        assert attribution.totals
        assert all(points > 0 for points in attribution.totals.values())

    def test_shares_sum_to_one(self, campaign):
        attribution = attribute_indicators(campaign.working)
        total = sum(attribution.share(i) for i in attribution.totals)
        assert total == pytest.approx(1.0)

    def test_cryptodefense_is_entropy_plus_deletion_only(self, campaign):
        """Delete-disposal Class C has no baselines: no type/similarity."""
        rows = campaign.by_family()["cryptodefense"]
        attribution = attribute_indicators(rows)
        assert "type_change" not in attribution.totals
        assert "similarity" not in attribution.totals
        assert "entropy" in attribution.totals
        assert attribution.dominant() == "entropy"

    def test_teslacrypt_uses_all_three_primaries(self, campaign):
        rows = campaign.by_family()["teslacrypt"]
        attribution = attribute_indicators(rows)
        for indicator in ("type_change", "similarity", "entropy", "union"):
            assert attribution.prevalence.get(indicator, 0) == 1.0, indicator

    def test_render(self, campaign):
        text = attribute_indicators(campaign.working).render("test")
        assert "entropy" in text and "share" in text

    def test_empty_selection(self):
        attribution = attribute_indicators([])
        assert attribution.samples == 0
        assert attribution.dominant() == ""
        assert attribution.share("entropy") == 0.0


class TestClassStats:
    def test_classes_present(self, campaign):
        stats = class_statistics(campaign)
        assert {s.behavior_class for s in stats} == {"A", "B", "C"}

    def test_counts_sum(self, campaign):
        stats = class_statistics(campaign)
        assert sum(s.samples for s in stats) == 9

    def test_all_detected(self, campaign):
        for stat in class_statistics(campaign):
            assert stat.detection_rate == 1.0

    def test_class_b_slowest_here(self, campaign):
        """CTB-Locker dominates Class B: highest files lost (§V-B1)."""
        stats = {s.behavior_class: s for s in class_statistics(campaign)}
        assert stats["B"].median_files_lost >= stats["A"].median_files_lost


class TestLatency:
    def test_latency_summary_shape(self, campaign):
        summary = detection_latency_summary(campaign)
        assert 0 < summary["median_s"] <= summary["p90_s"] <= summary["max_s"]

    def test_empty_campaign(self):
        from repro.sandbox import CampaignResult
        summary = detection_latency_summary(CampaignResult())
        assert summary == {"median_s": 0.0, "p90_s": 0.0, "max_s": 0.0}
